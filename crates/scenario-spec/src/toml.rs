//! A minimal TOML subset reader/writer over [`serde::Content`] trees.
//!
//! The build environment is hermetic (no external TOML crate), so this
//! module implements exactly the subset the scenario schema needs:
//!
//! - `key = value` pairs with bare or dotted keys,
//! - `[table]` and nested `[table.sub]` headers,
//! - `[[array.of.tables]]` headers,
//! - basic strings with `\\ \" \n \t \r` escapes,
//! - integers (with `_` separators), floats (`.`/`e` notation), booleans,
//! - (possibly nested, possibly multi-line) arrays and inline tables,
//! - `#` comments and blank lines.
//!
//! Parsing produces an insertion-ordered [`Content::Map`]; writing takes
//! any map whose leaves are finite numbers, strings, booleans, sequences
//! and maps. `parse(write(c)) == c` for every tree the schema encoders
//! emit, and floats round-trip bit-exactly (shortest-representation
//! `Display` form).

use crate::error::SpecError;
use serde::Content;

/// Parses a TOML document into an insertion-ordered content tree.
///
/// # Errors
///
/// Returns [`SpecError`] with a `line N` pseudo-path for syntax errors,
/// duplicate keys and malformed values.
pub fn parse(input: &str) -> Result<Content, SpecError> {
    Parser {
        b: input.as_bytes(),
        i: 0,
        line: 1,
    }
    .document()
}

/// Serializes a content tree (which must be a map) as a TOML document.
///
/// # Errors
///
/// Returns [`SpecError`] if the root is not a map or a leaf is not
/// representable (non-finite float, null inside a sequence).
pub fn write(root: &Content) -> Result<String, SpecError> {
    let Content::Map(entries) = root else {
        return Err(SpecError::new("", "a TOML document must be a table"));
    };
    let mut out = String::new();
    write_table(&mut out, "", entries)?;
    // Normalize leading blank line from the first section header.
    Ok(out.trim_start_matches('\n').to_string())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> SpecError {
        SpecError::new(format!("line {}", self.line), message)
    }

    fn eof(&self) -> bool {
        self.i >= self.b.len()
    }

    fn peek(&self) -> u8 {
        self.b[self.i]
    }

    fn bump(&mut self) -> u8 {
        let c = self.b[self.i];
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    /// Skips spaces and tabs on the current line.
    fn skip_ws(&mut self) {
        while !self.eof() && matches!(self.peek(), b' ' | b'\t') {
            self.i += 1;
        }
    }

    /// Skips whitespace, newlines and comments.
    fn skip_trivia(&mut self) {
        loop {
            self.skip_ws();
            if self.eof() {
                return;
            }
            match self.peek() {
                b'\n' | b'\r' => {
                    self.bump();
                }
                b'#' => {
                    while !self.eof() && self.peek() != b'\n' {
                        self.i += 1;
                    }
                }
                _ => return,
            }
        }
    }

    /// Requires nothing but trivia to the end of the current line.
    fn expect_line_end(&mut self) -> Result<(), SpecError> {
        self.skip_ws();
        if self.eof() {
            return Ok(());
        }
        match self.peek() {
            b'\n' | b'\r' => Ok(()),
            b'#' => {
                while !self.eof() && self.peek() != b'\n' {
                    self.i += 1;
                }
                Ok(())
            }
            c => Err(self.err(format!("unexpected character `{}`", c as char))),
        }
    }

    fn bare_key(&mut self) -> Result<String, SpecError> {
        let start = self.i;
        while !self.eof()
            && (self.peek().is_ascii_alphanumeric() || matches!(self.peek(), b'_' | b'-'))
        {
            self.i += 1;
        }
        if self.i == start {
            return Err(self.err("expected a key"));
        }
        Ok(std::str::from_utf8(&self.b[start..self.i])
            .expect("keys are ASCII")
            .to_string())
    }

    /// A dotted key path: `a`, `a.b`, `a.b.c`.
    fn dotted_key(&mut self) -> Result<Vec<String>, SpecError> {
        let mut keys = vec![self.bare_key()?];
        loop {
            self.skip_ws();
            if !self.eof() && self.peek() == b'.' {
                self.bump();
                self.skip_ws();
                keys.push(self.bare_key()?);
            } else {
                return Ok(keys);
            }
        }
    }

    fn string(&mut self) -> Result<Content, SpecError> {
        debug_assert_eq!(self.peek(), b'"');
        self.bump();
        let mut s = String::new();
        loop {
            if self.eof() {
                return Err(self.err("unterminated string"));
            }
            match self.bump() {
                b'"' => return Ok(Content::Str(s)),
                b'\n' => return Err(self.err("newline inside a basic string")),
                b'\\' => {
                    if self.eof() {
                        return Err(self.err("unterminated escape"));
                    }
                    match self.bump() {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        c => return Err(self.err(format!("unsupported escape `\\{}`", c as char))),
                    }
                }
                c => {
                    // Re-assemble UTF-8 sequences byte-by-byte.
                    if c < 0x80 {
                        s.push(c as char);
                    } else {
                        let start = self.i - 1;
                        let mut end = self.i;
                        while end < self.b.len() && (self.b[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        let chunk = std::str::from_utf8(&self.b[start..end])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?;
                        s.push_str(chunk);
                        self.i = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content, SpecError> {
        let start = self.i;
        while !self.eof()
            && (self.peek().is_ascii_alphanumeric()
                || matches!(self.peek(), b'+' | b'-' | b'.' | b'_'))
        {
            self.i += 1;
        }
        let raw = std::str::from_utf8(&self.b[start..self.i]).expect("number bytes are ASCII");
        let token: String = raw.chars().filter(|c| *c != '_').collect();
        if token.is_empty() {
            return Err(self.err("expected a value"));
        }
        let is_float = token.contains(['.', 'e', 'E']) && !token.starts_with("0x");
        if is_float {
            let v: f64 = token
                .parse()
                .map_err(|_| self.err(format!("invalid float `{raw}`")))?;
            return Ok(Content::F64(v));
        }
        if let Ok(v) = token.parse::<u64>() {
            return Ok(Content::U64(v));
        }
        if let Ok(v) = token.parse::<i64>() {
            return Ok(Content::I64(v));
        }
        Err(self.err(format!("invalid number `{raw}`")))
    }

    fn array(&mut self) -> Result<Content, SpecError> {
        debug_assert_eq!(self.peek(), b'[');
        self.bump();
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.eof() {
                return Err(self.err("unterminated array"));
            }
            if self.peek() == b']' {
                self.bump();
                return Ok(Content::Seq(items));
            }
            items.push(self.value()?);
            self.skip_trivia();
            if self.eof() {
                return Err(self.err("unterminated array"));
            }
            match self.peek() {
                b',' => {
                    self.bump();
                }
                b']' => {}
                c => return Err(self.err(format!("expected `,` or `]`, found `{}`", c as char))),
            }
        }
    }

    fn inline_table(&mut self) -> Result<Content, SpecError> {
        debug_assert_eq!(self.peek(), b'{');
        self.bump();
        let mut entries: Vec<(String, Content)> = Vec::new();
        self.skip_ws();
        if !self.eof() && self.peek() == b'}' {
            self.bump();
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.bare_key()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            if self.eof() || self.peek() != b'=' {
                return Err(self.err("expected `=` in inline table"));
            }
            self.bump();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            if self.eof() {
                return Err(self.err("unterminated inline table"));
            }
            match self.bump() {
                b',' => continue,
                b'}' => return Ok(Content::Map(entries)),
                c => return Err(self.err(format!("expected `,` or `}}`, found `{}`", c as char))),
            }
        }
    }

    fn value(&mut self) -> Result<Content, SpecError> {
        self.skip_ws();
        if self.eof() {
            return Err(self.err("expected a value"));
        }
        match self.peek() {
            b'"' => self.string(),
            b'[' => self.array(),
            b'{' => self.inline_table(),
            b't' if self.b[self.i..].starts_with(b"true") => {
                self.i += 4;
                Ok(Content::Bool(true))
            }
            b'f' if self.b[self.i..].starts_with(b"false") => {
                self.i += 5;
                Ok(Content::Bool(false))
            }
            _ => self.number(),
        }
    }

    fn document(mut self) -> Result<Content, SpecError> {
        let mut root: Vec<(String, Content)> = Vec::new();
        // The table the next `key = value` lands in.
        let mut current: Vec<String> = Vec::new();
        loop {
            self.skip_trivia();
            if self.eof() {
                return Ok(Content::Map(root));
            }
            if self.peek() == b'[' {
                self.bump();
                let is_array = !self.eof() && self.peek() == b'[';
                if is_array {
                    self.bump();
                }
                self.skip_ws();
                let path = self.dotted_key()?;
                self.skip_ws();
                let closing_ok = if is_array {
                    self.b[self.i..].starts_with(b"]]")
                } else {
                    !self.eof() && self.peek() == b']'
                };
                if !closing_ok {
                    return Err(self.err("malformed table header"));
                }
                self.i += if is_array { 2 } else { 1 };
                self.expect_line_end()?;
                if is_array {
                    let line = self.line;
                    let (last, parents) = path.split_last().expect("dotted_key is non-empty");
                    let parent = table_mut(&mut root, parents, line)?;
                    let idx = match parent.iter().position(|(k, _)| k == last) {
                        Some(idx) => idx,
                        None => {
                            parent.push((last.clone(), Content::Seq(Vec::new())));
                            parent.len() - 1
                        }
                    };
                    match &mut parent[idx].1 {
                        Content::Seq(s) => s.push(Content::Map(Vec::new())),
                        _ => {
                            return Err(SpecError::new(
                                format!("line {line}"),
                                format!("key `{last}` is not an array of tables"),
                            ))
                        }
                    }
                } else {
                    let line = self.line;
                    table_mut(&mut root, &path, line)?;
                }
                current = path;
            } else {
                let keys = self.dotted_key()?;
                self.skip_ws();
                if self.eof() || self.peek() != b'=' {
                    return Err(self.err("expected `=`"));
                }
                self.bump();
                let value = self.value()?;
                self.expect_line_end()?;
                let line = self.line;
                let (last, prefix) = keys.split_last().expect("dotted_key is non-empty");
                let mut path = current.clone();
                path.extend_from_slice(prefix);
                let table = table_mut(&mut root, &path, line)?;
                if table.iter().any(|(k, _)| k == last) {
                    return Err(SpecError::new(
                        format!("line {line}"),
                        format!("duplicate key `{last}`"),
                    ));
                }
                table.push((last.clone(), value));
            }
        }
    }
}

/// Walks (creating as needed) to the table at `path`. Descends into the
/// last element of an array of tables, matching TOML's `[a.b]`-after-
/// `[[a]]` semantics.
fn table_mut<'t>(
    map: &'t mut Vec<(String, Content)>,
    path: &[String],
    line: usize,
) -> Result<&'t mut Vec<(String, Content)>, SpecError> {
    let Some((head, rest)) = path.split_first() else {
        return Ok(map);
    };
    if !map.iter().any(|(k, _)| k == head) {
        map.push((head.clone(), Content::Map(Vec::new())));
    }
    let idx = map
        .iter()
        .position(|(k, _)| k == head)
        .expect("just inserted");
    match &mut map[idx].1 {
        Content::Map(m) => table_mut(m, rest, line),
        Content::Seq(s) => match s.last_mut() {
            Some(Content::Map(m)) => table_mut(m, rest, line),
            _ => Err(SpecError::new(
                format!("line {line}"),
                format!("key `{head}` is not a table"),
            )),
        },
        _ => Err(SpecError::new(
            format!("line {line}"),
            format!("key `{head}` is not a table"),
        )),
    }
}

/// Whether a sequence renders as `[[key]]` blocks (non-empty, all maps).
fn is_table_array(c: &Content) -> bool {
    match c {
        Content::Seq(items) => {
            !items.is_empty() && items.iter().all(|i| matches!(i, Content::Map(_)))
        }
        _ => false,
    }
}

fn fmt_float(v: f64) -> Result<String, SpecError> {
    if !v.is_finite() {
        return Err(SpecError::new("", "cannot write a non-finite float"));
    }
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E']) {
        Ok(s)
    } else {
        Ok(format!("{s}.0"))
    }
}

fn fmt_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a scalar, array or inline-table value.
fn fmt_inline(c: &Content) -> Result<String, SpecError> {
    Ok(match c {
        Content::Null => return Err(SpecError::new("", "cannot write a null value")),
        Content::Bool(v) => v.to_string(),
        Content::U64(v) => v.to_string(),
        Content::I64(v) => v.to_string(),
        Content::F64(v) => fmt_float(*v)?,
        Content::Str(s) => fmt_string(s),
        Content::Seq(items) => {
            let rendered: Result<Vec<String>, SpecError> = items.iter().map(fmt_inline).collect();
            format!("[{}]", rendered?.join(", "))
        }
        Content::Map(entries) => {
            let rendered: Result<Vec<String>, SpecError> = entries
                .iter()
                .map(|(k, v)| Ok(format!("{k} = {}", fmt_inline(v)?)))
                .collect();
            format!("{{{}}}", rendered?.join(", "))
        }
    })
}

fn write_table(
    out: &mut String,
    prefix: &str,
    entries: &[(String, Content)],
) -> Result<(), SpecError> {
    // Scalar-ish entries first so they bind to this table, not a child.
    for (k, v) in entries {
        if matches!(v, Content::Null) {
            continue; // Omitted optional field.
        }
        if matches!(v, Content::Map(_)) || is_table_array(v) {
            continue;
        }
        out.push_str(&format!("{k} = {}\n", fmt_inline(v)?));
    }
    for (k, v) in entries {
        let child = if prefix.is_empty() {
            k.clone()
        } else {
            format!("{prefix}.{k}")
        };
        match v {
            Content::Map(m) => {
                out.push_str(&format!("\n[{child}]\n"));
                write_table(out, &child, m)?;
            }
            Content::Seq(items) if is_table_array(v) => {
                for item in items {
                    let Content::Map(m) = item else {
                        unreachable!()
                    };
                    out.push_str(&format!("\n[[{child}]]\n"));
                    write_table(out, &child, m)?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'c>(c: &'c Content, key: &str) -> &'c Content {
        let Content::Map(m) = c else {
            panic!("not a map")
        };
        &m.iter().find(|(k, _)| k == key).expect(key).1
    }

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = r#"
# top comment
schema_version = 1
name = "demo"
ratio = -0.5
big = 20e6
on = true
neg = -3

[topology]
servers = 9

[topology.nested]
deep = "yes"

[[timeline]]
at_s = 10.0
event = "server_outage"

[[timeline]]
at_s = 20.5 # trailing comment
event = "server_recovery"
"#;
        let c = parse(doc).unwrap();
        assert_eq!(get(&c, "schema_version"), &Content::U64(1));
        assert_eq!(get(&c, "name"), &Content::Str("demo".into()));
        assert_eq!(get(&c, "ratio"), &Content::F64(-0.5));
        assert_eq!(get(&c, "big"), &Content::F64(20e6));
        assert_eq!(get(&c, "on"), &Content::Bool(true));
        assert_eq!(get(&c, "neg"), &Content::I64(-3));
        let topo = get(&c, "topology");
        assert_eq!(get(topo, "servers"), &Content::U64(9));
        assert_eq!(
            get(get(topo, "nested"), "deep"),
            &Content::Str("yes".into())
        );
        let Content::Seq(timeline) = get(&c, "timeline") else {
            panic!("timeline is a seq")
        };
        assert_eq!(timeline.len(), 2);
        assert_eq!(get(&timeline[1], "at_s"), &Content::F64(20.5));
    }

    #[test]
    fn parses_nested_and_multiline_arrays_and_inline_tables() {
        let doc = "gains = [[1.5e-10, 2.0e-10],\n  [3.0e-10, 4.0e-10],\n]\nrange = { lo = 0.5, hi = 2.0 }\nempty = []\n";
        let c = parse(doc).unwrap();
        let Content::Seq(rows) = get(&c, "gains") else {
            panic!("gains is a seq")
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            Content::Seq(vec![Content::F64(1.5e-10), Content::F64(2.0e-10)])
        );
        let range = get(&c, "range");
        assert_eq!(get(range, "lo"), &Content::F64(0.5));
        assert_eq!(get(&c, "empty"), &Content::Seq(vec![]));
    }

    #[test]
    fn rejects_malformed_documents_with_line_numbers() {
        for (doc, needle) in [
            ("a = ", "expected a value"),
            ("a = \"unterminated", "unterminated string"),
            ("a = 1\na = 2", "duplicate key"),
            ("[a\nb = 1", "malformed table header"),
            ("a = 1 2", "unexpected character"),
            ("a = [1, 2", "unterminated array"),
            ("a = nope", "invalid"),
            ("= 3", "expected a key"),
        ] {
            let err = parse(doc).unwrap_err();
            assert!(
                err.message.contains(needle),
                "doc {doc:?} gave {err}, wanted {needle}"
            );
            assert!(err.path.starts_with("line "), "path {:?}", err.path);
        }
        let err = parse("a = 1\na = 2").unwrap_err();
        assert_eq!(err.path, "line 2");
    }

    #[test]
    fn write_then_parse_round_trips() {
        let doc = r#"
schema_version = 1
name = "round trip \"quoted\""
x = 0.30000000000000004
n = -7

[table]
flag = false
floats = [1.0, 2.5, -3e-9]

[[items]]
weight = 1.5

[[items]]
weight = 2.0
tags = ["a", "b"]
"#;
        let c = parse(doc).unwrap();
        let text = write(&c).unwrap();
        let c2 = parse(&text).unwrap();
        assert_eq!(c, c2, "round trip changed the tree:\n{text}");
        // Idempotent: writing again yields the same bytes.
        assert_eq!(text, write(&c2).unwrap());
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [
            0.1,
            1.0 / 3.0,
            5e-27,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -0.0,
            123_456_789.125,
        ] {
            let c = Content::Map(vec![("v".into(), Content::F64(v))]);
            let text = write(&c).unwrap();
            let Content::Map(m) = parse(&text).unwrap() else {
                panic!()
            };
            let Content::F64(back) = m[0].1 else {
                panic!("not a float: {text}")
            };
            assert_eq!(v.to_bits(), back.to_bits(), "for {v}: {text}");
        }
    }

    #[test]
    fn integers_keep_their_sign_class() {
        let c = parse("a = 5\nb = -5\nc = 18446744073709551615").unwrap();
        assert_eq!(get(&c, "a"), &Content::U64(5));
        assert_eq!(get(&c, "b"), &Content::I64(-5));
        assert_eq!(get(&c, "c"), &Content::U64(u64::MAX));
    }

    #[test]
    fn writer_rejects_unrepresentable_values() {
        let bad = Content::Map(vec![("v".into(), Content::F64(f64::NAN))]);
        assert!(write(&bad).is_err());
        assert!(write(&Content::U64(3)).is_err());
    }
}
