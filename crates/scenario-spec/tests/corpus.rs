//! Runs the repository's `scenarios/` corpus — every named stress case
//! must parse, validate, materialize, and satisfy its `[expect]` block.
//! This is the same sweep CI runs via `tsajs-sim corpus`.

use mec_scenario_spec::run_corpus;
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn repository_corpus_passes_every_expect_block() {
    let report = run_corpus(&scenarios_dir()).expect("scenarios/ must be readable");
    assert!(
        report.len() >= 15,
        "the stress corpus must keep at least 15 named cases (found {})",
        report.len()
    );
    assert!(
        report.passed(),
        "failing specs:\n{}",
        report.failures().join("\n")
    );
}

#[test]
fn corpus_names_match_their_files() {
    // `name` inside each spec must equal its file stem, so artifacts,
    // logs and `Preset::scenario_file` pointers never drift apart.
    let dir = scenarios_dir();
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
        .collect();
    entries.sort();
    for path in entries {
        let spec = mec_scenario_spec::load_spec(&path).unwrap();
        let stem = path.file_stem().unwrap().to_str().unwrap();
        assert_eq!(
            spec.name,
            stem,
            "{} names itself `{}`",
            path.display(),
            spec.name
        );
        checked += 1;
    }
    assert!(checked >= 15);
}

#[test]
fn preset_backing_specs_exist_and_carry_the_preset_budgets() {
    use mec_workloads::Preset;
    for preset in [Preset::Quick, Preset::Full] {
        let file = preset
            .scenario_file()
            .expect("named presets are spec-backed");
        let file_name = PathBuf::from(file);
        let path = scenarios_dir().join(
            file_name
                .file_name()
                .expect("scenario_file points at a file"),
        );
        let spec =
            mec_scenario_spec::load_spec(&path).unwrap_or_else(|e| panic!("{file} must load: {e}"));
        let effort = spec
            .effort
            .unwrap_or_else(|| panic!("{file} needs an [effort] block"));
        assert_eq!(effort.trials, preset.trials, "{file}");
        assert_eq!(
            effort.ttsa_min_temperature, preset.ttsa_min_temperature,
            "{file}"
        );
    }
}
