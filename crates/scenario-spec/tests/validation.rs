//! Table-driven rejection tests for the declarative scenario schema.
//!
//! Every case is a complete TOML document plus the field path the error
//! must name. The table splits into two stages mirroring the API:
//! decode-stage failures (strict field checking, type errors, unknown
//! enum strings) surface from `from_toml_str`, while semantic failures
//! (ranges, cross-section requirements, timeline consistency) surface
//! from `validate()` on a successfully parsed spec.

use mec_scenario_spec::{ScenarioBuilder, ScenarioSpec, SpecError};
use proptest::prelude::*;

struct Case {
    label: &'static str,
    doc: &'static str,
    path: &'static str,
    message: &'static str,
}

/// Failures the parser must catch before `validate()` even runs.
const DECODE_REJECTIONS: &[Case] = &[
    Case {
        label: "missing schema_version",
        doc: "name = \"x\"\n",
        path: "schema_version",
        message: "missing required field",
    },
    Case {
        label: "unsupported schema_version",
        doc: "schema_version = 99\nname = \"x\"\n",
        path: "schema_version",
        message: "unsupported version 99",
    },
    Case {
        label: "missing name",
        doc: "schema_version = 1\n",
        path: "name",
        message: "missing required field",
    },
    Case {
        label: "unknown top-level field",
        doc: "schema_version = 1\nname = \"x\"\nflux_capacitor = 1.21\n",
        path: "flux_capacitor",
        message: "unknown field",
    },
    Case {
        label: "unknown nested field (typo)",
        doc: "schema_version = 1\nname = \"x\"\n[radio]\nbandwith_hz = 1.0\n",
        path: "radio.bandwith_hz",
        message: "unknown field",
    },
    Case {
        label: "unknown template field",
        doc: "schema_version = 1\nname = \"x\"\n[[population.template]]\nmcycles = 5.0\n",
        path: "population.template[0].mcycles",
        message: "unknown field",
    },
    Case {
        label: "unknown timeline event kind",
        doc: "schema_version = 1\nname = \"x\"\n[online]\n[[timeline]]\nat_s = 1.0\nevent = \"warp\"\n",
        path: "timeline[0].event",
        message: "unknown event `warp`",
    },
    Case {
        label: "unknown placement",
        doc: "schema_version = 1\nname = \"x\"\n[population]\nplacement = \"ring\"\n",
        path: "population.placement",
        message: "unknown placement",
    },
    Case {
        label: "explicit conflicts with generated sections",
        doc: "schema_version = 1\nname = \"x\"\n[topology]\nservers = 3\n[explicit]\n",
        path: "topology",
        message: "conflicts with [explicit]",
    },
    Case {
        label: "cold online run cannot also name a warm budget",
        doc: "schema_version = 1\nname = \"x\"\n[online]\ncold = true\nwarm_budget = 100\n",
        path: "online.warm_budget",
        message: "conflicts with cold = true",
    },
];

/// Failures `validate()` must catch on a well-formed document.
const VALIDATE_REJECTIONS: &[Case] = &[
    Case {
        label: "unknown admission policy",
        doc: "schema_version = 1\nname = \"x\"\n[online]\n[admission]\npolicy = \"coin_flip\"\n",
        path: "admission.policy",
        message: "unknown policy",
    },
    Case {
        label: "empty name",
        doc: "schema_version = 1\nname = \"\"\n",
        path: "name",
        message: "must not be empty",
    },
    Case {
        label: "zero servers",
        doc: "schema_version = 1\nname = \"x\"\n[topology]\nservers = 0\n",
        path: "topology.servers",
        message: "at least 1",
    },
    Case {
        label: "zero subchannels",
        doc: "schema_version = 1\nname = \"x\"\n[radio]\nsubchannels = 0\n",
        path: "radio.subchannels",
        message: "at least 1",
    },
    Case {
        label: "zero users",
        doc: "schema_version = 1\nname = \"x\"\n[population]\nusers = 0\n",
        path: "population.users",
        message: "at least 1",
    },
    Case {
        label: "non-positive template workload",
        doc: "schema_version = 1\nname = \"x\"\n[[population.template]]\ntask_mcycles = -5.0\n",
        path: "population.template[0].task_mcycles",
        message: "must be positive",
    },
    Case {
        label: "churn without an online section",
        doc: "schema_version = 1\nname = \"x\"\n[churn]\narrival_rate_hz = 0.1\nmean_sojourn_s = 60.0\n",
        path: "churn",
        message: "requires an [online] section",
    },
    Case {
        label: "timeline without an online section",
        doc: "schema_version = 1\nname = \"x\"\n\
              [[timeline]]\nat_s = 1.0\nevent = \"server_outage\"\nserver = 0\n",
        path: "timeline",
        message: "requires an [online] section",
    },
    Case {
        label: "negative event time",
        doc: "schema_version = 1\nname = \"x\"\n[online]\n\
              [[timeline]]\nat_s = -1.0\nevent = \"server_outage\"\nserver = 0\n",
        path: "timeline[0].at_s",
        message: "must be non-negative",
    },
    Case {
        label: "outage of a server outside the topology",
        doc: "schema_version = 1\nname = \"x\"\n[topology]\nservers = 4\n[online]\n\
              [[timeline]]\nat_s = 1.0\nevent = \"server_outage\"\nserver = 7\n",
        path: "timeline[0].server",
        message: "does not exist",
    },
    Case {
        label: "identical events at the same instant overlap",
        doc: "schema_version = 1\nname = \"x\"\n[online]\n\
              [[timeline]]\nat_s = 5.0\nevent = \"server_outage\"\nserver = 1\n\
              [[timeline]]\nat_s = 5.0\nevent = \"server_outage\"\nserver = 1\n",
        path: "timeline[1]",
        message: "overlaps timeline[0]",
    },
    Case {
        label: "double outage without recovery",
        doc: "schema_version = 1\nname = \"x\"\n[online]\n\
              [[timeline]]\nat_s = 5.0\nevent = \"server_outage\"\nserver = 2\n\
              [[timeline]]\nat_s = 15.0\nevent = \"server_outage\"\nserver = 2\n",
        path: "timeline[1]",
        message: "already down",
    },
    Case {
        label: "recovery of a server that is up",
        doc: "schema_version = 1\nname = \"x\"\n[online]\n\
              [[timeline]]\nat_s = 5.0\nevent = \"server_recovery\"\nserver = 1\n",
        path: "timeline[0]",
        message: "not down",
    },
    Case {
        label: "events may not take every server down at once",
        doc: "schema_version = 1\nname = \"x\"\n[topology]\nservers = 2\n[online]\n\
              [[timeline]]\nat_s = 5.0\nevent = \"server_outage\"\nserver = 0\n\
              [[timeline]]\nat_s = 6.0\nevent = \"server_outage\"\nserver = 1\n",
        path: "timeline[1]",
        message: "every server down",
    },
    Case {
        label: "flash crowd with zero arrivals",
        doc: "schema_version = 1\nname = \"x\"\n[online]\n\
              [[timeline]]\nat_s = 5.0\nevent = \"flash_crowd\"\narrivals = 0\nmean_sojourn_s = 30.0\n",
        path: "timeline[0].arrivals",
        message: "at least 1",
    },
    Case {
        label: "load ramp without adaptive churn",
        doc: "schema_version = 1\nname = \"x\"\n[online]\n\
              [[timeline]]\nat_s = 5.0\nevent = \"load_ramp\"\nrate_factor = 2.0\n",
        path: "timeline[0]",
        message: "load_ramp requires [churn] with adaptive = true",
    },
    Case {
        label: "hotspot drift fraction above one",
        doc: "schema_version = 1\nname = \"x\"\n[online]\n\
              [[timeline]]\nat_s = 5.0\nevent = \"hotspot_drift\"\ncell = 0\nfraction = 1.5\n",
        path: "timeline[0].fraction",
        message: "",
    },
    Case {
        label: "zero online epochs",
        doc: "schema_version = 1\nname = \"x\"\n[online]\nepochs = 0\n",
        path: "online.epochs",
        message: "at least 1",
    },
    Case {
        label: "zero effort trials",
        doc: "schema_version = 1\nname = \"x\"\n[effort]\ntrials = 0\nttsa_min_temperature = 1e-3\n",
        path: "effort.trials",
        message: "at least 1",
    },
];

#[test]
fn decode_rejections_name_the_offending_field() {
    for case in DECODE_REJECTIONS {
        let err = ScenarioSpec::from_toml_str(case.doc)
            .err()
            .unwrap_or_else(|| panic!("{}: expected a decode error", case.label));
        assert_eq!(err.path, case.path, "{}: {err}", case.label);
        assert!(
            err.message.contains(case.message),
            "{}: message {:?} missing {:?}",
            case.label,
            err.message,
            case.message
        );
    }
}

#[test]
fn validate_rejections_name_the_offending_field() {
    for case in VALIDATE_REJECTIONS {
        let spec = ScenarioSpec::from_toml_str(case.doc)
            .unwrap_or_else(|e| panic!("{}: must parse cleanly, got {e}", case.label));
        let err = spec
            .validate()
            .err()
            .unwrap_or_else(|| panic!("{}: expected a validation error", case.label));
        assert_eq!(err.path, case.path, "{}: {err}", case.label);
        assert!(
            err.message.contains(case.message),
            "{}: message {:?} missing {:?}",
            case.label,
            err.message,
            case.message
        );
    }
}

#[test]
fn every_rejection_displays_with_its_path() {
    // The CLI prints `SpecError` via Display; the contract is that the
    // path always leads so the user can jump to the field.
    let err = SpecError::new("timeline[3].at_s", "must be non-negative (got -1)");
    assert_eq!(
        err.to_string(),
        "timeline[3].at_s: must be non-negative (got -1)"
    );
}

/// Builds a valid spec from arbitrary-but-sane knobs. Every combination
/// this strategy emits must validate, round-trip through both encodings
/// bit-exactly, and materialize deterministically.
fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        2usize..6,    // servers (≥2 so an outage never empties the cell)
        1usize..16,   // users
        1usize..4,    // subchannels
        0.1f64..0.95, // beta_time (model requires [0, 1])
        0u8..16,      // feature bitmask: 1=no shadowing, 2=online, 4=churn, 8=events
        0.0f64..1.0,  // downlink selector (< 0.4 enables a downlink)
    )
        .prop_map(|(servers, users, subchannels, beta, flags, downlink)| {
            let churn = flags & 4 != 0;
            let events = flags & 8 != 0;
            let online = flags & 2 != 0 || churn || events;
            let mut b = ScenarioBuilder::new("prop")
                .servers(servers)
                .users(users)
                .subchannels(subchannels)
                .beta_time(beta);
            if flags & 1 != 0 {
                b = b.without_shadowing();
            }
            if downlink < 0.4 {
                b = b.downlink(5.0 + downlink * 100.0, 40.0);
            }
            if online {
                b = b.online(|o| {
                    o.epochs = 4;
                    o.warm_budget = Some(200);
                });
            }
            if churn {
                b = b.poisson_churn(0.1, 60.0);
            }
            if events {
                b = b.server_outage(12.0, 1).server_recovery(22.0, 1);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn built_specs_validate_and_round_trip_toml(spec in arb_spec()) {
        spec.validate().expect("builder output must validate");
        let text = spec.to_toml_string().unwrap();
        let back = ScenarioSpec::from_toml_str(&text).unwrap();
        prop_assert_eq!(&spec, &back, "TOML round-trip changed the spec:\n{}", text);
    }

    #[test]
    fn built_specs_round_trip_json(spec in arb_spec()) {
        let json = spec.to_json_string().unwrap();
        let back = ScenarioSpec::from_json_str(&json).unwrap();
        prop_assert_eq!(&spec, &back, "JSON round-trip changed the spec:\n{}", json);
    }

    #[test]
    fn materialization_is_seed_deterministic(spec in arb_spec(), seed in 0u64..1_000) {
        let a = spec.materialize(seed).unwrap();
        let b = spec.materialize(seed).unwrap();
        prop_assert_eq!(a.num_users(), b.num_users());
        prop_assert_eq!(a.num_servers(), b.num_servers());
        // Spot-check the channel tensor, the most seed-sensitive output.
        for u in a.user_ids() {
            for s in a.server_ids() {
                for j in 0..a.num_subchannels() {
                    let sub = mec_types::SubchannelId::new(j);
                    prop_assert_eq!(
                        a.gains().gain(u, s, sub).to_bits(),
                        b.gains().gain(u, s, sub).to_bits(),
                        "gain ({:?},{:?},{}) differs between identical materializations",
                        u, s, j
                    );
                }
            }
        }
    }
}
