//! Micro-batched request ingestion.
//!
//! Arrivals and departures accumulate in a [`MicroBatcher`] and are
//! released as one [`Batch`] when either bound of the [`BatchPolicy`]
//! trips: the batch reaches `max_size` requests, or its oldest request
//! has waited `max_age`. Each released batch is applied through a single
//! warm-started re-solve (see [`crate::core::SchedulerCore`]), which is
//! what lets the service amortize solver work across a burst instead of
//! paying one full refresh per request.
//!
//! Batching is purely a function of the request stream and the policy —
//! no clocks, no randomness — so replaying a recorded ingestion log
//! reproduces the exact same batch boundaries (the conformance invariant
//! in `tests/service.rs`).

use mec_types::{Error, Seconds};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What a client asks the service to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestKind {
    /// A new user enters the system and wants a scheduling decision.
    Arrival {
        /// External (stable) user id.
        user: u64,
    },
    /// An existing user leaves, freeing its slot.
    Departure {
        /// External (stable) user id.
        user: u64,
    },
}

impl RequestKind {
    /// The external user id the request concerns.
    pub fn user(&self) -> u64 {
        match self {
            RequestKind::Arrival { user } | RequestKind::Departure { user } => *user,
        }
    }
}

/// One timestamped ingestion request.
///
/// `submitted_s` is in whatever time domain the driver uses — simulated
/// seconds when the core is driven synchronously, wall-clock seconds
/// since service start under [`crate::runtime::ServiceRuntime`]. The
/// core only ever compares timestamps with each other.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceRequest {
    /// What to do.
    pub kind: RequestKind,
    /// When the request entered the service.
    pub submitted_s: f64,
}

impl ServiceRequest {
    /// An arrival at `submitted_s`.
    pub fn arrival(user: u64, submitted_s: f64) -> Self {
        Self {
            kind: RequestKind::Arrival { user },
            submitted_s,
        }
    }

    /// A departure at `submitted_s`.
    pub fn departure(user: u64, submitted_s: f64) -> Self {
        Self {
            kind: RequestKind::Departure { user },
            submitted_s,
        }
    }
}

/// When to close a micro-batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchPolicy {
    /// Close as soon as this many requests are pending.
    pub max_size: usize,
    /// Close as soon as the oldest pending request is this old.
    pub max_age: Seconds,
}

impl BatchPolicy {
    /// Default production shape: up to 16 requests or 50 ms, whichever
    /// trips first.
    pub fn default_production() -> Self {
        Self {
            max_size: 16,
            max_age: Seconds::new(0.05),
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `max_size` is zero or
    /// `max_age` is not positive and finite.
    pub fn validate(&self) -> Result<(), Error> {
        if self.max_size == 0 {
            return Err(Error::invalid("batch.max_size", "must be at least 1"));
        }
        let age = self.max_age.as_secs();
        if !age.is_finite() || age <= 0.0 {
            return Err(Error::invalid("batch.max_age", "must be positive"));
        }
        Ok(())
    }
}

/// A closed micro-batch, ready for one re-solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// The requests, in submission order (at most `max_size`).
    pub requests: Vec<ServiceRequest>,
    /// When the batch closed.
    pub closed_s: f64,
}

impl Batch {
    /// Age of the oldest request at close time.
    pub fn age_s(&self) -> f64 {
        self.requests
            .first()
            .map(|r| (self.closed_s - r.submitted_s).max(0.0))
            .unwrap_or(0.0)
    }
}

/// Accumulates requests until the policy closes a batch.
#[derive(Debug, Clone)]
pub struct MicroBatcher {
    policy: BatchPolicy,
    pending: VecDeque<ServiceRequest>,
}

impl MicroBatcher {
    /// An empty batcher under `policy`.
    pub fn new(policy: BatchPolicy) -> Self {
        Self {
            policy,
            pending: VecDeque::new(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Queues one request.
    pub fn push(&mut self, request: ServiceRequest) {
        self.pending.push_back(request);
    }

    /// Requests currently pending.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Age of the oldest pending request at `now_s` (zero when empty).
    pub fn oldest_age_s(&self, now_s: f64) -> f64 {
        self.pending
            .front()
            .map(|r| (now_s - r.submitted_s).max(0.0))
            .unwrap_or(0.0)
    }

    /// Whether the policy says a batch should close at `now_s`.
    pub fn ready(&self, now_s: f64) -> bool {
        self.pending.len() >= self.policy.max_size
            || (!self.pending.is_empty()
                && self.oldest_age_s(now_s) >= self.policy.max_age.as_secs())
    }

    /// Closes and returns a batch of up to `max_size` requests (`None`
    /// when nothing is pending). The caller decides *when* to call this —
    /// typically when [`ready`](Self::ready) trips or on shutdown flush.
    pub fn take(&mut self, now_s: f64) -> Option<Batch> {
        if self.pending.is_empty() {
            return None;
        }
        let n = self.pending.len().min(self.policy.max_size);
        let requests: Vec<ServiceRequest> = self.pending.drain(..n).collect();
        Some(Batch {
            requests,
            closed_s: now_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(max_size: usize, max_age: f64) -> BatchPolicy {
        BatchPolicy {
            max_size,
            max_age: Seconds::new(max_age),
        }
    }

    #[test]
    fn size_bound_closes_a_batch() {
        let mut b = MicroBatcher::new(policy(3, 100.0));
        for i in 0..2 {
            b.push(ServiceRequest::arrival(i, i as f64));
            assert!(!b.ready(i as f64));
        }
        b.push(ServiceRequest::arrival(2, 2.0));
        assert!(b.ready(2.0));
        let batch = b.take(2.0).unwrap();
        assert_eq!(batch.requests.len(), 3);
        assert!(b.is_empty());
    }

    #[test]
    fn age_bound_closes_a_batch() {
        let mut b = MicroBatcher::new(policy(100, 0.5));
        b.push(ServiceRequest::arrival(1, 10.0));
        assert!(!b.ready(10.4));
        assert!(b.ready(10.5));
        let batch = b.take(10.6).unwrap();
        assert_eq!(batch.requests.len(), 1);
        assert!((batch.age_s() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn take_caps_at_max_size_and_leaves_a_backlog() {
        let mut b = MicroBatcher::new(policy(4, 1.0));
        for i in 0..10 {
            b.push(ServiceRequest::arrival(i, 0.0));
        }
        let batch = b.take(0.0).unwrap();
        assert_eq!(batch.requests.len(), 4);
        assert_eq!(b.len(), 6, "remainder becomes the backlog pressure signal");
        assert_eq!(batch.requests[0].kind, RequestKind::Arrival { user: 0 });
    }

    #[test]
    fn empty_take_is_none() {
        let mut b = MicroBatcher::new(policy(4, 1.0));
        assert!(b.take(5.0).is_none());
        assert!(!b.ready(5.0));
    }

    #[test]
    fn policy_validation_rejects_degenerate_bounds() {
        assert!(policy(0, 1.0).validate().is_err());
        assert!(policy(1, 0.0).validate().is_err());
        assert!(policy(1, f64::NAN).validate().is_err());
        assert!(BatchPolicy::default_production().validate().is_ok());
    }
}
