//! The deterministic scheduler core: micro-batch in, warm re-solve,
//! snapshot out.
//!
//! [`SchedulerCore`] is single-threaded and clock-free: callers stamp
//! every request with a timestamp and decide when batches are cut
//! ([`close_batch`](SchedulerCore::close_batch) /
//! [`flush`](SchedulerCore::flush)). The core records every request and
//! every batch cut in an **ingestion log**; replaying that log through
//! [`SchedulerCore::replay`] reproduces the final assignment bit-for-bit
//! — including tier decisions, because the backlog/age pressure signals
//! are themselves functions of the logged stream. This is the service's
//! conformance invariant (pinned in `tests/service.rs`).
//!
//! Wall-clock never enters a decision. The threaded wrapper
//! ([`crate::runtime::ServiceRuntime`]) stamps requests with wall offsets
//! and the loadtest measures wall latency, but the core would make the
//! same decisions for the same stamped stream on any machine.
//!
//! Batch pipeline (mirrors the online engine's epoch pipeline, PR 4/5):
//!
//! 1. apply the batch's departures and arrivals to the population
//!    (arrivals draw a seeded position; the population cap rejects the
//!    rest — this is the admission-control half of `GreedyAdmit`),
//! 2. let the [`TierController`] pick a quality tier from backlog depth
//!    and batch age,
//! 3. rebuild the [`Scenario`] at the survivors' positions with a
//!    per-batch shadowing seed and *patch* the previous assignment onto
//!    the new population ([`Assignment::patched`]),
//! 4. re-solve at the tier's budget — warm tempered ladder, reduced warm
//!    anneal, greedy admission with no solve at all, or (when a
//!    full-quality batch covers a city-scale population) the sharded
//!    engine: a cold [`tsajs::solve_sharded`] on the first city-scale
//!    batch, then warm [`tsajs::resolve_sharded`] patches of the prior
//!    sharded decision on consecutive ones,
//! 5. evaluate, score the SLA, publish an immutable [`ServiceSnapshot`]
//!    through the lock-free [`SnapshotCell`], and emit a [`BatchReport`].

use crate::batch::{Batch, BatchPolicy, MicroBatcher, RequestKind, ServiceRequest};
use crate::metrics::ServiceMetrics;
use crate::snapshot::SnapshotCell;
use crate::tier::{Tier, TierController, TierPolicy, TierTransition};
use mec_system::{Assignment, Evaluator};
use mec_topology::{place_users_uniform, NetworkLayout, Point2};
use mec_types::{effective_parallelism, Error, Seconds, UserId};
use mec_workloads::{ExperimentParams, ScenarioGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tsajs::{
    anneal, anneal_from, resolve_sharded, solve_sharded, temper_from, InitialTemperature,
    NeighborhoodKernel, ShardConfig, ShardOutcome, TemperingConfig, TtsaConfig,
    DEFAULT_REFRESH_TEMPERATURE,
};

/// Epoch-seed stride shared with the online engine, so per-batch
/// shadowing redraws decorrelate the same way per-epoch redraws do.
const BATCH_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;
/// Solver-stream decorrelation constant (same as the online engine).
const CHAIN_STREAM: u64 = 0x5851_F42D_4C95_7F2D;
/// Position-stream decorrelation constant.
const POSITION_STREAM: u64 = 0x94D0_49BB_1331_11EB;
/// Shard-solver stream decorrelation constant: city-scale batches derive
/// their [`ShardConfig`] seed from the batch seed through this stream so
/// sharded re-solves never correlate with shadowing redraws.
const SHARD_STREAM: u64 = 0xA076_1D64_78BD_642F;

/// Everything a service instance needs to know.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Scenario template: topology, radio, task and preference
    /// parameters. `num_users` is overridden per batch by the live
    /// population size.
    pub params: ExperimentParams,
    /// Full TTSA schedule used for the cold first solve and as the base
    /// of every warm refresh.
    pub base: TtsaConfig,
    /// Replica ladder for [`Tier::Full`] re-solves.
    pub tempering: TemperingConfig,
    /// Proposal budget of a [`Tier::Full`] warm refresh.
    pub full_budget: u64,
    /// Proposal budget of a [`Tier::Shortened`] warm refresh.
    pub short_budget: u64,
    /// Fixed restart temperature of warm refreshes.
    pub refresh_temperature: f64,
    /// Micro-batch bounds.
    pub batch: BatchPolicy,
    /// Degradation thresholds.
    pub tiers: TierPolicy,
    /// Population size at which [`Tier::Full`] batches route through the
    /// sharded engine ([`Tier::CityScale`]) instead of the monolithic
    /// tempered ladder. Pressure-degraded batches are never promoted.
    pub city_scale_threshold: usize,
    /// Sharded-engine configuration for [`Tier::CityScale`] batches (the
    /// seed is overridden per batch from the decorrelated shard stream).
    pub shard: ShardConfig,
    /// Per-task completion-time SLA deadline.
    pub deadline: Seconds,
    /// Admission cap: arrivals beyond this population size are rejected.
    pub max_users: usize,
    /// Worker cap for the tempered ladder (`None` = `TSAJS_THREADS` or
    /// hardware parallelism — see `effective_parallelism`).
    pub threads: Option<usize>,
    /// Master seed: positions, shadowing and solver chains all derive
    /// from it through decorrelated streams.
    pub seed: u64,
}

impl ServiceConfig {
    /// Production-shaped defaults over `params`.
    pub fn new(params: ExperimentParams, seed: u64) -> Self {
        let slots = params.num_servers * params.num_subchannels;
        Self {
            params,
            base: TtsaConfig::paper_default(),
            tempering: TemperingConfig::paper_default(),
            full_budget: 4_000,
            short_budget: 600,
            refresh_temperature: DEFAULT_REFRESH_TEMPERATURE,
            batch: BatchPolicy::default_production(),
            tiers: TierPolicy::default_production(),
            city_scale_threshold: 10_000,
            shard: ShardConfig::paper_default(),
            deadline: Seconds::new(1.0),
            max_users: 4 * slots.max(1),
            threads: None,
            seed,
        }
    }

    /// CI-scale config: a small population, a quick cooling schedule and
    /// tight budgets so a whole loadtest finishes in seconds.
    pub fn quick(seed: u64) -> Self {
        let params = ExperimentParams::paper_default().with_users(8);
        let mut cfg = Self::new(params, seed);
        cfg.base = TtsaConfig::paper_default().with_min_temperature(1e-2);
        cfg.full_budget = 1_200;
        cfg.short_budget = 250;
        cfg.shard = ShardConfig::paper_default()
            .with_cluster_size(2)
            .with_max_sweeps(2)
            .with_ttsa(
                TtsaConfig::paper_default()
                    .with_min_temperature(1e-2)
                    .with_proposal_budget(400),
            )
            .with_tempering(
                TemperingConfig::paper_default()
                    .with_replicas(2)
                    .with_rounds(2),
            );
        cfg
    }

    /// Replaces the city-scale population threshold.
    pub fn with_city_scale_threshold(mut self, users: usize) -> Self {
        self.city_scale_threshold = users;
        self
    }

    /// Replaces the worker cap.
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Replaces the micro-batch bounds.
    pub fn with_batch(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Replaces the tier thresholds.
    pub fn with_tiers(mut self, tiers: TierPolicy) -> Self {
        self.tiers = tiers;
        self
    }

    /// Validates every knob.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for degenerate budgets, caps
    /// or sub-policies.
    pub fn validate(&self) -> Result<(), Error> {
        self.base.validate()?;
        self.batch.validate()?;
        self.tiers.validate()?;
        self.shard.validate()?;
        if self.city_scale_threshold == 0 {
            return Err(Error::invalid("city_scale_threshold", "must be at least 1"));
        }
        if self.full_budget == 0 || self.short_budget == 0 {
            return Err(Error::invalid("budgets", "must be positive"));
        }
        if !self.refresh_temperature.is_finite() || self.refresh_temperature <= 0.0 {
            return Err(Error::invalid("refresh_temperature", "must be positive"));
        }
        if !self.deadline.as_secs().is_finite() || self.deadline.as_secs() <= 0.0 {
            return Err(Error::invalid("deadline", "must be positive"));
        }
        if self.max_users == 0 {
            return Err(Error::invalid("max_users", "must be at least 1"));
        }
        Ok(())
    }

    fn refresh(&self, budget: u64) -> TtsaConfig {
        self.base
            .with_proposal_budget(budget)
            .with_initial_temperature(InitialTemperature::Fixed(self.refresh_temperature))
    }
}

/// The immutable state published after every batch — what query traffic
/// reads through the lock-free [`SnapshotCell`].
#[derive(Debug, Clone)]
pub struct ServiceSnapshot {
    /// Monotonic publication counter (0 = the empty pre-traffic state).
    pub version: u64,
    /// Service time of the publishing batch.
    pub time_s: f64,
    /// Tier the publishing batch was served at.
    pub tier: Tier,
    /// External user ids, index-aligned with `assignment`'s user axis.
    pub users: Vec<u64>,
    /// The live scheduling decision.
    pub assignment: Assignment,
    /// System utility `J*(X)` of the decision.
    pub utility: f64,
}

impl ServiceSnapshot {
    /// The slot of external user `user`, if currently offloaded.
    pub fn slot_of(&self, user: u64) -> Option<(usize, usize)> {
        let v = self.users.iter().position(|&u| u == user)?;
        self.assignment
            .slot(UserId::new(v))
            .map(|(s, j)| (s.index(), j.index()))
    }
}

/// One entry of the ingestion log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LogEntry {
    /// A request entered the batcher.
    Request(ServiceRequest),
    /// A batch was cut at `time_s`.
    BatchClose {
        /// Cut time in service time.
        time_s: f64,
    },
}

/// What one micro-batch did — the service's streamable JSONL record.
///
/// Field order is pinned by [`BatchReport::FIELD_NAMES`]; the golden
/// schema test diffs serialized key order against it so accidental
/// schema drift fails CI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Batch index.
    pub batch: usize,
    /// Service time at which the batch was cut.
    pub time_s: f64,
    /// Tier the batch was served at (`full` / `shortened` /
    /// `greedy_admit` / `city_scale`).
    pub tier: String,
    /// Requests decided by this batch.
    pub requests: usize,
    /// Arrivals admitted.
    pub arrivals: usize,
    /// Departures processed.
    pub departures: usize,
    /// Arrivals rejected at the population cap.
    pub rejected: usize,
    /// Requests still waiting after this batch was cut (tier pressure).
    pub backlog: usize,
    /// Age of the oldest request in the batch at cut time.
    pub batch_age_s: f64,
    /// Population size after the batch.
    pub active_users: usize,
    /// System utility of the published decision.
    pub utility: f64,
    /// Users offloading in the published decision.
    pub num_offloaded: usize,
    /// Surviving users whose slot changed relative to the patched warm
    /// start.
    pub reassignments: usize,
    /// Neighborhood proposals spent re-solving.
    pub proposals: u64,
    /// Whether the solve warm-started from a patched decision.
    pub warm_started: bool,
    /// Fraction of the population meeting the SLA deadline.
    pub deadline_hit_rate: f64,
    /// Version of the snapshot this batch published.
    pub snapshot_version: u64,
}

impl BatchReport {
    /// Serialized field order — the service JSONL schema pin.
    pub const FIELD_NAMES: [&'static str; 17] = [
        "batch",
        "time_s",
        "tier",
        "requests",
        "arrivals",
        "departures",
        "rejected",
        "backlog",
        "batch_age_s",
        "active_users",
        "utility",
        "num_offloaded",
        "reassignments",
        "proposals",
        "warm_started",
        "deadline_hit_rate",
        "snapshot_version",
    ];

    /// The report as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("BatchReport serializes infallibly")
    }
}

struct ServiceUser {
    id: u64,
    position: Point2,
}

/// The deterministic scheduler service core. See the module docs.
pub struct SchedulerCore {
    config: ServiceConfig,
    layout: NetworkLayout,
    kernel: NeighborhoodKernel,
    chain_rng: StdRng,
    position_rng: StdRng,
    users: Vec<ServiceUser>,
    prev: Option<(Vec<u64>, Assignment)>,
    /// The last sharded decision, kept only across *consecutive*
    /// city-scale batches so the next one can warm re-solve from it.
    shard_prior: Option<ShardOutcome>,
    batcher: MicroBatcher,
    tiers: TierController,
    cell: Arc<SnapshotCell<ServiceSnapshot>>,
    metrics: ServiceMetrics,
    log: Vec<LogEntry>,
    batch_index: usize,
    version: u64,
    first_close_s: Option<f64>,
}

impl SchedulerCore {
    /// Builds a core with an empty population and publishes the empty
    /// snapshot (version 0).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an invalid config or
    /// topology.
    pub fn new(config: ServiceConfig) -> Result<Self, Error> {
        config.validate()?;
        let layout = ScenarioGenerator::new(config.params).layout()?;
        let empty = ServiceSnapshot {
            version: 0,
            time_s: 0.0,
            tier: Tier::Full,
            users: Vec::new(),
            assignment: Assignment::with_dims(
                0,
                config.params.num_servers,
                config.params.num_subchannels,
            ),
            utility: 0.0,
        };
        Ok(Self {
            chain_rng: StdRng::seed_from_u64(config.seed ^ CHAIN_STREAM),
            position_rng: StdRng::seed_from_u64(config.seed ^ POSITION_STREAM),
            batcher: MicroBatcher::new(config.batch),
            tiers: TierController::new(config.tiers),
            cell: Arc::new(SnapshotCell::new(Arc::new(empty))),
            layout,
            kernel: NeighborhoodKernel::new(),
            config,
            users: Vec::new(),
            prev: None,
            shard_prior: None,
            metrics: ServiceMetrics::default(),
            log: Vec::new(),
            batch_index: 0,
            version: 0,
            first_close_s: None,
        })
    }

    /// The config in force.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// A handle to the snapshot cell for lock-free readers. Clones share
    /// the cell with the core.
    pub fn snapshot_cell(&self) -> Arc<SnapshotCell<ServiceSnapshot>> {
        Arc::clone(&self.cell)
    }

    /// The currently-published snapshot.
    pub fn snapshot(&self) -> Arc<ServiceSnapshot> {
        self.cell.load()
    }

    /// Aggregate metrics so far.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Mutable metrics access (the runtime merges queue-rejection counts
    /// in at shutdown).
    pub fn metrics_mut(&mut self) -> &mut ServiceMetrics {
        &mut self.metrics
    }

    /// The ingestion log: every request and batch cut, in order.
    pub fn ingestion_log(&self) -> &[LogEntry] {
        &self.log
    }

    /// The tier-transition log.
    pub fn tier_log(&self) -> &[TierTransition] {
        self.tiers.log()
    }

    /// The tier currently in force.
    pub fn tier(&self) -> Tier {
        self.tiers.current()
    }

    /// Requests accumulated but not yet decided.
    pub fn pending(&self) -> usize {
        self.batcher.len()
    }

    /// Queues one request. Does **not** cut a batch — the driver decides
    /// when (see [`ready`](Self::ready) and
    /// [`close_batch`](Self::close_batch)), which is what lets backlog
    /// build up under overload and drive the degradation tiers.
    pub fn submit(&mut self, request: ServiceRequest) {
        self.log.push(LogEntry::Request(request));
        self.batcher.push(request);
    }

    /// Whether the batch policy says a batch should be cut at `now_s`.
    pub fn ready(&self, now_s: f64) -> bool {
        self.batcher.ready(now_s)
    }

    /// Cuts and applies one micro-batch at `now_s`. Returns `None` when
    /// nothing is pending.
    ///
    /// # Errors
    ///
    /// Propagates scenario-generation and solver errors.
    pub fn close_batch(&mut self, now_s: f64) -> Result<Option<BatchReport>, Error> {
        let Some(batch) = self.batcher.take(now_s) else {
            return Ok(None);
        };
        self.log.push(LogEntry::BatchClose { time_s: now_s });
        self.apply(batch, now_s).map(Some)
    }

    /// Cuts batches until nothing is pending (shutdown drain).
    ///
    /// # Errors
    ///
    /// Propagates the first batch failure.
    pub fn flush(&mut self, now_s: f64) -> Result<Vec<BatchReport>, Error> {
        let mut reports = Vec::new();
        while let Some(report) = self.close_batch(now_s)? {
            reports.push(report);
        }
        Ok(reports)
    }

    /// Replays a recorded ingestion log against a fresh core. With the
    /// same config, the result is bit-for-bit identical to the run that
    /// produced the log — population, assignment, utility, tier log and
    /// batch reports all match.
    ///
    /// # Errors
    ///
    /// As [`new`](Self::new) and [`close_batch`](Self::close_batch).
    pub fn replay(config: ServiceConfig, log: &[LogEntry]) -> Result<Self, Error> {
        let mut core = Self::new(config)?;
        for entry in log {
            match entry {
                LogEntry::Request(request) => core.submit(*request),
                LogEntry::BatchClose { time_s } => {
                    core.close_batch(*time_s)?;
                }
            }
        }
        Ok(core)
    }

    fn apply(&mut self, batch: Batch, now_s: f64) -> Result<BatchReport, Error> {
        let mut arrivals = 0usize;
        let mut departures = 0usize;
        let mut rejected = 0usize;
        for request in &batch.requests {
            match request.kind {
                RequestKind::Arrival { user } => {
                    if self.users.iter().any(|u| u.id == user) {
                        continue;
                    }
                    if self.users.len() >= self.config.max_users {
                        rejected += 1;
                        continue;
                    }
                    let position = place_users_uniform(&self.layout, 1, &mut self.position_rng)
                        .pop()
                        .expect("one position requested");
                    self.users.push(ServiceUser { id: user, position });
                    arrivals += 1;
                }
                RequestKind::Departure { user } => {
                    if let Some(at) = self.users.iter().position(|u| u.id == user) {
                        self.users.remove(at);
                        departures += 1;
                    }
                }
            }
        }

        let backlog = self.batcher.len();
        let age_ratio = batch.age_s() / self.config.batch.max_age.as_secs();
        let transitions_before = self.tiers.log().len();
        let tier = self
            .tiers
            .decide(self.batch_index, now_s, backlog, age_ratio);

        let n = self.users.len();
        // City-scale promotion happens *after* the pressure decision and
        // outside the controller: a Full-quality batch over a population
        // at or beyond the threshold is served by the sharded engine.
        // Pressure-degraded batches keep their cheaper tier, and the
        // controller's hysteresis state never sees CityScale.
        let tier = if tier == Tier::Full && n >= self.config.city_scale_threshold {
            Tier::CityScale
        } else {
            tier
        };
        let ids: Vec<u64> = self.users.iter().map(|u| u.id).collect();
        let (assignment, utility, num_offloaded, reassignments, proposals, warm_started, hit_rate);
        if n == 0 {
            assignment = Assignment::with_dims(
                0,
                self.config.params.num_servers,
                self.config.params.num_subchannels,
            );
            (
                utility,
                num_offloaded,
                reassignments,
                proposals,
                warm_started,
                hit_rate,
            ) = (0.0, 0, 0, 0u64, false, 1.0);
            self.prev = None;
            self.shard_prior = None;
        } else {
            let positions: Vec<Point2> = self.users.iter().map(|u| u.position).collect();
            let batch_seed = self
                .config
                .seed
                .wrapping_add(1 + self.batch_index as u64)
                .wrapping_mul(BATCH_SEED_STRIDE);
            let generator = ScenarioGenerator::new(self.config.params.with_users(n));
            let scenario = generator.generate_at(&positions, batch_seed)?;

            let patched = match &self.prev {
                Some((prev_ids, prev_assignment)) => {
                    let map: Vec<Option<UserId>> = ids
                        .iter()
                        .map(|id| prev_ids.iter().position(|old| old == id).map(UserId::new))
                        .collect();
                    Some((prev_assignment.patched(&map)?, map))
                }
                None => None,
            };

            let mut next_shard_prior: Option<ShardOutcome> = None;
            let solved = match (&tier, &patched) {
                (Tier::GreedyAdmit, _) => {
                    let mut a = patched.as_ref().map(|(a, _)| a.clone()).unwrap_or_else(|| {
                        Assignment::with_dims(
                            n,
                            self.config.params.num_servers,
                            self.config.params.num_subchannels,
                        )
                    });
                    // Admission only: arrivals get the nearest station's
                    // first free subchannel, everyone else keeps their
                    // slot. No objective evaluation during placement.
                    for (v, position) in positions.iter().enumerate() {
                        let u = UserId::new(v);
                        if a.slot(u).is_none() {
                            let s = self.layout.nearest_station(*position);
                            if let Some(j) = a.free_subchannel(s) {
                                a.assign(u, s, j)?;
                            }
                        }
                    }
                    (a, 0u64, patched.is_some())
                }
                (Tier::Full, Some((warm, _))) => {
                    let outcome = temper_from(
                        &scenario,
                        &self.config.tempering,
                        &self.config.refresh(self.config.full_budget),
                        &self.kernel,
                        &mut self.chain_rng,
                        effective_parallelism(self.config.threads),
                        warm.clone(),
                    );
                    (outcome.assignment, outcome.proposals, true)
                }
                (Tier::Shortened, Some((warm, _))) => {
                    let outcome = anneal_from(
                        &scenario,
                        &self.config.refresh(self.config.short_budget),
                        &self.kernel,
                        &mut self.chain_rng,
                        warm.clone(),
                    );
                    (outcome.assignment, outcome.proposals, true)
                }
                (Tier::CityScale, _) => {
                    // City-scale populations skip the monolithic ladder
                    // and go through the sharded engine, seeded from the
                    // decorrelated shard stream so replay reproduces it
                    // bit-for-bit. Consecutive city-scale batches warm
                    // re-solve from the prior sharded decision (patching
                    // survivors, re-solving only churned clusters); any
                    // gap — demotion, empty population — clears the
                    // prior, so the next city-scale batch is cold again.
                    let config = self.config.shard.with_seed(batch_seed ^ SHARD_STREAM);
                    let workers = effective_parallelism(self.config.threads);
                    let (outcome, warm) = match (&self.shard_prior, &patched) {
                        (Some(prior), Some((_, map))) => (
                            resolve_sharded(&scenario, &config, workers, prior, map)?,
                            true,
                        ),
                        _ => (solve_sharded(&scenario, &config, workers)?, false),
                    };
                    let assignment = outcome.assignment.clone();
                    let proposals = outcome.proposals;
                    next_shard_prior = Some(outcome);
                    (assignment, proposals, warm)
                }
                (_, None) => {
                    // First decision: one cold solve at the base schedule.
                    let outcome = anneal(
                        &scenario,
                        &self.config.base,
                        &self.kernel,
                        &mut self.chain_rng,
                    );
                    (outcome.assignment, outcome.proposals, false)
                }
            };
            let (solved_assignment, solved_proposals, solved_warm) = solved;
            self.shard_prior = next_shard_prior;
            reassignments = match &patched {
                Some((patched_assignment, map)) => (0..n)
                    .filter(|&v| {
                        map[v].is_some()
                            && patched_assignment.slot(UserId::new(v))
                                != solved_assignment.slot(UserId::new(v))
                    })
                    .count(),
                None => 0,
            };

            let evaluation = Evaluator::new(&scenario).evaluate(&solved_assignment)?;
            let deadline_s = self.config.deadline.as_secs();
            let hits = evaluation
                .users
                .iter()
                .filter(|m| m.completion_time.as_secs() <= deadline_s)
                .count();
            hit_rate = hits as f64 / n as f64;
            self.metrics.sla_hits += hits as u64;
            self.metrics.sla_total += n as u64;

            utility = evaluation.system_utility;
            num_offloaded = solved_assignment.num_offloaded();
            proposals = solved_proposals;
            warm_started = solved_warm;
            self.prev = Some((ids.clone(), solved_assignment.clone()));
            assignment = solved_assignment;
        }

        self.version += 1;
        self.cell.store(Arc::new(ServiceSnapshot {
            version: self.version,
            time_s: now_s,
            tier,
            users: ids,
            assignment,
            utility,
        }));

        for request in &batch.requests {
            self.metrics
                .decision_latency
                .record(now_s - request.submitted_s);
        }
        self.metrics.batches += 1;
        self.metrics.requests += batch.requests.len() as u64;
        self.metrics.arrivals += arrivals as u64;
        self.metrics.departures += departures as u64;
        self.metrics.admission_rejections += rejected as u64;
        self.metrics.tier_batches[tier.index()] += 1;
        self.metrics.tier_transitions += (self.tiers.log().len() - transitions_before) as u64;
        self.metrics.snapshot_publishes += 1;
        self.metrics.proposals += proposals;
        let first = *self.first_close_s.get_or_insert(now_s);
        self.metrics.span_s = (now_s - first).max(0.0);

        let report = BatchReport {
            batch: self.batch_index,
            time_s: now_s,
            tier: tier.as_str().to_string(),
            requests: batch.requests.len(),
            arrivals,
            departures,
            rejected,
            backlog,
            batch_age_s: batch.age_s(),
            active_users: n,
            utility,
            num_offloaded,
            reassignments,
            proposals,
            warm_started,
            deadline_hit_rate: hit_rate,
            snapshot_version: self.version,
        };
        self.batch_index += 1;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(seed: u64) -> ServiceConfig {
        let mut cfg = ServiceConfig::quick(seed);
        cfg.batch = BatchPolicy {
            max_size: 4,
            max_age: Seconds::new(0.05),
        };
        cfg.tiers = TierPolicy {
            shorten_depth: 4,
            greedy_depth: 12,
            shorten_age_ratio: 4.0,
            greedy_age_ratio: 16.0,
            upgrade_margin: 1,
            upgrade_hold: 2,
        };
        cfg
    }

    fn drive_arrivals(core: &mut SchedulerCore, ids: std::ops::Range<u64>, t: f64) {
        for id in ids {
            core.submit(ServiceRequest::arrival(id, t));
        }
    }

    #[test]
    fn batches_admit_users_and_publish_snapshots() {
        let mut core = SchedulerCore::new(quick_config(7)).unwrap();
        assert_eq!(core.snapshot().version, 0);
        drive_arrivals(&mut core, 0..4, 0.0);
        let report = core.close_batch(0.05).unwrap().unwrap();
        assert_eq!(report.arrivals, 4);
        assert_eq!(report.active_users, 4);
        assert_eq!(report.tier, "full");
        assert!(!report.warm_started, "first solve is cold");
        let snap = core.snapshot();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.users, vec![0, 1, 2, 3]);
        assert_eq!(snap.assignment.num_users(), 4);

        // Second batch warm-starts and keeps survivors patched in.
        core.submit(ServiceRequest::departure(1, 0.1));
        core.submit(ServiceRequest::arrival(9, 0.1));
        let report = core.close_batch(0.15).unwrap().unwrap();
        assert!(report.warm_started);
        assert_eq!(report.departures, 1);
        assert_eq!(report.arrivals, 1);
        assert_eq!(core.snapshot().users, vec![0, 2, 3, 9]);
    }

    #[test]
    fn identical_drives_are_bit_identical() {
        let run = |seed| {
            let mut core = SchedulerCore::new(quick_config(seed)).unwrap();
            drive_arrivals(&mut core, 0..6, 0.0);
            let mut reports = core.flush(0.05).unwrap();
            core.submit(ServiceRequest::departure(2, 0.1));
            drive_arrivals(&mut core, 10..13, 0.1);
            reports.extend(core.flush(0.2).unwrap());
            (reports, core.snapshot())
        };
        let (r1, s1) = run(42);
        let (r2, s2) = run(42);
        assert_eq!(r1, r2);
        assert_eq!(s1.users, s2.users);
        assert_eq!(s1.assignment, s2.assignment);
        assert_eq!(s1.utility.to_bits(), s2.utility.to_bits());
        let (r3, _) = run(43);
        assert_ne!(
            r1.iter().map(|r| r.utility.to_bits()).collect::<Vec<_>>(),
            r3.iter().map(|r| r.utility.to_bits()).collect::<Vec<_>>(),
            "different seeds must not collide"
        );
    }

    #[test]
    fn replaying_the_ingestion_log_reproduces_the_final_state() {
        let mut core = SchedulerCore::new(quick_config(11)).unwrap();
        drive_arrivals(&mut core, 0..10, 0.0);
        core.flush(0.05).unwrap();
        core.submit(ServiceRequest::departure(3, 0.2));
        drive_arrivals(&mut core, 20..24, 0.25);
        core.flush(0.3).unwrap();

        let replayed = SchedulerCore::replay(quick_config(11), core.ingestion_log()).unwrap();
        let live = core.snapshot();
        let cold = replayed.snapshot();
        assert_eq!(live.users, cold.users);
        assert_eq!(live.assignment, cold.assignment);
        assert_eq!(live.utility.to_bits(), cold.utility.to_bits());
        assert_eq!(live.version, cold.version);
        assert_eq!(core.tier_log(), replayed.tier_log());
    }

    #[test]
    fn population_cap_rejects_extra_arrivals() {
        let mut cfg = quick_config(3);
        cfg.max_users = 5;
        let mut core = SchedulerCore::new(cfg).unwrap();
        drive_arrivals(&mut core, 0..4, 0.0);
        core.flush(0.01).unwrap();
        drive_arrivals(&mut core, 4..8, 0.02);
        let total_rejected: usize = core.flush(0.03).unwrap().iter().map(|r| r.rejected).sum();
        assert_eq!(total_rejected, 3);
        assert_eq!(core.snapshot().users.len(), 5);
        assert_eq!(core.metrics().admission_rejections, 3);
    }

    #[test]
    fn duplicate_arrivals_and_unknown_departures_are_noops() {
        let mut core = SchedulerCore::new(quick_config(5)).unwrap();
        drive_arrivals(&mut core, 0..3, 0.0);
        core.flush(0.01).unwrap();
        core.submit(ServiceRequest::arrival(1, 0.02));
        core.submit(ServiceRequest::departure(99, 0.02));
        let report = core.close_batch(0.03).unwrap().unwrap();
        assert_eq!(report.arrivals, 0);
        assert_eq!(report.departures, 0);
        assert_eq!(core.snapshot().users, vec![0, 1, 2]);
    }

    #[test]
    fn greedy_tier_produces_feasible_assignments() {
        let mut cfg = quick_config(9);
        cfg.tiers.shorten_depth = 2;
        cfg.tiers.greedy_depth = 3;
        let mut core = SchedulerCore::new(cfg).unwrap();
        // Big backlog: 4 go into the batch, 8 stay pending → GreedyAdmit.
        drive_arrivals(&mut core, 0..12, 0.0);
        let report = core.close_batch(0.01).unwrap().unwrap();
        assert_eq!(report.tier, "greedy_admit");
        assert_eq!(report.proposals, 0, "greedy tier never solves");
        let snap = core.snapshot();
        assert!(
            snap.assignment.num_offloaded() > 0,
            "greedy admission offloads"
        );
        // Feasibility of the greedy decision against its own scenario is
        // implied by `assign` checks; spot-check slot uniqueness.
        let mut seen = std::collections::HashSet::new();
        for v in 0..snap.users.len() {
            if let Some((s, j)) = snap.assignment.slot(UserId::new(v)) {
                assert!(seen.insert((s.index(), j.index())), "slot reuse");
            }
        }
    }

    #[test]
    fn city_scale_populations_route_through_the_sharded_engine() {
        let mut cfg = quick_config(13).with_city_scale_threshold(6);
        cfg.batch.max_size = 16;
        let mut core = SchedulerCore::new(cfg.clone()).unwrap();
        drive_arrivals(&mut core, 0..8, 0.0);
        let report = core.close_batch(0.01).unwrap().unwrap();
        assert_eq!(report.tier, "city_scale");
        assert!(!report.warm_started, "first shard solve is cold");
        assert!(report.proposals > 0, "the sharded engine really solved");
        let snap = core.snapshot();
        assert_eq!(snap.tier, Tier::CityScale);
        assert!(snap.assignment.num_offloaded() > 0);
        assert_eq!(core.metrics().tier_batches[Tier::CityScale.index()], 1);
        assert!(
            core.tier_log().is_empty(),
            "city-scale promotion is not a controller transition"
        );

        // A consecutive city-scale batch warm re-solves from the prior
        // sharded decision instead of cold-solving.
        core.submit(ServiceRequest::departure(7, 0.05));
        core.submit(ServiceRequest::arrival(20, 0.05));
        let report = core.close_batch(0.08).unwrap().unwrap();
        assert_eq!(report.tier, "city_scale");
        assert!(report.warm_started, "consecutive shard batch warm-starts");
        let warm_snap = core.snapshot();

        // Replay reproduces both sharded decisions bit-for-bit.
        let replayed = SchedulerCore::replay(cfg, core.ingestion_log()).unwrap();
        let cold = replayed.snapshot();
        assert_eq!(warm_snap.users, cold.users);
        assert_eq!(warm_snap.assignment, cold.assignment);
        assert_eq!(warm_snap.utility.to_bits(), cold.utility.to_bits());

        // Dropping below the threshold falls back to the pressure tier,
        // warm-starting from the sharded decision; the shard prior is
        // cleared, so a later re-promotion would cold-solve again.
        for id in 0..3 {
            core.submit(ServiceRequest::departure(id, 0.1));
        }
        let report = core.close_batch(0.15).unwrap().unwrap();
        assert_eq!(report.tier, "full");
        assert!(report.warm_started);
    }

    #[test]
    fn empty_population_publishes_an_empty_snapshot() {
        let mut core = SchedulerCore::new(quick_config(2)).unwrap();
        drive_arrivals(&mut core, 0..2, 0.0);
        core.flush(0.01).unwrap();
        core.submit(ServiceRequest::departure(0, 0.02));
        core.submit(ServiceRequest::departure(1, 0.02));
        let report = core.close_batch(0.03).unwrap().unwrap();
        assert_eq!(report.active_users, 0);
        assert_eq!(report.utility, 0.0);
        assert!(core.snapshot().users.is_empty());
    }

    #[test]
    fn golden_schema_field_names_match_serialization_order() {
        let report = BatchReport {
            batch: 0,
            time_s: 0.5,
            tier: "full".into(),
            requests: 3,
            arrivals: 2,
            departures: 1,
            rejected: 0,
            backlog: 4,
            batch_age_s: 0.05,
            active_users: 2,
            utility: 1.5,
            num_offloaded: 2,
            reassignments: 0,
            proposals: 100,
            warm_started: true,
            deadline_hit_rate: 1.0,
            snapshot_version: 1,
        };
        let json = report.to_jsonl();
        let mut keys = Vec::new();
        let mut rest = json.as_str();
        while let Some(start) = rest.find('"') {
            let tail = &rest[start + 1..];
            let end = tail.find('"').unwrap();
            let candidate = &tail[..end];
            let after = &tail[end + 1..];
            if after.starts_with(':') {
                keys.push(candidate.to_string());
            }
            rest = after;
        }
        assert_eq!(keys, BatchReport::FIELD_NAMES.to_vec());
        let back: BatchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
