//! # mec-service
//!
//! The production scheduler service: everything between a raw request
//! stream and a published scheduling decision.
//!
//! The solver stack below this crate is batch-shaped — give it a
//! [`mec_system::Scenario`], get an [`mec_system::Assignment`]. This
//! crate promotes it to a *service* under sustained load, the setting
//! the TSAJS paper actually targets (and the ROADMAP's north star):
//!
//! * [`batch`] — micro-batched ingestion: arrivals/departures accumulate
//!   under a size/age policy and each batch costs **one** warm-started
//!   re-solve instead of one refresh per request;
//! * [`snapshot`] — lock-free read snapshots: query traffic loads the
//!   live decision through a hand-rolled arc-swap
//!   ([`snapshot::SnapshotCell`]), so reads never block the solve loop;
//! * [`tier`] — graceful degradation: `Full` (warm tempered ladder) →
//!   `Shortened` (reduced warm anneal) → `GreedyAdmit` (admission only),
//!   driven by backlog depth and batch age, with hysteresis and a
//!   deterministic transition log;
//! * [`metrics`] — the operational surface: per-batch throughput,
//!   p50/p99 decision latency, SLA hit rate, tier occupancy, overload
//!   rejections; streamed as JSONL and dumped as Prometheus text;
//! * [`core`] — the deterministic, clock-free core tying it together,
//!   with an ingestion log whose cold replay reproduces the final
//!   assignment bit-for-bit;
//! * [`runtime`] — the threaded wrapper: bounded ingestion queue
//!   (backpressure à la `mec_controller`), one solve loop, cloneable
//!   lock-free readers;
//! * [`loadtest`] — the closed-loop harness: binary-search the maximum
//!   sustainable arrival rate at a p99 decision-latency SLO
//!   (`tsajs-sim loadtest`, `BENCH_service.json`).
//!
//! See DESIGN.md §6 for the architecture and docs/SERVICE.md for a
//! quickstart.
//!
//! ## Example
//!
//! ```
//! use mec_service::{RequestKind, SchedulerCore, ServiceConfig, ServiceRequest};
//!
//! # fn main() -> Result<(), mec_types::Error> {
//! let mut core = SchedulerCore::new(ServiceConfig::quick(7))?;
//! for user in 0..5 {
//!     core.submit(ServiceRequest::arrival(user, 0.0));
//! }
//! core.flush(0.05)?;
//! let snapshot = core.snapshot();
//! assert_eq!(snapshot.users.len(), 5);
//! println!("utility {:.3} at version {}", snapshot.utility, snapshot.version);
//! # Ok(())
//! # }
//! ```

// The snapshot module is the workspace's single audited exception to the
// no-unsafe rule (see its module docs for the reclamation proof); deny
// everywhere else.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod core;
pub mod loadtest;
pub mod metrics;
pub mod runtime;
pub mod snapshot;
pub mod tier;

pub use batch::{Batch, BatchPolicy, MicroBatcher, RequestKind, ServiceRequest};
pub use core::{BatchReport, LogEntry, SchedulerCore, ServiceConfig, ServiceSnapshot};
pub use loadtest::{run_loadtest, LoadtestConfig, LoadtestOutcome, LoadtestReport, ProbeOutcome};
pub use metrics::{LatencyHistogram, ServiceMetrics};
pub use runtime::{ServiceRuntime, SnapshotReader, DEFAULT_QUEUE_CAPACITY};
pub use snapshot::SnapshotCell;
pub use tier::{Tier, TierController, TierPolicy, TierTransition};
