//! Closed-loop load generation: find the maximum sustainable arrival
//! rate at a decision-latency SLO.
//!
//! A *probe* runs the full threaded service ([`ServiceRuntime`]) for a
//! fixed wall-clock window at one offered arrival rate λ: a seeded
//! Poisson arrival process with exponential sojourns (an M/M/∞ offered
//! load), a query thread hammering lock-free snapshot reads the whole
//! time, and the ingestion queue providing real backpressure. A probe is
//! **sustained** when the p99 decision latency (request submission →
//! snapshot publication) meets the SLO and nothing was rejected at the
//! queue.
//!
//! [`run_loadtest`] then binary-searches λ over `[rate_lo, rate_hi]`
//! (geometric midpoints — rates live on a log scale) and reports the
//! largest sustained rate. The verdict is machine-dependent by nature —
//! it measures *this* host's service capacity — but each probe's
//! scheduling decisions are still a deterministic function of its
//! recorded ingestion log.

use crate::batch::RequestKind;
use crate::core::{BatchReport, SchedulerCore, ServiceConfig};
use crate::metrics::ServiceMetrics;
use crate::runtime::ServiceRuntime;
use crate::tier::Tier;
use mec_types::{Error, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Loadtest knobs.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// The service under test.
    pub service: ServiceConfig,
    /// Users prefilled (and scheduled) before the clock starts.
    pub initial_users: usize,
    /// Decision-latency SLO checked at p99.
    pub slo_p99: Seconds,
    /// Lower bound of the rate search (Hz).
    pub rate_lo_hz: f64,
    /// Upper bound of the rate search (Hz).
    pub rate_hi_hz: f64,
    /// Wall-clock window per probe.
    pub probe_secs: f64,
    /// Binary-search refinement probes after the two endpoints.
    pub refine_steps: usize,
    /// Ingestion-queue bound (the backpressure surface).
    pub queue_capacity: usize,
    /// Mean user sojourn: each arrival departs after Exp(mean) seconds.
    pub mean_sojourn_s: f64,
    /// Seed for the arrival/sojourn processes.
    pub seed: u64,
}

impl LoadtestConfig {
    /// CI-scale preset: finishes in a few seconds on any host.
    pub fn quick(seed: u64) -> Self {
        Self {
            service: ServiceConfig::quick(seed),
            initial_users: 6,
            slo_p99: Seconds::new(0.25),
            rate_lo_hz: 20.0,
            rate_hi_hz: 2_000.0,
            probe_secs: 0.6,
            refine_steps: 3,
            queue_capacity: 256,
            mean_sojourn_s: 1.0,
            seed,
        }
    }

    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for degenerate rates, windows
    /// or sojourns (and whatever the service config rejects).
    pub fn validate(&self) -> Result<(), Error> {
        self.service.validate()?;
        if !(self.rate_lo_hz > 0.0 && self.rate_hi_hz >= self.rate_lo_hz) {
            return Err(Error::invalid("rate", "need 0 < rate_lo <= rate_hi"));
        }
        if !(self.probe_secs > 0.0 && self.probe_secs.is_finite()) {
            return Err(Error::invalid("probe_secs", "must be positive"));
        }
        if !(self.mean_sojourn_s > 0.0 && self.mean_sojourn_s.is_finite()) {
            return Err(Error::invalid("mean_sojourn_s", "must be positive"));
        }
        if !(self.slo_p99.as_secs() > 0.0 && self.slo_p99.as_secs().is_finite()) {
            return Err(Error::invalid("slo_p99", "must be positive"));
        }
        if self.queue_capacity == 0 {
            return Err(Error::invalid("queue_capacity", "must be positive"));
        }
        Ok(())
    }
}

/// One probe's measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ProbeOutcome {
    /// Offered arrival rate.
    pub rate_hz: f64,
    /// Requests offered (arrivals + departures attempted).
    pub offered: u64,
    /// Requests refused at the ingestion queue.
    pub rejected: u64,
    /// Requests decided by the service.
    pub decided: u64,
    /// Micro-batches applied.
    pub batches: u64,
    /// Median decision latency.
    pub p50_ms: f64,
    /// Tail decision latency checked against the SLO.
    pub p99_ms: f64,
    /// Mean decision latency.
    pub mean_ms: f64,
    /// Completion-time SLA hit rate over the probe.
    pub sla_hit_rate: f64,
    /// Fraction of batches served per tier
    /// (full/shortened/greedy/city-scale).
    pub tier_occupancy: [f64; 4],
    /// Tier changes during the probe.
    pub tier_transitions: u64,
    /// Lock-free snapshot reads completed by the query thread.
    pub snapshot_reads: u64,
    /// Whether the probe met the SLO with zero queue rejections.
    pub sustained: bool,
}

/// The machine-readable loadtest verdict (`BENCH_service.json`).
#[derive(Debug, Clone, Serialize)]
pub struct LoadtestReport {
    /// Seed of the offered-load processes.
    pub seed: u64,
    /// The p99 SLO in milliseconds.
    pub slo_p99_ms: f64,
    /// Search floor (Hz).
    pub rate_lo_hz: f64,
    /// Search ceiling (Hz).
    pub rate_hi_hz: f64,
    /// Wall-clock window per probe.
    pub probe_secs: f64,
    /// Worker cap in force (`null` = auto).
    pub threads: Option<usize>,
    /// Every probe, in execution order.
    pub probes: Vec<ProbeOutcome>,
    /// The largest sustained rate found (0 when even the floor failed).
    pub max_sustainable_hz: f64,
}

/// Everything a loadtest run produces.
pub struct LoadtestOutcome {
    /// The verdict.
    pub report: LoadtestReport,
    /// Metrics of the best sustained probe (or the last probe run).
    pub final_metrics: ServiceMetrics,
    /// Batch reports streamed by that probe, in order.
    pub final_reports: Vec<BatchReport>,
}

struct ProbeRun {
    outcome: ProbeOutcome,
    metrics: ServiceMetrics,
    reports: Vec<BatchReport>,
}

/// Ordered by *earliest* departure time (min-heap via `Reverse`); times
/// are non-negative so the IEEE bit pattern orders like the float.
type DepartureQueue = BinaryHeap<std::cmp::Reverse<(u64, u64)>>;

fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    // 1 - U ∈ (0, 1] keeps ln away from zero.
    -(1.0 - rng.gen::<f64>()).ln() * mean
}

fn run_probe(cfg: &LoadtestConfig, rate_hz: f64) -> Result<ProbeRun, Error> {
    let mut core = SchedulerCore::new(cfg.service.clone())?;
    // Prefill and schedule the standing population, then zero the
    // counters so the probe measures steady state only.
    for id in 0..cfg.initial_users as u64 {
        core.submit(crate::batch::ServiceRequest::arrival(id, 0.0));
    }
    core.flush(0.0)?;
    *core.metrics_mut() = ServiceMetrics::default();

    let (report_tx, report_rx) = mpsc::channel();
    let runtime = ServiceRuntime::spawn_streaming(core, cfg.queue_capacity, report_tx);

    // Query thread: hammer lock-free reads for the whole probe.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = runtime.reader();
    let query = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let _ = reader.snapshot();
                reads += 1;
            }
            reads
        })
    };

    // Closed-loop offered load: Poisson arrivals, exponential sojourns.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ rate_hz.to_bits());
    let mut departures: DepartureQueue = BinaryHeap::new();
    let mut next_id = cfg.initial_users as u64;
    let mut offered = 0u64;
    let started = Instant::now();
    let window = Duration::from_secs_f64(cfg.probe_secs);
    let mut next_arrival = exp_sample(&mut rng, 1.0 / rate_hz);
    while started.elapsed() < window {
        let now = started.elapsed().as_secs_f64();
        let next_departure = departures.peek().map(|r| f64::from_bits(r.0 .0));
        let due = next_departure
            .map(|d| d.min(next_arrival))
            .unwrap_or(next_arrival);
        if due > now {
            let wait = (due - now).min(cfg.probe_secs / 50.0);
            std::thread::sleep(Duration::from_secs_f64(wait.max(1e-5)));
            continue;
        }
        if next_departure.is_some_and(|d| d <= next_arrival) {
            let std::cmp::Reverse((_, user)) = departures.pop().expect("peeked");
            offered += 1;
            let _ = runtime.submit(RequestKind::Departure { user });
        } else {
            let user = next_id;
            next_id += 1;
            offered += 1;
            if runtime.submit(RequestKind::Arrival { user }).is_ok() {
                let leave = next_arrival + exp_sample(&mut rng, cfg.mean_sojourn_s);
                departures.push(std::cmp::Reverse((leave.to_bits(), user)));
            }
            next_arrival += exp_sample(&mut rng, 1.0 / rate_hz);
        }
    }

    let rejected = runtime.rejections();
    let core = runtime.shutdown()?;
    stop.store(true, Ordering::Relaxed);
    let snapshot_reads = query.join().expect("query thread never panics");
    let reports: Vec<BatchReport> = report_rx.try_iter().collect();
    let metrics = core.metrics().clone();

    let p99_s = metrics.decision_latency.quantile_s(0.99);
    let sustained = rejected == 0 && p99_s <= cfg.slo_p99.as_secs();
    let outcome = ProbeOutcome {
        rate_hz,
        offered,
        rejected,
        decided: metrics.requests,
        batches: metrics.batches,
        p50_ms: metrics.decision_latency.quantile_s(0.50) * 1e3,
        p99_ms: p99_s * 1e3,
        mean_ms: metrics.decision_latency.mean_s() * 1e3,
        sla_hit_rate: metrics.sla_hit_rate(),
        tier_occupancy: [
            metrics.tier_occupancy(Tier::Full),
            metrics.tier_occupancy(Tier::Shortened),
            metrics.tier_occupancy(Tier::GreedyAdmit),
            metrics.tier_occupancy(Tier::CityScale),
        ],
        tier_transitions: metrics.tier_transitions,
        snapshot_reads,
        sustained,
    };
    Ok(ProbeRun {
        outcome,
        metrics,
        reports,
    })
}

/// Runs the full search. `observer` sees every probe as it completes
/// (progress reporting).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for an invalid config and
/// propagates service failures out of any probe.
pub fn run_loadtest(
    cfg: &LoadtestConfig,
    mut observer: impl FnMut(&ProbeOutcome),
) -> Result<LoadtestOutcome, Error> {
    cfg.validate()?;
    let mut probes = Vec::new();
    let mut best: Option<ProbeRun> = None;
    let mut last: Option<ProbeRun> = None;
    let mut max_sustainable = 0.0f64;

    let mut run = |rate: f64,
                   probes: &mut Vec<ProbeOutcome>,
                   best: &mut Option<ProbeRun>,
                   last: &mut Option<ProbeRun>|
     -> Result<bool, Error> {
        let probe = run_probe(cfg, rate)?;
        observer(&probe.outcome);
        let sustained = probe.outcome.sustained;
        probes.push(probe.outcome.clone());
        if sustained {
            let replace = best
                .as_ref()
                .map(|b| rate > b.outcome.rate_hz)
                .unwrap_or(true);
            if replace {
                *best = Some(probe);
            } else {
                *last = Some(probe);
            }
        } else {
            *last = Some(probe);
        }
        Ok(sustained)
    };

    let mut lo = cfg.rate_lo_hz;
    let mut hi = cfg.rate_hi_hz;
    let floor_ok = run(lo, &mut probes, &mut best, &mut last)?;
    if floor_ok {
        max_sustainable = lo;
        if hi > lo {
            let ceiling_ok = run(hi, &mut probes, &mut best, &mut last)?;
            if ceiling_ok {
                max_sustainable = hi;
            } else {
                for _ in 0..cfg.refine_steps {
                    // Geometric midpoint: rates live on a log scale.
                    let mid = (lo * hi).sqrt();
                    if !(mid.is_finite() && mid > lo && mid < hi) {
                        break;
                    }
                    if run(mid, &mut probes, &mut best, &mut last)? {
                        lo = mid;
                        max_sustainable = mid;
                    } else {
                        hi = mid;
                    }
                }
            }
        }
    }

    let chosen = best.or(last).expect("at least one probe ran");
    Ok(LoadtestOutcome {
        report: LoadtestReport {
            seed: cfg.seed,
            slo_p99_ms: cfg.slo_p99.as_secs() * 1e3,
            rate_lo_hz: cfg.rate_lo_hz,
            rate_hi_hz: cfg.rate_hi_hz,
            probe_secs: cfg.probe_secs,
            threads: cfg.service.threads,
            probes,
            max_sustainable_hz: max_sustainable,
        },
        final_metrics: chosen.metrics,
        final_reports: chosen.reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_degenerate_knobs() {
        let mut cfg = LoadtestConfig::quick(1);
        cfg.rate_lo_hz = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = LoadtestConfig::quick(1);
        cfg.rate_hi_hz = cfg.rate_lo_hz / 2.0;
        assert!(cfg.validate().is_err());
        let mut cfg = LoadtestConfig::quick(1);
        cfg.probe_secs = -1.0;
        assert!(cfg.validate().is_err());
        assert!(LoadtestConfig::quick(1).validate().is_ok());
    }

    #[test]
    fn a_tiny_loadtest_produces_a_verdict() {
        // Minutes-proof micro run: two short probes at most.
        let mut cfg = LoadtestConfig::quick(7);
        cfg.probe_secs = 0.15;
        cfg.refine_steps = 1;
        cfg.rate_lo_hz = 10.0;
        cfg.rate_hi_hz = 40.0;
        let mut seen = 0;
        let outcome = run_loadtest(&cfg, |_| seen += 1).unwrap();
        assert!(seen >= 1);
        assert_eq!(outcome.report.probes.len(), seen);
        assert!(outcome.report.max_sustainable_hz >= 0.0);
        assert!(outcome.final_metrics.batches > 0 || outcome.final_metrics.requests == 0);
        let json = serde_json::to_string_pretty(&outcome.report).unwrap();
        for key in ["max_sustainable_hz", "probes", "slo_p99_ms", "rate_hi_hz"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
