//! Operational metrics: decision-latency percentiles, SLA hit rate, tier
//! occupancy, throughput, and overload rejections.
//!
//! Latencies go into a fixed log-scale histogram ([`LatencyHistogram`])
//! so percentile queries are deterministic given the samples and need no
//! per-sample storage. The whole surface renders two ways:
//!
//! * streaming JSONL — one [`crate::core::BatchReport`] per line, emitted
//!   by the service as batches complete;
//! * a Prometheus-style text dump ([`ServiceMetrics::render_prometheus`])
//!   via plain `fmt::Write` — no HTTP server, the CLI writes it to a file
//!   or stdout.

use crate::tier::Tier;

/// Histogram bucket layout: `BUCKETS_PER_DECADE` log-uniform buckets per
/// decade from 1 µs to 1000 s, plus an overflow bucket.
const DECADES: usize = 9;
const BUCKETS_PER_DECADE: usize = 8;
const NUM_BUCKETS: usize = DECADES * BUCKETS_PER_DECADE + 1;
const FLOOR_S: f64 = 1e-6;

/// A fixed-shape log-scale latency histogram (seconds).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum_s: f64,
    max_s: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum_s: 0.0,
            max_s: 0.0,
        }
    }
}

impl LatencyHistogram {
    /// Upper bound of bucket `i` in seconds.
    fn bucket_bound(i: usize) -> f64 {
        FLOOR_S * 10f64.powf((i + 1) as f64 / BUCKETS_PER_DECADE as f64)
    }

    /// Records one latency sample (negative/NaN samples clamp to zero).
    pub fn record(&mut self, seconds: f64) {
        let s = if seconds.is_finite() {
            seconds.max(0.0)
        } else {
            0.0
        };
        let idx = if s <= FLOOR_S {
            0
        } else {
            let raw = (s / FLOOR_S).log10() * BUCKETS_PER_DECADE as f64;
            (raw.floor() as usize).min(NUM_BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_s += s;
        self.max_s = self.max_s.max(s);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in seconds (zero when empty).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_s / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max_s(&self) -> f64 {
        self.max_s
    }

    /// Latency at quantile `q` in `[0, 1]` — the upper bound of the
    /// bucket where the cumulative count crosses `q·count` (zero when
    /// empty). Deterministic given the samples.
    pub fn quantile_s(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_bound(i).min(self.max_s.max(FLOOR_S));
            }
        }
        self.max_s
    }
}

/// Aggregate operational counters for one service run.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Micro-batches applied.
    pub batches: u64,
    /// Requests decided (arrivals + departures that went through a batch).
    pub requests: u64,
    /// Arrivals admitted into the population.
    pub arrivals: u64,
    /// Departures processed.
    pub departures: u64,
    /// Arrivals refused because the population was at `max_users`.
    pub admission_rejections: u64,
    /// Submissions refused at the ingestion queue (backpressure). Counted
    /// by the runtime and merged in at shutdown.
    pub overload_rejections: u64,
    /// Batches served per tier, indexed by [`Tier::index`].
    pub tier_batches: [u64; 4],
    /// Tier changes over the run.
    pub tier_transitions: u64,
    /// Snapshots published.
    pub snapshot_publishes: u64,
    /// Decision latency: request submission → snapshot publication.
    pub decision_latency: LatencyHistogram,
    /// Users meeting the completion-time SLA, summed over batch
    /// evaluations.
    pub sla_hits: u64,
    /// Users checked against the SLA, summed over batch evaluations.
    pub sla_total: u64,
    /// Neighborhood proposals spent across all re-solves.
    pub proposals: u64,
    /// Service-time span covered (first to last batch close).
    pub span_s: f64,
}

impl ServiceMetrics {
    /// Fraction of SLA checks that passed (1.0 when nothing was checked).
    pub fn sla_hit_rate(&self) -> f64 {
        if self.sla_total == 0 {
            1.0
        } else {
            self.sla_hits as f64 / self.sla_total as f64
        }
    }

    /// Decisions per second of covered service time (zero-span guarded).
    pub fn throughput_hz(&self) -> f64 {
        if self.span_s > 0.0 {
            self.requests as f64 / self.span_s
        } else {
            0.0
        }
    }

    /// Fraction of batches served at `tier`.
    pub fn tier_occupancy(&self, tier: Tier) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.tier_batches[tier.index()] as f64 / self.batches as f64
        }
    }

    /// Renders the Prometheus text exposition of every counter and gauge.
    ///
    /// # Errors
    ///
    /// Propagates formatter errors from `out`.
    pub fn render_prometheus(&self, out: &mut dyn std::fmt::Write) -> std::fmt::Result {
        let counter = |out: &mut dyn std::fmt::Write, name: &str, help: &str, v: f64| {
            writeln!(out, "# HELP {name} {help}")?;
            writeln!(out, "# TYPE {name} counter")?;
            writeln!(out, "{name} {v}")
        };
        counter(
            out,
            "tsajs_service_batches_total",
            "Micro-batches applied",
            self.batches as f64,
        )?;
        counter(
            out,
            "tsajs_service_requests_total",
            "Requests decided",
            self.requests as f64,
        )?;
        counter(
            out,
            "tsajs_service_arrivals_total",
            "Arrivals admitted",
            self.arrivals as f64,
        )?;
        counter(
            out,
            "tsajs_service_departures_total",
            "Departures processed",
            self.departures as f64,
        )?;
        counter(
            out,
            "tsajs_service_admission_rejections_total",
            "Arrivals refused at the population cap",
            self.admission_rejections as f64,
        )?;
        counter(
            out,
            "tsajs_service_overload_rejections_total",
            "Submissions refused at the ingestion queue",
            self.overload_rejections as f64,
        )?;
        counter(
            out,
            "tsajs_service_tier_transitions_total",
            "Degradation-tier changes",
            self.tier_transitions as f64,
        )?;
        counter(
            out,
            "tsajs_service_snapshot_publishes_total",
            "Snapshots published",
            self.snapshot_publishes as f64,
        )?;
        counter(
            out,
            "tsajs_service_solver_proposals_total",
            "Neighborhood proposals spent re-solving",
            self.proposals as f64,
        )?;

        writeln!(
            out,
            "# HELP tsajs_service_tier_batches_total Batches served per tier"
        )?;
        writeln!(out, "# TYPE tsajs_service_tier_batches_total counter")?;
        for tier in [
            Tier::Full,
            Tier::Shortened,
            Tier::GreedyAdmit,
            Tier::CityScale,
        ] {
            writeln!(
                out,
                "tsajs_service_tier_batches_total{{tier=\"{}\"}} {}",
                tier.as_str(),
                self.tier_batches[tier.index()]
            )?;
        }

        writeln!(
            out,
            "# HELP tsajs_service_decision_latency_seconds Request submission to snapshot publication"
        )?;
        writeln!(out, "# TYPE tsajs_service_decision_latency_seconds summary")?;
        for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
            writeln!(
                out,
                "tsajs_service_decision_latency_seconds{{quantile=\"{label}\"}} {}",
                self.decision_latency.quantile_s(q)
            )?;
        }
        writeln!(
            out,
            "tsajs_service_decision_latency_seconds_sum {}",
            self.decision_latency.mean_s() * self.decision_latency.count() as f64
        )?;
        writeln!(
            out,
            "tsajs_service_decision_latency_seconds_count {}",
            self.decision_latency.count()
        )?;

        writeln!(
            out,
            "# HELP tsajs_service_sla_hit_rate Fraction of SLA checks met"
        )?;
        writeln!(out, "# TYPE tsajs_service_sla_hit_rate gauge")?;
        writeln!(out, "tsajs_service_sla_hit_rate {}", self.sla_hit_rate())?;
        writeln!(
            out,
            "# HELP tsajs_service_throughput_hz Decisions per second of service time"
        )?;
        writeln!(out, "# TYPE tsajs_service_throughput_hz gauge")?;
        writeln!(out, "tsajs_service_throughput_hz {}", self.throughput_hz())?;
        Ok(())
    }

    /// The Prometheus text dump as a `String`.
    pub fn prometheus_text(&self) -> String {
        let mut s = String::new();
        self.render_prometheus(&mut s)
            .expect("writing to a String cannot fail");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(0.001);
        }
        h.record(1.0);
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_s(0.50);
        assert!((0.001..0.002).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_s(0.99);
        assert!(p99 < 0.01, "99 of 100 samples are 1 ms, p99 = {p99}");
        let p100 = h.quantile_s(1.0);
        assert!(p100 >= 1.0, "max sample must dominate p100, got {p100}");
        assert!((h.mean_s() - (99.0 * 0.001 + 1.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_degenerate_samples() {
        let mut h = LatencyHistogram::default();
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(1e9);
        assert_eq!(h.count(), 3);
        assert!(h.quantile_s(0.5).is_finite());
        assert_eq!(LatencyHistogram::default().quantile_s(0.99), 0.0);
    }

    #[test]
    fn prometheus_text_contains_every_family() {
        let mut m = ServiceMetrics {
            batches: 10,
            requests: 55,
            tier_batches: [7, 2, 1, 0],
            span_s: 5.0,
            sla_hits: 50,
            sla_total: 55,
            ..Default::default()
        };
        m.decision_latency.record(0.002);
        let text = m.prometheus_text();
        for family in [
            "tsajs_service_batches_total 10",
            "tsajs_service_requests_total 55",
            "tsajs_service_tier_batches_total{tier=\"full\"} 7",
            "tsajs_service_tier_batches_total{tier=\"greedy_admit\"} 1",
            "tsajs_service_tier_batches_total{tier=\"city_scale\"} 0",
            "tsajs_service_decision_latency_seconds{quantile=\"0.99\"}",
            "tsajs_service_sla_hit_rate 0.9090909090909091",
            "tsajs_service_throughput_hz 11",
        ] {
            assert!(text.contains(family), "missing `{family}` in:\n{text}");
        }
        assert!((m.tier_occupancy(Tier::Full) - 0.7).abs() < 1e-12);
    }
}
