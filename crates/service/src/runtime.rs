//! The threaded service wrapper: bounded ingestion, one solve loop,
//! lock-free query reads.
//!
//! [`ServiceRuntime::spawn`] moves a [`SchedulerCore`] onto a worker
//! thread behind a *bounded* request queue (the same backpressure
//! discipline as `mec_controller::SchedulerService` — a full queue fails
//! fast with [`ServiceError::Overloaded`] instead of buffering without
//! limit). The worker drains the queue into the core's micro-batcher and
//! cuts batches by the batch policy; query traffic reads the live
//! decision through the core's [`SnapshotCell`] without ever touching a
//! lock the worker holds.
//!
//! Wall-clock enters exactly once: requests are stamped with seconds
//! since service start. Decisions remain a deterministic function of the
//! stamped stream (the ingestion log replays bit-for-bit); only *which*
//! stream the wall clock produced is machine-dependent.

use crate::batch::{RequestKind, ServiceRequest};
use crate::core::{BatchReport, SchedulerCore, ServiceSnapshot};
use crate::snapshot::SnapshotCell;
use mec_controller::ServiceError;
use mec_types::Error;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default bound of the ingestion queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

/// A running scheduler service.
///
/// Submissions and snapshot reads are safe from any thread holding the
/// handle (clone [`reader`](Self::reader) handles for query threads);
/// [`shutdown`](Self::shutdown) drains, flushes and returns the core
/// with its metrics and logs.
pub struct ServiceRuntime {
    sender: mpsc::SyncSender<ServiceRequest>,
    cell: Arc<SnapshotCell<ServiceSnapshot>>,
    rejections: Arc<AtomicU64>,
    started: Instant,
    worker: JoinHandle<Result<SchedulerCore, Error>>,
}

/// A cheap cloneable read-only handle: lock-free snapshot loads only.
#[derive(Clone)]
pub struct SnapshotReader {
    cell: Arc<SnapshotCell<ServiceSnapshot>>,
}

impl SnapshotReader {
    /// The latest published decision. Never blocks.
    pub fn snapshot(&self) -> Arc<ServiceSnapshot> {
        self.cell.load()
    }
}

impl ServiceRuntime {
    /// Spawns the solve loop with the default queue bound.
    pub fn spawn(core: SchedulerCore) -> Self {
        Self::spawn_with_capacity(core, DEFAULT_QUEUE_CAPACITY)
    }

    /// Spawns the solve loop behind a queue of `capacity` requests.
    /// Streams every [`BatchReport`] to `reports` if provided (an
    /// unbounded channel, so a slow consumer never stalls the solve
    /// loop — it can only grow the channel).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn spawn_with_capacity(core: SchedulerCore, capacity: usize) -> Self {
        Self::spawn_inner(core, capacity, None)
    }

    /// As [`spawn_with_capacity`](Self::spawn_with_capacity), streaming
    /// batch reports into `reports`.
    pub fn spawn_streaming(
        core: SchedulerCore,
        capacity: usize,
        reports: mpsc::Sender<BatchReport>,
    ) -> Self {
        Self::spawn_inner(core, capacity, Some(reports))
    }

    fn spawn_inner(
        mut core: SchedulerCore,
        capacity: usize,
        reports: Option<mpsc::Sender<BatchReport>>,
    ) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        let (sender, receiver) = mpsc::sync_channel::<ServiceRequest>(capacity);
        let cell = core.snapshot_cell();
        let rejections = Arc::new(AtomicU64::new(0));
        let started = Instant::now();
        // Poll interval: half the batch age, so age-triggered cuts land
        // within tolerance even when no request wakes the loop.
        let tick = Duration::from_secs_f64(
            (core.config().batch.max_age.as_secs() / 2.0).clamp(0.0005, 0.25),
        );
        let worker = std::thread::spawn(move || -> Result<SchedulerCore, Error> {
            loop {
                match receiver.recv_timeout(tick) {
                    Ok(request) => {
                        core.submit(request);
                        // Opportunistically drain whatever else arrived:
                        // everything pending lands in the batcher so the
                        // backlog signal sees the real queue depth.
                        while let Ok(more) = receiver.try_recv() {
                            core.submit(more);
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        let now = started.elapsed().as_secs_f64();
                        for report in core.flush(now)? {
                            if let Some(tx) = &reports {
                                let _ = tx.send(report);
                            }
                        }
                        return Ok(core);
                    }
                }
                let now = started.elapsed().as_secs_f64();
                while core.ready(now) {
                    if let Some(report) = core.close_batch(now)? {
                        if let Some(tx) = &reports {
                            let _ = tx.send(report);
                        }
                    }
                }
            }
        });
        Self {
            sender,
            cell,
            rejections,
            started,
            worker,
        }
    }

    /// Seconds since the service started (the runtime's time domain).
    pub fn now_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Submits a request stamped with the current service time.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] when the bounded queue is full
    /// (counted and merged into the core's metrics at shutdown), or
    /// [`ServiceError::Stopped`] when the worker is gone.
    pub fn submit(&self, kind: RequestKind) -> Result<(), ServiceError> {
        let request = ServiceRequest {
            kind,
            submitted_s: self.now_s(),
        };
        self.sender.try_send(request).map_err(|e| match e {
            mpsc::TrySendError::Full(_) => {
                self.rejections.fetch_add(1, Ordering::Relaxed);
                ServiceError::Overloaded
            }
            mpsc::TrySendError::Disconnected(_) => ServiceError::Stopped,
        })
    }

    /// The latest published decision. Never blocks, never touches the
    /// solve loop.
    pub fn snapshot(&self) -> Arc<ServiceSnapshot> {
        self.cell.load()
    }

    /// A cloneable read-only handle for query threads.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader {
            cell: Arc::clone(&self.cell),
        }
    }

    /// Overload rejections counted so far.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }

    /// Stops ingestion, drains every pending request and returns the
    /// core (with queue-rejection counts merged into its metrics).
    ///
    /// # Errors
    ///
    /// Propagates a solver error from the worker; a panicked worker
    /// surfaces as [`Error::UnsupportedScenario`].
    pub fn shutdown(self) -> Result<SchedulerCore, Error> {
        drop(self.sender);
        let mut core = self
            .worker
            .join()
            .map_err(|_| Error::UnsupportedScenario("service worker panicked".into()))??;
        core.metrics_mut().overload_rejections += self.rejections.load(Ordering::Relaxed);
        Ok(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ServiceConfig;

    fn quick_core(seed: u64) -> SchedulerCore {
        SchedulerCore::new(ServiceConfig::quick(seed)).unwrap()
    }

    #[test]
    fn requests_flow_through_to_snapshots() {
        let runtime = ServiceRuntime::spawn(quick_core(1));
        for id in 0..5 {
            runtime.submit(RequestKind::Arrival { user: id }).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        while runtime.snapshot().users.len() < 5 {
            assert!(Instant::now() < deadline, "service never decided");
            std::thread::sleep(Duration::from_millis(2));
        }
        let core = runtime.shutdown().unwrap();
        assert_eq!(core.snapshot().users.len(), 5);
        assert_eq!(core.metrics().arrivals, 5);
        assert_eq!(core.metrics().overload_rejections, 0);
    }

    #[test]
    fn shutdown_drains_pending_requests() {
        let runtime = ServiceRuntime::spawn_with_capacity(quick_core(2), 64);
        for id in 0..12 {
            runtime.submit(RequestKind::Arrival { user: id }).unwrap();
        }
        let core = runtime.shutdown().unwrap();
        assert_eq!(core.snapshot().users.len(), 12, "flush served everything");
    }

    #[test]
    fn readers_run_while_the_service_solves() {
        let runtime = ServiceRuntime::spawn(quick_core(3));
        let reader = runtime.reader();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let observer = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = reader.snapshot();
                    assert!(snap.version >= last);
                    last = snap.version;
                    reads += 1;
                }
                reads
            })
        };
        for id in 0..8 {
            runtime.submit(RequestKind::Arrival { user: id }).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let core = runtime.shutdown().unwrap();
        stop.store(true, Ordering::Relaxed);
        let reads = observer.join().unwrap();
        assert!(reads > 0, "reader must make progress during solves");
        assert!(core.metrics().batches > 0);
    }

    #[test]
    fn streamed_reports_match_core_metrics() {
        let (tx, rx) = mpsc::channel();
        let runtime = ServiceRuntime::spawn_streaming(quick_core(4), 64, tx);
        for id in 0..6 {
            runtime.submit(RequestKind::Arrival { user: id }).unwrap();
        }
        let core = runtime.shutdown().unwrap();
        let streamed: Vec<BatchReport> = rx.try_iter().collect();
        assert_eq!(streamed.len() as u64, core.metrics().batches);
        assert_eq!(
            streamed.iter().map(|r| r.requests).sum::<usize>() as u64,
            core.metrics().requests
        );
    }
}
