//! Epoch-published immutable snapshots with lock-free reads.
//!
//! [`SnapshotCell`] is a hand-rolled `arc-swap`: the solve loop publishes
//! a fresh `Arc<T>` after every micro-batch, and query traffic loads the
//! current one without ever taking a lock. Readers therefore never block
//! the solve loop and the solve loop never blocks readers — the property
//! the service's read path is built on (see DESIGN.md §6).
//!
//! # Reclamation protocol
//!
//! The cell owns one strong count of the published snapshot through a raw
//! pointer in an `AtomicPtr`. The subtle part of any arc-swap is the
//! load/increment race: a reader that has loaded the raw pointer but not
//! yet incremented the strong count must not see the writer free the
//! allocation under it. This implementation closes the window with a
//! quiescent-state scheme:
//!
//! * A reader **first** increments `readers`, **then** loads the pointer,
//!   increments the strong count, and finally decrements `readers`. All
//!   operations are `SeqCst`.
//! * A writer swaps the pointer and pushes the previous value onto a
//!   writer-side graveyard (a `Mutex` touched only by writers). It may
//!   reclaim graveyard entries only at a moment when it observes
//!   `readers == 0` *after* the swap.
//!
//! Why this is sound: order the `SeqCst` operations in their single total
//! order. If the writer reads `readers == 0` after swapping, then every
//! reader increment either (a) precedes that read — in which case the
//! matching decrement does too, meaning the reader has already secured
//! its own strong count — or (b) follows it, in which case the reader's
//! subsequent pointer load also follows the swap in the total order and
//! must observe the *new* pointer. Either way no reader can still reach
//! the retired value, so dropping the cell's count is safe. While readers
//! are continuously present the writer simply defers; entries accumulate
//! at most one per publish and are drained at the next quiescent
//! observation (or when the cell drops, by which time `&mut self`
//! guarantees no readers exist).
//!
//! This is the one module in the workspace that uses `unsafe` (the rest
//! of the repo is `#![forbid(unsafe_code)]`); the four unsafe operations
//! are confined to the raw-pointer ↔ `Arc` boundary and each carries its
//! own safety argument. The unit tests are kept small enough to run under
//! Miri (see the `miri-smoke` CI job).

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A lock-free publish/subscribe cell holding the latest `Arc<T>`.
///
/// `load` is wait-free apart from the bounded rejection-free atomic ops;
/// `store` is lock-free with respect to readers (it takes a Mutex that
/// only writers touch). Clone the surrounding `Arc<SnapshotCell<T>>` to
/// share one cell between the solve loop and any number of query threads.
pub struct SnapshotCell<T> {
    /// Raw pointer produced by `Arc::into_raw`; the cell owns one strong
    /// count of whatever this points at. Never null.
    current: AtomicPtr<T>,
    /// Number of readers inside the load critical window.
    readers: AtomicUsize,
    /// Retired pointers awaiting a quiescent moment. Writer-only.
    graveyard: Mutex<Vec<*const T>>,
}

// SAFETY: the raw pointers in `current` and `graveyard` originate from
// `Arc<T>` and are only ever converted back to `Arc<T>`; sharing the cell
// across threads is exactly as safe as sharing `Arc<T>` itself, which
// requires `T: Send + Sync`.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> SnapshotCell<T> {
    /// Creates a cell publishing `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        Self {
            current: AtomicPtr::new(Arc::into_raw(initial).cast_mut()),
            readers: AtomicUsize::new(0),
            graveyard: Mutex::new(Vec::new()),
        }
    }

    /// Returns the currently-published snapshot. Never blocks: no lock is
    /// taken on this path, so a reader can never delay the solve loop
    /// (nor the other way round).
    pub fn load(&self) -> Arc<T> {
        // Enter the read window *before* looking at the pointer — the
        // writer only reclaims when it sees zero in-window readers after
        // a swap, so whatever pointer we load below stays alive at least
        // until our matching `fetch_sub`.
        self.readers.fetch_add(1, Ordering::SeqCst);
        let ptr = self.current.load(Ordering::SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and the cell still owns
        // a strong count of it: the reclamation protocol above guarantees
        // the writer has not dropped that count while `readers > 0`
        // covers our load. Incrementing mints the count that the
        // `from_raw` below takes ownership of.
        let snapshot = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        self.readers.fetch_sub(1, Ordering::SeqCst);
        snapshot
    }

    /// Publishes a new snapshot, retiring the previous one.
    ///
    /// Writer-side only: the solve loop calls this once per micro-batch.
    /// Multiple writers are safe (the graveyard Mutex serializes
    /// retirement) but the service has exactly one.
    pub fn store(&self, next: Arc<T>) {
        let next = Arc::into_raw(next).cast_mut();
        let prev = self.current.swap(next, Ordering::SeqCst);
        let mut graveyard = self.graveyard.lock().expect("writer-only mutex");
        graveyard.push(prev.cast_const());
        // Quiescent check *after* the swap: see the module docs for why
        // `readers == 0` here proves no reader can still produce any
        // retired pointer.
        if self.readers.load(Ordering::SeqCst) == 0 {
            for retired in graveyard.drain(..) {
                // SAFETY: `retired` came from `Arc::into_raw` and the
                // cell's strong count for it is still outstanding; the
                // quiescent check proves no reader holds it raw.
                unsafe { drop(Arc::from_raw(retired)) };
            }
        }
    }

    /// Number of retired snapshots not yet reclaimed (readers were active
    /// at every publish since the oldest). Bounded by the publish count
    /// between two quiescent observations; exposed for tests/metrics.
    pub fn retired(&self) -> usize {
        self.graveyard.lock().expect("writer-only mutex").len()
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        // `&mut self` proves no concurrent readers or writers exist, so
        // every outstanding count the cell owns can be released.
        let ptr = self.current.load(Ordering::SeqCst);
        // SAFETY: the cell owns one strong count of `current` and of each
        // graveyard entry; with exclusive access nothing else can observe
        // the raw pointers again.
        unsafe { drop(Arc::from_raw(ptr.cast_const())) };
        for retired in self
            .graveyard
            .get_mut()
            .expect("writer-only mutex")
            .drain(..)
        {
            unsafe { drop(Arc::from_raw(retired)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;

    #[test]
    fn load_returns_latest_store() {
        let cell = SnapshotCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        cell.store(Arc::new(3));
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn snapshots_outlive_later_publishes() {
        let cell = SnapshotCell::new(Arc::new(vec![1, 2, 3]));
        let old = cell.load();
        cell.store(Arc::new(vec![4]));
        // The retired snapshot stays valid as long as someone holds it.
        assert_eq!(*old, vec![1, 2, 3]);
        assert_eq!(*cell.load(), vec![4]);
    }

    #[test]
    fn reads_take_no_lock() {
        // Hold the writer-side graveyard mutex hostage and prove a read
        // still completes: the read path can therefore never contend with
        // the solve loop on any lock.
        let cell = Arc::new(SnapshotCell::new(Arc::new(7u32)));
        let _hostage = cell.graveyard.lock().unwrap();
        let (tx, rx) = mpsc::channel();
        let reader = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || tx.send(*cell.load()).unwrap())
        };
        let got = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("load must not block on the writer mutex");
        assert_eq!(got, 7);
        reader.join().unwrap();
    }

    #[test]
    fn concurrent_readers_see_monotonic_versions() {
        // Small enough to run under Miri: 2 readers × 50 loads against
        // 50 publishes.
        let cell = Arc::new(SnapshotCell::new(Arc::new(0usize)));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let mut last = 0usize;
                    for _ in 0..50 {
                        let seen = *cell.load();
                        assert!(seen >= last, "version went backwards: {seen} < {last}");
                        last = seen;
                    }
                })
            })
            .collect();
        for version in 1..=50 {
            cell.store(Arc::new(version));
        }
        for handle in readers {
            handle.join().unwrap();
        }
        assert_eq!(*cell.load(), 50);
    }

    #[test]
    fn quiescent_reclamation_eventually_drains_the_graveyard() {
        let cell = SnapshotCell::new(Arc::new(0u8));
        for i in 1..=16 {
            cell.store(Arc::new(i));
        }
        // Single-threaded: every publish observes zero readers, so the
        // graveyard never accumulates.
        assert_eq!(cell.retired(), 0);
    }
}
