//! Graceful degradation tiers.
//!
//! Under sustained overload a scheduler that insists on full-quality
//! re-solves only digs its queue deeper. The service instead degrades
//! through three tiers, trading decision quality for decision rate:
//!
//! * [`Tier::Full`] — warm-started tempered ladder (best quality),
//! * [`Tier::Shortened`] — reduced-budget warm anneal,
//! * [`Tier::GreedyAdmit`] — admission only: survivors keep their slots,
//!   arrivals get the nearest free subchannel, no re-solve at all.
//!
//! A fourth tier, [`Tier::CityScale`], sits *outside* the pressure
//! ladder: the scheduler core substitutes it for [`Tier::Full`] when the
//! live population crosses the configured city-scale threshold, routing
//! the batch through the sharded engine instead of the monolithic
//! ladder. The [`TierController`] never selects or holds it — it is a
//! population-size decision, not an overload decision.
//!
//! The [`TierController`] picks a tier per batch from two pressure
//! signals — backlog depth (requests left waiting after the batch was
//! cut) and batch age relative to the configured `max_age` — and applies
//! **hysteresis**: degrading is immediate, recovering requires
//! `upgrade_hold` consecutive calm batches and proceeds one tier at a
//! time. That asymmetry prevents tier flapping at the overload boundary.
//! Every change is recorded in a deterministic [`TierTransition`] log.

use serde::{Deserialize, Serialize};

/// Service quality tier. The first three variants form the pressure
/// ladder, ordered from best to cheapest (the `Ord` derive encodes the
/// degradation order the controller compares against); [`Tier::CityScale`]
/// is outside that ladder and never enters the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Warm-started parallel-tempering ladder.
    Full,
    /// Reduced-budget warm-started single chain.
    Shortened,
    /// Admission only — no re-solve.
    GreedyAdmit,
    /// Sharded full-quality re-solve for city-scale populations.
    /// Assigned by the scheduler core when the population reaches the
    /// city-scale threshold — never by the pressure controller.
    CityScale,
}

impl Tier {
    /// Stable lowercase name (used in JSONL records and metrics labels).
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Full => "full",
            Tier::Shortened => "shortened",
            Tier::GreedyAdmit => "greedy_admit",
            Tier::CityScale => "city_scale",
        }
    }

    /// Index into per-tier arrays (0 = Full).
    pub fn index(self) -> usize {
        match self {
            Tier::Full => 0,
            Tier::Shortened => 1,
            Tier::GreedyAdmit => 2,
            Tier::CityScale => 3,
        }
    }

    /// One step back toward full quality.
    fn upgraded(self) -> Tier {
        match self {
            Tier::GreedyAdmit => Tier::Shortened,
            _ => Tier::Full,
        }
    }
}

/// Thresholds driving tier selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierPolicy {
    /// Backlog depth at which the service drops to [`Tier::Shortened`].
    pub shorten_depth: usize,
    /// Backlog depth at which the service drops to [`Tier::GreedyAdmit`].
    pub greedy_depth: usize,
    /// Batch age (as a multiple of the batch policy's `max_age`) at which
    /// the service drops to [`Tier::Shortened`].
    pub shorten_age_ratio: f64,
    /// Batch age ratio at which the service drops to [`Tier::GreedyAdmit`].
    pub greedy_age_ratio: f64,
    /// Extra headroom required before an upgrade is considered: pressure
    /// must clear the lower tier's threshold by this margin.
    pub upgrade_margin: usize,
    /// Consecutive calm batches required before stepping up one tier.
    pub upgrade_hold: u32,
}

impl TierPolicy {
    /// Defaults tuned for the default batch policy: shorten at a backlog
    /// of one extra batch, go greedy at three, recover after four calm
    /// batches with a two-request margin.
    pub fn default_production() -> Self {
        Self {
            shorten_depth: 16,
            greedy_depth: 48,
            shorten_age_ratio: 4.0,
            greedy_age_ratio: 16.0,
            upgrade_margin: 2,
            upgrade_hold: 4,
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`mec_types::Error::InvalidParameter`] if the greedy
    /// thresholds do not dominate the shorten thresholds, or margins are
    /// degenerate.
    pub fn validate(&self) -> Result<(), mec_types::Error> {
        if self.shorten_depth == 0 || self.greedy_depth <= self.shorten_depth {
            return Err(mec_types::Error::invalid(
                "tiers.greedy_depth",
                "thresholds must satisfy 0 < shorten_depth < greedy_depth",
            ));
        }
        if !self.shorten_age_ratio.is_finite()
            || !self.greedy_age_ratio.is_finite()
            || self.shorten_age_ratio <= 1.0
            || self.greedy_age_ratio <= self.shorten_age_ratio
        {
            return Err(mec_types::Error::invalid(
                "tiers.age_ratio",
                "must satisfy 1 < shorten_age_ratio < greedy_age_ratio",
            ));
        }
        if self.upgrade_margin >= self.shorten_depth {
            return Err(mec_types::Error::invalid(
                "tiers.upgrade_margin",
                "must be smaller than shorten_depth",
            ));
        }
        if self.upgrade_hold == 0 {
            return Err(mec_types::Error::invalid(
                "tiers.upgrade_hold",
                "must be at least 1",
            ));
        }
        Ok(())
    }

    /// The tier the raw pressure signals call for, ignoring hysteresis.
    fn target(&self, backlog: usize, age_ratio: f64) -> Tier {
        if backlog >= self.greedy_depth || age_ratio >= self.greedy_age_ratio {
            Tier::GreedyAdmit
        } else if backlog >= self.shorten_depth || age_ratio >= self.shorten_age_ratio {
            Tier::Shortened
        } else {
            Tier::Full
        }
    }

    /// Whether pressure is calm enough to consider leaving `current`:
    /// backlog clears the tier's own threshold by `upgrade_margin` and the
    /// age signal clears its threshold too.
    fn calm_below(&self, current: Tier, backlog: usize, age_ratio: f64) -> bool {
        let (depth, ratio) = match current {
            Tier::GreedyAdmit => (self.greedy_depth, self.greedy_age_ratio),
            Tier::Shortened => (self.shorten_depth, self.shorten_age_ratio),
            // CityScale never enters the controller; it is already a
            // full-quality tier, so there is nothing to upgrade toward.
            Tier::Full | Tier::CityScale => return false,
        };
        backlog + self.upgrade_margin < depth && age_ratio < ratio
    }
}

/// One recorded tier change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierTransition {
    /// Batch index at which the change took effect.
    pub batch: usize,
    /// Service time of the batch.
    pub time_s: f64,
    /// Tier before.
    pub from: String,
    /// Tier after.
    pub to: String,
    /// Backlog depth that drove the decision.
    pub backlog: usize,
    /// Batch age ratio that drove the decision.
    pub age_ratio: f64,
}

/// Per-batch tier selection with hysteresis and a transition log.
#[derive(Debug, Clone)]
pub struct TierController {
    policy: TierPolicy,
    current: Tier,
    calm_streak: u32,
    log: Vec<TierTransition>,
}

impl TierController {
    /// Starts at [`Tier::Full`].
    pub fn new(policy: TierPolicy) -> Self {
        Self {
            policy,
            current: Tier::Full,
            calm_streak: 0,
            log: Vec::new(),
        }
    }

    /// The tier currently in force.
    pub fn current(&self) -> Tier {
        self.current
    }

    /// The transition log so far.
    pub fn log(&self) -> &[TierTransition] {
        &self.log
    }

    /// Picks the tier for the batch at `batch`/`time_s` given the
    /// pressure signals, updating hysteresis state and the log.
    ///
    /// Degrading (toward [`Tier::GreedyAdmit`]) is immediate; upgrading
    /// requires `upgrade_hold` consecutive calm batches and moves one
    /// tier per decision.
    pub fn decide(&mut self, batch: usize, time_s: f64, backlog: usize, age_ratio: f64) -> Tier {
        let target = self.policy.target(backlog, age_ratio);
        let next = if target > self.current {
            // Overload: degrade straight to what the pressure demands.
            self.calm_streak = 0;
            target
        } else if self.policy.calm_below(self.current, backlog, age_ratio) {
            self.calm_streak += 1;
            if self.calm_streak >= self.policy.upgrade_hold {
                self.calm_streak = 0;
                self.current.upgraded()
            } else {
                self.current
            }
        } else {
            // Inside the hysteresis band: hold the tier, reset the streak.
            self.calm_streak = 0;
            self.current
        };
        if next != self.current {
            self.log.push(TierTransition {
                batch,
                time_s,
                from: self.current.as_str().to_string(),
                to: next.as_str().to_string(),
                backlog,
                age_ratio,
            });
            self.current = next;
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> TierPolicy {
        TierPolicy {
            shorten_depth: 8,
            greedy_depth: 24,
            shorten_age_ratio: 4.0,
            greedy_age_ratio: 16.0,
            upgrade_margin: 2,
            upgrade_hold: 3,
        }
    }

    #[test]
    fn degradation_is_immediate_and_can_skip_a_tier() {
        let mut c = TierController::new(policy());
        assert_eq!(c.decide(0, 0.0, 0, 1.0), Tier::Full);
        assert_eq!(
            c.decide(1, 1.0, 30, 1.0),
            Tier::GreedyAdmit,
            "skips Shortened"
        );
        assert_eq!(c.log().len(), 1);
        assert_eq!(c.log()[0].from, "full");
        assert_eq!(c.log()[0].to, "greedy_admit");
    }

    #[test]
    fn age_pressure_degrades_too() {
        let mut c = TierController::new(policy());
        assert_eq!(c.decide(0, 0.0, 0, 5.0), Tier::Shortened);
        assert_eq!(c.decide(1, 1.0, 0, 20.0), Tier::GreedyAdmit);
    }

    #[test]
    fn upgrades_need_a_calm_streak_and_move_one_tier_at_a_time() {
        let mut c = TierController::new(policy());
        c.decide(0, 0.0, 30, 1.0);
        assert_eq!(c.current(), Tier::GreedyAdmit);
        // Calm batches: backlog + margin < greedy_depth.
        assert_eq!(c.decide(1, 1.0, 0, 1.0), Tier::GreedyAdmit);
        assert_eq!(c.decide(2, 2.0, 0, 1.0), Tier::GreedyAdmit);
        assert_eq!(c.decide(3, 3.0, 0, 1.0), Tier::Shortened, "one step only");
        assert_eq!(c.decide(4, 4.0, 0, 1.0), Tier::Shortened);
        assert_eq!(c.decide(5, 5.0, 0, 1.0), Tier::Shortened);
        assert_eq!(c.decide(6, 6.0, 0, 1.0), Tier::Full);
        assert_eq!(c.log().len(), 3);
    }

    #[test]
    fn hysteresis_band_holds_the_tier_and_resets_the_streak() {
        let mut c = TierController::new(policy());
        c.decide(0, 0.0, 10, 1.0);
        assert_eq!(c.current(), Tier::Shortened);
        // backlog 7: below shorten_depth but 7 + margin(2) >= 8 → hold.
        for i in 1..10 {
            assert_eq!(c.decide(i, i as f64, 7, 1.0), Tier::Shortened);
        }
        // Two calm batches, then a pressure blip resets the streak.
        c.decide(10, 10.0, 0, 1.0);
        c.decide(11, 11.0, 0, 1.0);
        c.decide(12, 12.0, 7, 1.0);
        assert_eq!(c.current(), Tier::Shortened);
        c.decide(13, 13.0, 0, 1.0);
        c.decide(14, 14.0, 0, 1.0);
        assert_eq!(c.decide(15, 15.0, 0, 1.0), Tier::Full, "streak rebuilt");
    }

    #[test]
    fn policy_validation_rejects_degenerate_thresholds() {
        let mut p = policy();
        p.greedy_depth = p.shorten_depth;
        assert!(p.validate().is_err());
        let mut p = policy();
        p.shorten_age_ratio = 0.5;
        assert!(p.validate().is_err());
        let mut p = policy();
        p.upgrade_margin = p.shorten_depth;
        assert!(p.validate().is_err());
        let mut p = policy();
        p.upgrade_hold = 0;
        assert!(p.validate().is_err());
        assert!(policy().validate().is_ok());
        assert!(TierPolicy::default_production().validate().is_ok());
    }
}
