//! Service-level acceptance tests from ISSUE 8:
//!
//! * the degradation ladder demonstrably engages under overload, in a
//!   seeded, reproducible (wall-clock-free) drive;
//! * the service degrades tiers instead of rejecting while a cheaper
//!   tier is available;
//! * cold-replaying an ingestion log reproduces the final assignment
//!   bit-for-bit *at every tier* — the conformance invariant;
//! * the JSONL schema stays pinned to `BatchReport::FIELD_NAMES`.

use mec_service::{
    BatchPolicy, BatchReport, LogEntry, SchedulerCore, ServiceConfig, ServiceRequest, Tier,
    TierPolicy,
};
use mec_types::Seconds;

/// A small deterministic service: batches of 4, tier thresholds low
/// enough to traverse the whole ladder with double-digit request counts.
fn ladder_config(seed: u64) -> ServiceConfig {
    ServiceConfig::quick(seed)
        .with_batch(BatchPolicy {
            max_size: 4,
            max_age: Seconds::new(0.05),
        })
        .with_tiers(TierPolicy {
            shorten_depth: 6,
            greedy_depth: 14,
            shorten_age_ratio: 8.0,
            greedy_age_ratio: 32.0,
            upgrade_margin: 2,
            upgrade_hold: 2,
        })
}

/// Drives one seeded overload wave: calm traffic, a burst that backs the
/// batcher up past both thresholds, then calm recovery. Purely
/// virtual-time, so the run is a pure function of the seed.
fn drive_overload_wave(core: &mut SchedulerCore) -> Vec<BatchReport> {
    let mut reports = Vec::new();
    let mut next_id = 0u64;
    let mut clock = 0.0f64;
    let arrive = |core: &mut SchedulerCore, n: usize, t: f64, next_id: &mut u64| {
        for _ in 0..n {
            core.submit(ServiceRequest::arrival(*next_id, t));
            *next_id += 1;
        }
    };

    // Calm: single under-sized batches, no backlog.
    for _ in 0..3 {
        arrive(core, 3, clock, &mut next_id);
        clock += 0.05;
        reports.extend(core.flush(clock).unwrap());
    }
    // Burst: 24 requests stack up, then batches are cut one at a time —
    // the backlog left behind each cut is the overload signal.
    arrive(core, 24, clock, &mut next_id);
    clock += 0.05;
    while core.pending() > 0 {
        reports.push(core.close_batch(clock).unwrap().unwrap());
        clock += 0.05;
    }
    // Recovery: calm single batches again.
    for _ in 0..8 {
        arrive(core, 2, clock, &mut next_id);
        clock += 0.05;
        reports.extend(core.flush(clock).unwrap());
    }
    reports
}

#[test]
fn the_degradation_ladder_engages_under_overload_and_recovers_with_hysteresis() {
    let mut core = SchedulerCore::new(ladder_config(41)).unwrap();
    let reports = drive_overload_wave(&mut core);

    let tiers: Vec<&str> = reports.iter().map(|r| r.tier.as_str()).collect();
    assert!(tiers.contains(&"full"));
    assert!(tiers.contains(&"shortened"), "tiers: {tiers:?}");
    assert!(tiers.contains(&"greedy_admit"), "tiers: {tiers:?}");
    // The wave ends calm: the service recovered to Full.
    assert_eq!(core.tier(), Tier::Full, "tiers: {tiers:?}");

    // Degradation engaged *instead of* rejecting: the population never
    // hit the admission cap and nothing was refused.
    assert_eq!(
        reports.iter().map(|r| r.rejected).sum::<usize>(),
        0,
        "a cheaper tier was always available — no request may be rejected"
    );

    // Hysteresis: recovery from greedy_admit must pass through
    // shortened (one tier per upgrade) and take at least `upgrade_hold`
    // calm batches per step.
    let log = core.tier_log();
    assert!(!log.is_empty());
    let upgrades: Vec<(&str, &str)> = log
        .iter()
        .filter(|t| {
            let sev = |n: &str| match n {
                "full" => 0,
                "shortened" => 1,
                _ => 2,
            };
            sev(&t.to) < sev(&t.from)
        })
        .map(|t| (t.from.as_str(), t.to.as_str()))
        .collect();
    assert!(
        upgrades.contains(&("greedy_admit", "shortened")),
        "upgrades: {upgrades:?}"
    );
    assert!(
        upgrades.contains(&("shortened", "full")),
        "upgrades: {upgrades:?}"
    );
    assert!(
        !upgrades.contains(&("greedy_admit", "full")),
        "upgrades must move one tier at a time: {upgrades:?}"
    );

    // Seeded reproducibility of the whole wave.
    let mut again = SchedulerCore::new(ladder_config(41)).unwrap();
    let reports_again = drive_overload_wave(&mut again);
    assert_eq!(reports, reports_again);
    assert_eq!(core.tier_log(), again.tier_log());
}

#[test]
fn replaying_the_ingestion_log_reproduces_the_run_at_every_tier() {
    let mut core = SchedulerCore::new(ladder_config(97)).unwrap();
    let live_reports = drive_overload_wave(&mut core);

    // The wave exercised all three tiers (precondition of the claim).
    let mut seen: Vec<&str> = live_reports.iter().map(|r| r.tier.as_str()).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen, ["full", "greedy_admit", "shortened"]);

    let replayed = SchedulerCore::replay(ladder_config(97), core.ingestion_log()).unwrap();

    // Bit-for-bit: population, slots, utility bits, version, tier log.
    let live = core.snapshot();
    let cold = replayed.snapshot();
    assert_eq!(live.users, cold.users);
    assert_eq!(live.assignment, cold.assignment);
    assert_eq!(live.utility.to_bits(), cold.utility.to_bits());
    assert_eq!(live.version, cold.version);
    assert_eq!(live.tier, cold.tier);
    assert_eq!(core.tier_log(), replayed.tier_log());
    // The replayed core logged the same stream it consumed, so a replay
    // of the replay is the same run again.
    assert_eq!(core.ingestion_log(), replayed.ingestion_log());
    // Metrics derived from decisions agree too.
    assert_eq!(core.metrics().requests, replayed.metrics().requests);
    assert_eq!(core.metrics().tier_batches, replayed.metrics().tier_batches);
    assert_eq!(core.metrics().sla_hits, replayed.metrics().sla_hits);
}

/// ISSUE 10: a churned city-scale soak replays bit-for-bit, every batch
/// decision included. The drive promotes into the sharded tier, runs
/// several consecutive warm re-solves under ~25% churn, dips below the
/// threshold (demotion, shard prior cleared), and re-promotes (cold
/// shard solve again) — and a fresh core fed the recorded ingestion log
/// reproduces every `BatchReport` of the live run exactly.
#[test]
fn churned_city_scale_soak_replays_every_batch_bit_for_bit() {
    let config = || {
        ServiceConfig::quick(29)
            .with_city_scale_threshold(6)
            .with_batch(BatchPolicy {
                max_size: 32,
                max_age: Seconds::new(0.05),
            })
    };

    // Live run: promotion → churned warm batches → demotion → return.
    let mut live = SchedulerCore::new(config()).unwrap();
    let mut reports = Vec::new();
    let mut clock = 0.0f64;
    for id in 0..8u64 {
        live.submit(ServiceRequest::arrival(id, clock));
    }
    clock += 0.05;
    reports.extend(live.flush(clock).unwrap());
    for round in 0..4u64 {
        live.submit(ServiceRequest::departure(round * 2, clock));
        live.submit(ServiceRequest::arrival(100 + round, clock));
        live.submit(ServiceRequest::departure(round * 2 + 1, clock));
        live.submit(ServiceRequest::arrival(200 + round, clock));
        clock += 0.05;
        reports.extend(live.flush(clock).unwrap());
    }
    for id in 100..104u64 {
        live.submit(ServiceRequest::departure(id, clock));
    }
    clock += 0.05;
    reports.extend(live.flush(clock).unwrap());
    for id in 300..304u64 {
        live.submit(ServiceRequest::arrival(id, clock));
    }
    clock += 0.05;
    reports.extend(live.flush(clock).unwrap());

    // The soak hit the intended tier pattern: cold promotion, warm
    // consecutive city batches, a full-tier dip, then a cold return.
    let shape: Vec<(&str, bool)> = reports
        .iter()
        .map(|r| (r.tier.as_str(), r.warm_started))
        .collect();
    assert_eq!(
        shape,
        vec![
            ("city_scale", false),
            ("city_scale", true),
            ("city_scale", true),
            ("city_scale", true),
            ("city_scale", true),
            ("full", true),
            ("city_scale", false),
        ],
        "soak tier/warm shape moved"
    );

    // Replay the recorded log on a fresh core, capturing every report.
    let mut cold = SchedulerCore::new(config()).unwrap();
    let mut cold_reports = Vec::new();
    for entry in live.ingestion_log().to_vec() {
        match entry {
            LogEntry::Request(request) => cold.submit(request),
            LogEntry::BatchClose { time_s } => {
                cold_reports.push(cold.close_batch(time_s).unwrap().unwrap());
            }
        }
    }
    assert_eq!(reports, cold_reports, "batch decisions diverged on replay");
    for (live_r, cold_r) in reports.iter().zip(&cold_reports) {
        assert_eq!(
            live_r.utility.to_bits(),
            cold_r.utility.to_bits(),
            "batch {} utility bits diverged",
            live_r.batch
        );
    }
    let live_snap = live.snapshot();
    let cold_snap = cold.snapshot();
    assert_eq!(live_snap.users, cold_snap.users);
    assert_eq!(live_snap.assignment, cold_snap.assignment);
    assert_eq!(live_snap.utility.to_bits(), cold_snap.utility.to_bits());
    assert_eq!(live.tier_log(), cold.tier_log());
}

#[test]
fn ingestion_log_round_trips_through_json() {
    let mut core = SchedulerCore::new(ladder_config(5)).unwrap();
    for id in 0..6 {
        core.submit(ServiceRequest::arrival(id, 0.01 * id as f64));
    }
    core.flush(0.1).unwrap();
    let log = core.ingestion_log().to_vec();
    let json = serde_json::to_string(&log).unwrap();
    let back: Vec<LogEntry> = serde_json::from_str(&json).unwrap();
    assert_eq!(log, back);
    // A log restored from JSON replays identically.
    let replayed = SchedulerCore::replay(ladder_config(5), &back).unwrap();
    assert_eq!(core.snapshot().assignment, replayed.snapshot().assignment);
}

#[test]
fn jsonl_schema_is_pinned() {
    // Integration-level pin: every serialized report carries exactly the
    // FIELD_NAMES keys, in order (the unit test checks one report; this
    // checks reports produced by a real run, greedy tier included).
    let mut core = SchedulerCore::new(ladder_config(13)).unwrap();
    let reports = drive_overload_wave(&mut core);
    assert!(!reports.is_empty());
    for report in &reports {
        let line = report.to_jsonl();
        let mut at = 0usize;
        for field in BatchReport::FIELD_NAMES {
            let needle = format!("\"{field}\":");
            let found = line[at..]
                .find(&needle)
                .unwrap_or_else(|| panic!("field `{field}` missing or out of order in {line}"));
            at += found;
        }
    }
}
