//! Computing-resource allocation (the CRA subproblem, Eqs. 20–23).
//!
//! For a fixed offloading decision the CRA problem
//! `min Σ η_u / f_us  s.t.  Σ_u f_us ≤ f_s` is convex with a diagonal,
//! positive-definite Hessian, and its KKT conditions yield the closed-form
//! square-root rule of Eq. 22. [`kkt_allocation`] implements that rule;
//! [`optimal_lambda_cost`] evaluates the resulting cost Λ(X, F*) (Eq. 23)
//! without materializing the allocation — the hot path for search.

use crate::assignment::Assignment;
use crate::scenario::Scenario;
use mec_types::{Error, Hertz, ServerId, UserId};

/// A computing-resource allocation `F = {f_us}`: the CPU share (Hz) each
/// offloaded user receives from its serving MEC server. Local users hold
/// zero.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceAllocation {
    shares: Vec<f64>,
}

impl ResourceAllocation {
    /// Builds an allocation from raw per-user shares in Hz (crate-internal;
    /// used by the numeric CRA solver).
    pub(crate) fn from_shares(shares: Vec<f64>) -> Self {
        Self { shares }
    }

    /// The CPU share of user `u` (zero if it executes locally).
    #[inline]
    pub fn share(&self, u: UserId) -> Hertz {
        Hertz::new(self.shares[u.index()])
    }

    /// All shares indexed by user.
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// Total capacity handed out by server `s` under assignment `x`.
    pub fn server_load(&self, s: ServerId, x: &Assignment) -> Hertz {
        Hertz::new(x.server_users_iter(s).map(|u| self.shares[u.index()]).sum())
    }

    /// Checks constraints (12e) and (12f): every offloaded user receives a
    /// strictly positive share and no server is oversubscribed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InfeasibleAllocation`] naming the first violation.
    pub fn verify(&self, scenario: &Scenario, x: &Assignment) -> Result<(), Error> {
        for (u, _, _) in x.offloaded() {
            if self.shares[u.index()] <= 0.0 {
                return Err(Error::InfeasibleAllocation(format!(
                    "offloaded user {u} received a non-positive share (constraint 12e)"
                )));
            }
        }
        for u in scenario.user_ids() {
            if !x.is_offloaded(u) && self.shares[u.index()] != 0.0 {
                return Err(Error::InfeasibleAllocation(format!(
                    "local user {u} received a non-zero share"
                )));
            }
        }
        for s in scenario.server_ids() {
            let load = self.server_load(s, x).as_hz();
            let cap = scenario.server(s).capacity().as_hz();
            if load > cap * (1.0 + 1e-9) {
                return Err(Error::InfeasibleAllocation(format!(
                    "server {s} oversubscribed: {load} Hz > {cap} Hz (constraint 12f)"
                )));
            }
        }
        Ok(())
    }
}

/// Computes the KKT-optimal allocation of Eq. 22:
/// `f*_us = f_s·√η_u / Σ_{v∈U_s} √η_v`.
///
/// If every user attached to a server has `η = 0` (all pure energy-minded,
/// `β_time = 0`), any split is optimal for the objective; an equal split is
/// returned so execution times stay finite for reporting.
///
/// # Example
///
/// ```
/// use mec_radio::{ChannelGains, OfdmaConfig};
/// use mec_system::{kkt_allocation, Assignment, Scenario, UserSpec};
/// use mec_types::*;
///
/// # fn main() -> std::result::Result<(), mec_types::Error> {
/// let scenario = Scenario::new(
///     vec![UserSpec::paper_default_with_workload(Cycles::from_mega(1000.0))?; 2],
///     vec![ServerProfile::paper_default()],
///     OfdmaConfig::new(Hertz::from_mega(20.0), 2)?,
///     ChannelGains::uniform(2, 1, 2, 1e-10)?,
///     Watts::new(1e-13),
/// )?;
/// let mut x = Assignment::all_local(&scenario);
/// x.assign(UserId::new(0), ServerId::new(0), SubchannelId::new(0))?;
/// x.assign(UserId::new(1), ServerId::new(0), SubchannelId::new(1))?;
///
/// // Two identical users split the 20 GHz server evenly.
/// let f = kkt_allocation(&scenario, &x);
/// assert!((f.share(UserId::new(0)).as_giga() - 10.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn kkt_allocation(scenario: &Scenario, x: &Assignment) -> ResourceAllocation {
    let mut shares = vec![0.0; scenario.num_users()];
    for s in scenario.server_ids() {
        // Two passes over the occupancy row instead of collecting `U_s`.
        let mut count = 0usize;
        let mut denom = 0.0f64;
        for u in x.server_users_iter(s) {
            count += 1;
            denom += scenario.coefficients(u).eta.sqrt();
        }
        if count == 0 {
            continue;
        }
        let capacity = scenario.server(s).capacity().as_hz();
        if denom > 0.0 {
            for u in x.server_users_iter(s) {
                shares[u.index()] = capacity * scenario.coefficients(u).eta.sqrt() / denom;
            }
        } else {
            let equal = capacity / count as f64;
            for u in x.server_users_iter(s) {
                shares[u.index()] = equal;
            }
        }
    }
    ResourceAllocation { shares }
}

/// An equal-split allocation (`f_us = f_s / |U_s|`), used as the ablation
/// baseline against the KKT rule.
pub fn equal_share_allocation(scenario: &Scenario, x: &Assignment) -> ResourceAllocation {
    let mut shares = vec![0.0; scenario.num_users()];
    for s in scenario.server_ids() {
        let count = x.server_users_iter(s).count();
        if count == 0 {
            continue;
        }
        let equal = scenario.server(s).capacity().as_hz() / count as f64;
        for u in x.server_users_iter(s) {
            shares[u.index()] = equal;
        }
    }
    ResourceAllocation { shares }
}

/// The optimal execution-cost term Λ(X, F*) of Eq. 23:
/// `Λ = Σ_s (Σ_{u∈U_s} √η_u)² / f_s`.
///
/// Equals `Σ_u η_u / f*_us` under [`kkt_allocation`] but costs `O(|U_off|)`
/// with no allocation vector.
pub fn optimal_lambda_cost(scenario: &Scenario, x: &Assignment) -> f64 {
    let mut total = 0.0;
    for s in scenario.server_ids() {
        let sum_sqrt: f64 = x
            .server_users_iter(s)
            .map(|u| scenario.coefficients(u).eta.sqrt())
            .sum();
        if sum_sqrt > 0.0 {
            total += sum_sqrt * sum_sqrt / scenario.server(s).capacity().as_hz();
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::UserSpec;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_types::{
        Bits, Cycles, DeviceProfile, Hertz, ProviderPreference, ServerProfile, SubchannelId, Task,
        UserPreferences, Watts,
    };

    fn scenario_with_prefs(beta_times: &[f64]) -> Scenario {
        let users: Vec<UserSpec> = beta_times
            .iter()
            .map(|bt| UserSpec {
                task: Task::new(Bits::from_kilobytes(420.0), Cycles::from_mega(1000.0)).unwrap(),
                device: DeviceProfile::paper_default(),
                preferences: UserPreferences::new(*bt).unwrap(),
                lambda: ProviderPreference::MAX,
            })
            .collect();
        let n = users.len();
        Scenario::new(
            users,
            vec![ServerProfile::paper_default(); 2],
            OfdmaConfig::new(Hertz::from_mega(20.0), 4).unwrap(),
            ChannelGains::uniform(n, 2, 4, 1e-10).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap()
    }

    fn offload_all_to_server0(scenario: &Scenario) -> Assignment {
        let mut x = Assignment::all_local(scenario);
        for (i, u) in scenario.user_ids().enumerate() {
            x.assign(u, ServerId::new(0), SubchannelId::new(i)).unwrap();
        }
        x
    }

    #[test]
    fn equal_etas_split_evenly() {
        let sc = scenario_with_prefs(&[0.5, 0.5, 0.5, 0.5]);
        let x = offload_all_to_server0(&sc);
        let f = kkt_allocation(&sc, &x);
        for u in sc.user_ids() {
            assert!(
                (f.share(u).as_giga() - 5.0).abs() < 1e-9,
                "20 GHz / 4 users"
            );
        }
        f.verify(&sc, &x).unwrap();
    }

    #[test]
    fn shares_follow_square_root_of_eta() {
        // η ∝ β_time, so a user with β_time = 0.8 gets √(0.8/0.2) = 2x the
        // share of a user with β_time = 0.2.
        let sc = scenario_with_prefs(&[0.8, 0.2]);
        let x = offload_all_to_server0(&sc);
        let f = kkt_allocation(&sc, &x);
        let ratio = f.share(UserId::new(0)) / f.share(UserId::new(1));
        assert!((ratio - 2.0).abs() < 1e-9, "got {ratio}");
        // Shares exhaust the server exactly.
        let used = f.server_load(ServerId::new(0), &x).as_hz();
        assert!((used - 20.0e9).abs() < 1.0);
        f.verify(&sc, &x).unwrap();
    }

    #[test]
    fn closed_form_lambda_matches_allocation_cost() {
        let sc = scenario_with_prefs(&[0.7, 0.5, 0.3]);
        let x = offload_all_to_server0(&sc);
        let f = kkt_allocation(&sc, &x);
        let direct: f64 = sc
            .user_ids()
            .map(|u| {
                let eta = sc.coefficients(u).eta;
                if x.is_offloaded(u) {
                    eta / f.share(u).as_hz()
                } else {
                    0.0
                }
            })
            .sum();
        let closed = optimal_lambda_cost(&sc, &x);
        assert!((direct - closed).abs() / closed < 1e-12);
    }

    #[test]
    fn kkt_beats_equal_share_on_heterogeneous_etas() {
        let sc = scenario_with_prefs(&[0.9, 0.1, 0.5]);
        let x = offload_all_to_server0(&sc);
        let kkt = kkt_allocation(&sc, &x);
        let eq = equal_share_allocation(&sc, &x);
        let cost = |f: &ResourceAllocation| -> f64 {
            sc.user_ids()
                .map(|u| sc.coefficients(u).eta / f.share(u).as_hz())
                .sum()
        };
        assert!(cost(&kkt) < cost(&eq), "KKT must dominate equal split");
        // And on homogeneous etas they coincide.
        let sc2 = scenario_with_prefs(&[0.5, 0.5]);
        let x2 = offload_all_to_server0(&sc2);
        assert_eq!(kkt_allocation(&sc2, &x2), equal_share_allocation(&sc2, &x2));
    }

    #[test]
    fn all_zero_eta_users_fall_back_to_equal_split() {
        let sc = scenario_with_prefs(&[0.0, 0.0]);
        let x = offload_all_to_server0(&sc);
        let f = kkt_allocation(&sc, &x);
        for u in sc.user_ids() {
            assert!((f.share(u).as_giga() - 10.0).abs() < 1e-9);
        }
        assert_eq!(optimal_lambda_cost(&sc, &x), 0.0);
        f.verify(&sc, &x).unwrap();
    }

    #[test]
    fn local_users_hold_zero_share() {
        let sc = scenario_with_prefs(&[0.5, 0.5, 0.5]);
        let mut x = Assignment::all_local(&sc);
        x.assign(UserId::new(1), ServerId::new(1), SubchannelId::new(0))
            .unwrap();
        let f = kkt_allocation(&sc, &x);
        assert_eq!(f.share(UserId::new(0)).as_hz(), 0.0);
        assert_eq!(f.share(UserId::new(2)).as_hz(), 0.0);
        assert!((f.share(UserId::new(1)).as_giga() - 20.0).abs() < 1e-9);
        f.verify(&sc, &x).unwrap();
    }

    #[test]
    fn all_local_costs_nothing() {
        let sc = scenario_with_prefs(&[0.5, 0.5]);
        let x = Assignment::all_local(&sc);
        assert_eq!(optimal_lambda_cost(&sc, &x), 0.0);
        let f = kkt_allocation(&sc, &x);
        assert!(f.shares().iter().all(|s| *s == 0.0));
        f.verify(&sc, &x).unwrap();
    }

    #[test]
    fn verify_catches_violations() {
        let sc = scenario_with_prefs(&[0.5, 0.5]);
        let x = offload_all_to_server0(&sc);
        // Zero share for an offloaded user violates (12e).
        let f = ResourceAllocation {
            shares: vec![0.0, 1.0e9],
        };
        assert!(f.verify(&sc, &x).is_err());
        // Oversubscription violates (12f).
        let f = ResourceAllocation {
            shares: vec![15.0e9, 15.0e9],
        };
        assert!(f.verify(&sc, &x).is_err());
        // Non-zero share for a local user is inconsistent.
        let x_local = Assignment::all_local(&sc);
        let f = ResourceAllocation {
            shares: vec![1.0, 0.0],
        };
        assert!(f.verify(&sc, &x_local).is_err());
    }
}
