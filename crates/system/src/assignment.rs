//! Offloading decisions (the binary matrix `X`).
//!
//! [`Assignment`] maintains the JTORA feasibility constraints as
//! *representation invariants*:
//!
//! * (12b/12c) each user holds at most one `(server, subchannel)` slot —
//!   enforced by storing the decision as `Option<(ServerId, SubchannelId)>`
//!   per user;
//! * (12d) each `(server, subchannel)` pair serves at most one user —
//!   enforced by an occupancy index checked on every mutation.
//!
//! Every mutating method either preserves feasibility or fails without
//! modifying the assignment, so solvers can never emit an infeasible `X`.

use crate::scenario::Scenario;
use mec_radio::Transmission;
use mec_types::{Error, ServerId, SubchannelId, UserId};
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;

/// A feasible offloading decision for a fixed `(U, S, N)` geometry.
///
/// # Example
///
/// ```
/// use mec_system::Assignment;
/// use mec_types::{ServerId, SubchannelId, UserId};
///
/// let mut x = Assignment::with_dims(3, 2, 2);
/// x.assign(UserId::new(0), ServerId::new(1), SubchannelId::new(0))?;
/// assert!(x.is_offloaded(UserId::new(0)));
/// assert_eq!(x.occupant(ServerId::new(1), SubchannelId::new(0)), Some(UserId::new(0)));
///
/// // Double-booking a slot is refused, keeping constraint (12d) intact.
/// assert!(x.assign(UserId::new(1), ServerId::new(1), SubchannelId::new(0)).is_err());
/// # Ok::<(), mec_types::Error>(())
/// ```
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Assignment {
    num_servers: usize,
    num_subchannels: usize,
    /// Per-user slot: `None` = local execution.
    slots: Vec<Option<(ServerId, SubchannelId)>>,
    /// Reverse index `[j·S + s] -> occupant` (subchannel-major, so the
    /// per-subchannel server scans of the hot loops walk contiguous rows).
    occupancy: Vec<Option<UserId>>,
}

// Hand-written so `clone_from` reuses the destination's buffers: the search
// hot loops snapshot the incumbent via `best.clone_from(..)`, and the derived
// impl's `clone_from` (`*self = source.clone()`) would heap-allocate on every
// improving move.
impl Clone for Assignment {
    fn clone(&self) -> Self {
        Self {
            num_servers: self.num_servers,
            num_subchannels: self.num_subchannels,
            slots: self.slots.clone(),
            occupancy: self.occupancy.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.num_servers = source.num_servers;
        self.num_subchannels = source.num_subchannels;
        self.slots.clone_from(&source.slots);
        self.occupancy.clone_from(&source.occupancy);
    }
}

impl Assignment {
    /// The all-local decision (`X = 0`) for a scenario's geometry.
    pub fn all_local(scenario: &Scenario) -> Self {
        Self::with_dims(
            scenario.num_users(),
            scenario.num_servers(),
            scenario.num_subchannels(),
        )
    }

    /// The all-local decision for explicit dimensions.
    pub fn with_dims(num_users: usize, num_servers: usize, num_subchannels: usize) -> Self {
        Self {
            num_servers,
            num_subchannels,
            slots: vec![None; num_users],
            occupancy: vec![None; num_servers * num_subchannels],
        }
    }

    // Per-subchannel layout (`[j][s]`): the incremental evaluator refreshes
    // every occupant of one subchannel across servers, so that scan walks
    // contiguous memory.
    #[inline]
    fn occ_index(&self, s: ServerId, j: SubchannelId) -> usize {
        j.index() * self.num_servers + s.index()
    }

    fn check_ids(&self, u: UserId, s: ServerId, j: SubchannelId) -> Result<(), Error> {
        if u.index() >= self.slots.len() {
            return Err(Error::UnknownEntity {
                kind: "user",
                index: u.index(),
                count: self.slots.len(),
            });
        }
        if s.index() >= self.num_servers {
            return Err(Error::UnknownEntity {
                kind: "server",
                index: s.index(),
                count: self.num_servers,
            });
        }
        if j.index() >= self.num_subchannels {
            return Err(Error::UnknownEntity {
                kind: "subchannel",
                index: j.index(),
                count: self.num_subchannels,
            });
        }
        Ok(())
    }

    /// Number of users.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.slots.len()
    }

    /// Number of servers.
    #[inline]
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Number of subchannels.
    #[inline]
    pub fn num_subchannels(&self) -> usize {
        self.num_subchannels
    }

    /// The slot held by user `u`, or `None` if it executes locally.
    #[inline]
    pub fn slot(&self, u: UserId) -> Option<(ServerId, SubchannelId)> {
        self.slots[u.index()]
    }

    /// Whether user `u` offloads.
    #[inline]
    pub fn is_offloaded(&self, u: UserId) -> bool {
        self.slots[u.index()].is_some()
    }

    /// The user occupying `(s, j)`, if any.
    #[inline]
    pub fn occupant(&self, s: ServerId, j: SubchannelId) -> Option<UserId> {
        self.occupancy[self.occ_index(s, j)]
    }

    /// The contiguous occupancy row of subchannel `j`, indexed by server —
    /// the gather the incremental evaluator's Γ refresh and speculative
    /// scoring sweep across all servers at once.
    #[inline]
    pub fn occupants_on(&self, j: SubchannelId) -> &[Option<UserId>] {
        &self.occupancy[j.index() * self.num_servers..][..self.num_servers]
    }

    /// Number of offloading users `|U_offload|`.
    pub fn num_offloaded(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterates over `(user, server, subchannel)` for every offloaded user.
    pub fn offloaded(&self) -> impl Iterator<Item = (UserId, ServerId, SubchannelId)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(u, slot)| slot.map(|(s, j)| (UserId::new(u), s, j)))
    }

    /// The active transmissions implied by this decision, for SINR
    /// computation.
    ///
    /// Allocates; hot loops should prefer [`Assignment::transmissions_iter`].
    pub fn transmissions(&self) -> Vec<Transmission> {
        self.transmissions_iter().collect()
    }

    /// Allocation-free variant of [`Assignment::transmissions`].
    pub fn transmissions_iter(&self) -> impl Iterator<Item = Transmission> + '_ {
        self.offloaded().map(|(u, s, j)| Transmission::new(u, s, j))
    }

    /// Users currently attached to server `s` (the set `U_s`).
    ///
    /// Allocates; hot loops should prefer [`Assignment::server_users_iter`].
    pub fn server_users(&self, s: ServerId) -> Vec<UserId> {
        self.server_users_iter(s).collect()
    }

    /// Allocation-free variant of [`Assignment::server_users`], in
    /// subchannel order.
    pub fn server_users_iter(&self, s: ServerId) -> impl Iterator<Item = UserId> + '_ {
        (0..self.num_subchannels).filter_map(move |j| self.occupant(s, SubchannelId::new(j)))
    }

    /// The lowest-indexed free subchannel at server `s`, if any.
    pub fn free_subchannel(&self, s: ServerId) -> Option<SubchannelId> {
        (0..self.num_subchannels)
            .map(SubchannelId::new)
            .find(|j| self.occupant(s, *j).is_none())
    }

    /// All free subchannels at server `s`.
    ///
    /// Allocates; hot loops should prefer
    /// [`Assignment::free_subchannels_iter`].
    pub fn free_subchannels(&self, s: ServerId) -> Vec<SubchannelId> {
        self.free_subchannels_iter(s).collect()
    }

    /// Allocation-free variant of [`Assignment::free_subchannels`].
    pub fn free_subchannels_iter(&self, s: ServerId) -> impl Iterator<Item = SubchannelId> + '_ {
        (0..self.num_subchannels)
            .map(SubchannelId::new)
            .filter(move |j| self.occupant(s, *j).is_none())
    }

    /// Assigns user `u` to `(s, j)`.
    ///
    /// # Errors
    ///
    /// Fails (leaving the assignment unchanged) if `u` already offloads,
    /// if `(s, j)` is occupied, or if any id is out of range.
    pub fn assign(&mut self, u: UserId, s: ServerId, j: SubchannelId) -> Result<(), Error> {
        self.check_ids(u, s, j)?;
        if self.slots[u.index()].is_some() {
            return Err(Error::InfeasibleAssignment(format!(
                "user {u} already offloads; release it first"
            )));
        }
        if let Some(other) = self.occupant(s, j) {
            return Err(Error::InfeasibleAssignment(format!(
                "slot ({s}, {j}) is occupied by {other}"
            )));
        }
        self.slots[u.index()] = Some((s, j));
        let idx = self.occ_index(s, j);
        self.occupancy[idx] = Some(u);
        Ok(())
    }

    /// Re-applies a logged `Assign` op without feasibility checks — the
    /// undo path of the incremental evaluator, whose inverse ops are valid
    /// by construction (checked in debug builds).
    pub(crate) fn restore_assign(&mut self, u: UserId, s: ServerId, j: SubchannelId) {
        debug_assert!(self.slots[u.index()].is_none(), "user already offloads");
        let idx = self.occ_index(s, j);
        debug_assert!(self.occupancy[idx].is_none(), "slot occupied");
        self.slots[u.index()] = Some((s, j));
        self.occupancy[idx] = Some(u);
    }

    /// Releases user `u` back to local execution, returning its previous
    /// slot (or `None` if it was already local).
    pub fn release(&mut self, u: UserId) -> Option<(ServerId, SubchannelId)> {
        let slot = self.slots[u.index()].take();
        if let Some((s, j)) = slot {
            let idx = self.occ_index(s, j);
            self.occupancy[idx] = None;
        }
        slot
    }

    /// Moves user `u` to `(s, j)`, releasing its previous slot (if any)
    /// first. If the target slot is occupied by another user, fails and
    /// restores the original state.
    pub fn move_to(&mut self, u: UserId, s: ServerId, j: SubchannelId) -> Result<(), Error> {
        self.check_ids(u, s, j)?;
        if let Some(occupant) = self.occupant(s, j) {
            if occupant != u {
                return Err(Error::InfeasibleAssignment(format!(
                    "slot ({s}, {j}) is occupied by {occupant}"
                )));
            }
            return Ok(()); // Already there.
        }
        let prev = self.release(u);
        debug_assert!(self.occupant(s, j).is_none());
        let result = self.assign(u, s, j);
        if result.is_err() {
            // Unreachable in practice (target checked free above), but keep
            // the rollback for defensive symmetry.
            if let Some((ps, pj)) = prev {
                let _ = self.assign(u, ps, pj);
            }
        }
        result
    }

    /// Swaps the slots of two users. Either, both or neither may currently
    /// offload; a local user swaps "being local" to the other.
    pub fn swap(&mut self, a: UserId, b: UserId) {
        if a == b {
            return;
        }
        let slot_a = self.release(a);
        let slot_b = self.release(b);
        if let Some((s, j)) = slot_b {
            self.assign(a, s, j).expect("slot b was just freed");
        }
        if let Some((s, j)) = slot_a {
            self.assign(b, s, j).expect("slot a was just freed");
        }
    }

    /// Evicts the occupant of `(s, j)` (if any) to local execution and
    /// assigns `u` there. Returns the evicted user, if any.
    ///
    /// This is how the neighborhood kernel honors Algorithm 2's "allocate
    /// one randomly if none are free" without ever violating (12d).
    ///
    /// # Errors
    ///
    /// Fails if ids are out of range (the assignment is unchanged).
    pub fn assign_evicting(
        &mut self,
        u: UserId,
        s: ServerId,
        j: SubchannelId,
    ) -> Result<Option<UserId>, Error> {
        self.check_ids(u, s, j)?;
        let evicted = self.occupant(s, j).filter(|occ| *occ != u);
        if let Some(victim) = evicted {
            self.release(victim);
        }
        self.move_to(u, s, j)?;
        Ok(evicted)
    }

    /// Carries this decision onto a *new* user population with the same
    /// `(S, N)` geometry: `old_of_new[v]` names the user of `self` that
    /// the new index `v` continues (a survivor keeps its slot), or `None`
    /// for a fresh arrival (which starts local). Users of `self` that no
    /// index continues have departed; their slots are freed.
    ///
    /// This is the churn-patching primitive of the online engine: a
    /// survivor's placement is never invalidated by arrivals or
    /// departures, so the patched decision warm-starts the next epoch's
    /// re-solve.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownEntity`] if a mapped old index is out of
    /// range and [`Error::InfeasibleAssignment`] if two new indices claim
    /// the same old user (which would double-book its slot).
    pub fn patched(&self, old_of_new: &[Option<UserId>]) -> Result<Assignment, Error> {
        let mut next =
            Assignment::with_dims(old_of_new.len(), self.num_servers, self.num_subchannels);
        let mut continued = vec![false; self.slots.len()];
        for (v, old) in old_of_new.iter().enumerate() {
            let Some(old) = old else { continue };
            if old.index() >= self.slots.len() {
                return Err(Error::UnknownEntity {
                    kind: "user",
                    index: old.index(),
                    count: self.slots.len(),
                });
            }
            if continued[old.index()] {
                return Err(Error::InfeasibleAssignment(format!(
                    "user {old} is continued by two new indices"
                )));
            }
            continued[old.index()] = true;
            if let Some((s, j)) = self.slots[old.index()] {
                next.assign(UserId::new(v), s, j)
                    .expect("injective survivor map preserves (12d)");
            }
        }
        Ok(next)
    }

    /// Buffer-reusing variant of [`Assignment::patched`]: rewrites `next`
    /// in place (its `(S, N)` geometry must match `self`'s) and reuses
    /// `continued` as the injectivity scratch. Allocation-free once the
    /// buffers have reached capacity — the warm shard path runs one patch
    /// per batch and must not touch the allocator.
    ///
    /// # Errors
    ///
    /// As [`Assignment::patched`], plus [`Error::InfeasibleAssignment`] if
    /// `next` has a different `(S, N)` geometry.
    pub fn patched_into(
        &self,
        old_of_new: &[Option<UserId>],
        next: &mut Assignment,
        continued: &mut Vec<bool>,
    ) -> Result<(), Error> {
        if next.num_servers != self.num_servers || next.num_subchannels != self.num_subchannels {
            return Err(Error::InfeasibleAssignment(
                "patched_into target has a different (S, N) geometry".into(),
            ));
        }
        next.slots.clear();
        next.slots.resize(old_of_new.len(), None);
        next.occupancy.iter_mut().for_each(|o| *o = None);
        continued.clear();
        continued.resize(self.slots.len(), false);
        for (v, old) in old_of_new.iter().enumerate() {
            let Some(old) = old else { continue };
            if old.index() >= self.slots.len() {
                return Err(Error::UnknownEntity {
                    kind: "user",
                    index: old.index(),
                    count: self.slots.len(),
                });
            }
            if continued[old.index()] {
                return Err(Error::InfeasibleAssignment(format!(
                    "user {old} is continued by two new indices"
                )));
            }
            continued[old.index()] = true;
            if let Some((s, j)) = self.slots[old.index()] {
                next.assign(UserId::new(v), s, j)
                    .expect("injective survivor map preserves (12d)");
            }
        }
        Ok(())
    }

    /// Exhaustively re-checks all representation invariants against a
    /// scenario's geometry. Intended for tests and debug assertions; the
    /// mutation API maintains these invariants by construction.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InfeasibleAssignment`] describing the first
    /// violated invariant.
    pub fn verify_feasible(&self, scenario: &Scenario) -> Result<(), Error> {
        if self.slots.len() != scenario.num_users()
            || self.num_servers != scenario.num_servers()
            || self.num_subchannels != scenario.num_subchannels()
        {
            return Err(Error::InfeasibleAssignment(
                "assignment dimensions do not match the scenario".into(),
            ));
        }
        // Occupancy must be the exact inverse of slots.
        let mut seen = vec![false; self.occupancy.len()];
        for (u, slot) in self.slots.iter().enumerate() {
            if let Some((s, j)) = slot {
                let idx = self.occ_index(*s, *j);
                if seen[idx] {
                    return Err(Error::InfeasibleAssignment(format!(
                        "slot ({s}, {j}) is double-booked (constraint 12d)"
                    )));
                }
                seen[idx] = true;
                if self.occupancy[idx] != Some(UserId::new(u)) {
                    return Err(Error::InfeasibleAssignment(format!(
                        "occupancy index out of sync at ({s}, {j})"
                    )));
                }
            }
        }
        for (idx, occ) in self.occupancy.iter().enumerate() {
            if occ.is_some() && !seen[idx] {
                return Err(Error::InfeasibleAssignment(
                    "occupancy lists a user with no matching slot".into(),
                ));
            }
        }
        Ok(())
    }
}

/// The persistent form of an assignment: dimensions plus per-user slots.
/// The occupancy index is rebuilt (and re-validated) on deserialization,
/// so a corrupted or double-booked file is rejected rather than trusted.
#[derive(Serialize, Deserialize)]
struct AssignmentRepr {
    num_servers: usize,
    num_subchannels: usize,
    slots: Vec<Option<(ServerId, SubchannelId)>>,
}

impl Serialize for Assignment {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        AssignmentRepr {
            num_servers: self.num_servers,
            num_subchannels: self.num_subchannels,
            slots: self.slots.clone(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Assignment {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = AssignmentRepr::deserialize(deserializer)?;
        let mut assignment =
            Assignment::with_dims(repr.slots.len(), repr.num_servers, repr.num_subchannels);
        for (u, slot) in repr.slots.iter().enumerate() {
            if let Some((s, j)) = slot {
                assignment
                    .assign(UserId::new(u), *s, *j)
                    .map_err(|e| D::Error::custom(format!("invalid assignment: {e}")))?;
            }
        }
        Ok(assignment)
    }
}

impl fmt::Display for Assignment {
    /// Renders the occupancy grid, one row per server:
    /// `s0: [u3] [--] [u7]` (— = free subchannel), followed by the count
    /// of local users.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in 0..self.num_servers {
            write!(f, "s{s}:")?;
            for j in 0..self.num_subchannels {
                match self.occupant(ServerId::new(s), SubchannelId::new(j)) {
                    Some(u) => write!(f, " [{u}]")?,
                    None => write!(f, " [--]")?,
                }
            }
            writeln!(f)?;
        }
        write!(
            f,
            "local: {}/{}",
            self.num_users() - self.num_offloaded(),
            self.num_users()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: usize) -> UserId {
        UserId::new(i)
    }
    fn s(i: usize) -> ServerId {
        ServerId::new(i)
    }
    fn j(i: usize) -> SubchannelId {
        SubchannelId::new(i)
    }

    fn fresh() -> Assignment {
        Assignment::with_dims(4, 2, 2)
    }

    #[test]
    fn starts_all_local() {
        let a = fresh();
        assert_eq!(a.num_offloaded(), 0);
        assert!(!a.is_offloaded(u(0)));
        assert_eq!(a.offloaded().count(), 0);
        assert!(a.transmissions().is_empty());
    }

    #[test]
    fn assign_and_release_roundtrip() {
        let mut a = fresh();
        a.assign(u(0), s(1), j(0)).unwrap();
        assert_eq!(a.slot(u(0)), Some((s(1), j(0))));
        assert_eq!(a.occupant(s(1), j(0)), Some(u(0)));
        assert_eq!(a.num_offloaded(), 1);
        assert_eq!(a.release(u(0)), Some((s(1), j(0))));
        assert_eq!(a.num_offloaded(), 0);
        assert_eq!(a.occupant(s(1), j(0)), None);
        assert_eq!(a.release(u(0)), None);
    }

    #[test]
    fn double_assignment_of_user_fails_cleanly() {
        let mut a = fresh();
        a.assign(u(0), s(0), j(0)).unwrap();
        let before = a.clone();
        assert!(a.assign(u(0), s(1), j(1)).is_err());
        assert_eq!(a, before);
    }

    #[test]
    fn occupied_slot_fails_cleanly() {
        let mut a = fresh();
        a.assign(u(0), s(0), j(0)).unwrap();
        let before = a.clone();
        assert!(a.assign(u(1), s(0), j(0)).is_err());
        assert_eq!(a, before);
    }

    #[test]
    fn out_of_range_ids_fail() {
        let mut a = fresh();
        assert!(a.assign(u(4), s(0), j(0)).is_err());
        assert!(a.assign(u(0), s(2), j(0)).is_err());
        assert!(a.assign(u(0), s(0), j(2)).is_err());
    }

    #[test]
    fn move_to_relocates() {
        let mut a = fresh();
        a.assign(u(0), s(0), j(0)).unwrap();
        a.move_to(u(0), s(1), j(1)).unwrap();
        assert_eq!(a.slot(u(0)), Some((s(1), j(1))));
        assert_eq!(a.occupant(s(0), j(0)), None);
        // Moving a local user is an assignment.
        a.move_to(u(1), s(0), j(0)).unwrap();
        assert_eq!(a.slot(u(1)), Some((s(0), j(0))));
        // Moving to one's own slot is a no-op.
        a.move_to(u(1), s(0), j(0)).unwrap();
        assert_eq!(a.slot(u(1)), Some((s(0), j(0))));
    }

    #[test]
    fn move_to_occupied_fails_without_losing_state() {
        let mut a = fresh();
        a.assign(u(0), s(0), j(0)).unwrap();
        a.assign(u(1), s(1), j(1)).unwrap();
        let before = a.clone();
        assert!(a.move_to(u(0), s(1), j(1)).is_err());
        assert_eq!(a, before);
    }

    #[test]
    fn swap_exchanges_slots() {
        let mut a = fresh();
        a.assign(u(0), s(0), j(0)).unwrap();
        a.assign(u(1), s(1), j(1)).unwrap();
        a.swap(u(0), u(1));
        assert_eq!(a.slot(u(0)), Some((s(1), j(1))));
        assert_eq!(a.slot(u(1)), Some((s(0), j(0))));
    }

    #[test]
    fn swap_with_local_user_transfers_the_slot() {
        let mut a = fresh();
        a.assign(u(0), s(0), j(1)).unwrap();
        a.swap(u(0), u(2));
        assert_eq!(a.slot(u(0)), None);
        assert_eq!(a.slot(u(2)), Some((s(0), j(1))));
        // Swapping two locals is a no-op, as is self-swap.
        a.swap(u(1), u(3));
        a.swap(u(2), u(2));
        assert_eq!(a.slot(u(2)), Some((s(0), j(1))));
        assert_eq!(a.num_offloaded(), 1);
    }

    #[test]
    fn assign_evicting_bumps_occupant_to_local() {
        let mut a = fresh();
        a.assign(u(0), s(0), j(0)).unwrap();
        let evicted = a.assign_evicting(u(1), s(0), j(0)).unwrap();
        assert_eq!(evicted, Some(u(0)));
        assert_eq!(a.slot(u(0)), None);
        assert_eq!(a.slot(u(1)), Some((s(0), j(0))));
        // Evicting an empty slot evicts no one.
        assert_eq!(a.assign_evicting(u(2), s(1), j(1)).unwrap(), None);
        // Self-eviction is a no-op move.
        assert_eq!(a.assign_evicting(u(1), s(0), j(0)).unwrap(), None);
        assert_eq!(a.slot(u(1)), Some((s(0), j(0))));
    }

    #[test]
    fn free_subchannel_queries() {
        let mut a = fresh();
        assert_eq!(a.free_subchannel(s(0)), Some(j(0)));
        assert_eq!(a.free_subchannels(s(0)).len(), 2);
        a.assign(u(0), s(0), j(0)).unwrap();
        assert_eq!(a.free_subchannel(s(0)), Some(j(1)));
        a.assign(u(1), s(0), j(1)).unwrap();
        assert_eq!(a.free_subchannel(s(0)), None);
        assert!(a.free_subchannels(s(0)).is_empty());
        assert_eq!(a.server_users(s(0)), vec![u(0), u(1)]);
        assert!(a.server_users(s(1)).is_empty());
    }

    #[test]
    fn patched_carries_survivor_slots_to_a_resized_population() {
        let mut a = fresh(); // 4 users, 2 servers, 2 subchannels
        a.assign(u(0), s(0), j(0)).unwrap();
        a.assign(u(2), s(1), j(1)).unwrap();
        // New population: user 2 survives as index 0, a fresh arrival is
        // index 1, user 1 (local) survives as index 2; user 0 departed.
        let next = a.patched(&[Some(u(2)), None, Some(u(1))]).unwrap();
        assert_eq!(next.num_users(), 3);
        assert_eq!(next.slot(u(0)), Some((s(1), j(1))));
        assert_eq!(next.slot(u(1)), None);
        assert_eq!(next.slot(u(2)), None);
        // The departed user's slot is free again.
        assert_eq!(next.occupant(s(0), j(0)), None);
        assert_eq!(next.num_offloaded(), 1);
    }

    #[test]
    fn patched_handles_empty_and_growing_populations() {
        let mut a = Assignment::with_dims(1, 2, 2);
        a.assign(u(0), s(1), j(0)).unwrap();
        // Everyone departs.
        let empty = a.patched(&[]).unwrap();
        assert_eq!(empty.num_users(), 0);
        assert_eq!(empty.num_offloaded(), 0);
        // Growing from an empty decision: all arrivals start local.
        let grown = empty.patched(&[None, None, None]).unwrap();
        assert_eq!(grown.num_users(), 3);
        assert_eq!(grown.num_offloaded(), 0);
        // Identity patch reproduces the original slots.
        let same = a.patched(&[Some(u(0))]).unwrap();
        assert_eq!(same.slot(u(0)), a.slot(u(0)));
    }

    #[test]
    fn patched_into_matches_patched_and_reuses_buffers() {
        let mut a = fresh(); // 4 users, 2 servers, 2 subchannels
        a.assign(u(0), s(0), j(0)).unwrap();
        a.assign(u(2), s(1), j(1)).unwrap();
        let map = [Some(u(2)), None, Some(u(1))];
        let expected = a.patched(&map).unwrap();
        // A dirty, differently-sized target gets fully rewritten.
        let mut next = Assignment::with_dims(4, 2, 2);
        next.assign(u(3), s(0), j(1)).unwrap();
        let mut continued = Vec::new();
        a.patched_into(&map, &mut next, &mut continued).unwrap();
        assert_eq!(next, expected);
        // Repeating the patch into the same buffers is idempotent.
        a.patched_into(&map, &mut next, &mut continued).unwrap();
        assert_eq!(next, expected);
        // Geometry mismatches and non-injective maps are rejected.
        let mut wrong = Assignment::with_dims(3, 3, 2);
        assert!(a.patched_into(&map, &mut wrong, &mut continued).is_err());
        assert!(a
            .patched_into(&[Some(u(1)), Some(u(1))], &mut next, &mut continued)
            .is_err());
    }

    #[test]
    fn patched_rejects_bad_maps() {
        let mut a = fresh();
        a.assign(u(1), s(0), j(1)).unwrap();
        // Out-of-range old index.
        assert!(a.patched(&[Some(u(9))]).is_err());
        // The same old user claimed twice.
        assert!(a.patched(&[Some(u(1)), Some(u(1))]).is_err());
        // Duplicating a *local* old user is also rejected: the map must
        // stay injective.
        assert!(a.patched(&[Some(u(0)), Some(u(0))]).is_err());
    }

    #[test]
    fn serde_roundtrip_rebuilds_occupancy() {
        let mut a = fresh();
        a.assign(u(0), s(1), j(0)).unwrap();
        a.assign(u(3), s(0), j(1)).unwrap();
        // Round-trip through serde's internal data model using the JSON-
        // free path: serialize to the repr and back via serde_transcode-
        // style manual check is unavailable offline, so use serde's
        // `serde::de::value` deserializer over a serialized intermediate.
        let repr = AssignmentRepr {
            num_servers: a.num_servers(),
            num_subchannels: a.num_subchannels(),
            slots: (0..a.num_users()).map(|i| a.slot(u(i))).collect(),
        };
        let mut rebuilt = Assignment::with_dims(4, 2, 2);
        for (i, slot) in repr.slots.iter().enumerate() {
            if let Some((ss, jj)) = slot {
                rebuilt.assign(u(i), *ss, *jj).unwrap();
            }
        }
        assert_eq!(a, rebuilt);
        assert_eq!(rebuilt.occupant(s(1), j(0)), Some(u(0)));
    }

    #[test]
    fn display_shows_grid_and_local_count() {
        let mut a = fresh();
        a.assign(u(1), s(0), j(1)).unwrap();
        a.assign(u(2), s(1), j(0)).unwrap();
        let text = a.to_string();
        assert!(text.contains("s0: [--] [u1]"));
        assert!(text.contains("s1: [u2] [--]"));
        assert!(text.ends_with("local: 2/4"));
    }

    #[test]
    fn offloaded_iteration_matches_slots() {
        let mut a = fresh();
        a.assign(u(2), s(1), j(0)).unwrap();
        a.assign(u(0), s(0), j(1)).unwrap();
        let mut off: Vec<_> = a.offloaded().collect();
        off.sort_by_key(|(user, _, _)| user.index());
        assert_eq!(off, vec![(u(0), s(0), j(1)), (u(2), s(1), j(0))]);
        assert_eq!(a.transmissions().len(), 2);
    }
}
