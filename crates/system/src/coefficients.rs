//! Per-user objective coefficients (Eq. 19).

use crate::scenario::UserSpec;
use mec_types::{BitsPerSecond, Hertz, LocalCost};
use serde::{Deserialize, Serialize};

/// The three per-user constants that make the offloading cost `V(X, F)`
/// separable (Eq. 19):
///
/// * `φ_u = λ_u·β_u^time·d_u / (t_u^local·W)` — uplink *time* cost weight,
/// * `ψ_u = λ_u·β_u^energy·d_u / (E_u^local·W)` — uplink *energy* cost
///   weight (multiplied by `p_u` in the objective),
/// * `η_u = λ_u·β_u^time·f_u^local` — execution cost weight, whose square
///   root drives the KKT allocation (Eq. 22).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserCoefficients {
    /// Uplink time-cost coefficient `φ_u`.
    pub phi: f64,
    /// Uplink energy-cost coefficient `ψ_u`.
    pub psi: f64,
    /// Execution-cost coefficient `η_u`.
    pub eta: f64,
    /// The constant gain term `λ_u·(β_u^time + β_u^energy)` this user adds
    /// to Eq. 24 when offloaded.
    pub gain_constant: f64,
    /// Fixed downlink cost `λ_u·β_u^time·(d_out/R_down)/t_local` paid
    /// whenever the user offloads (zero when the downlink is not modeled
    /// or the task returns no data) — the §III-A.2 extension.
    pub download_cost: f64,
}

impl UserCoefficients {
    /// Computes the coefficients for a user given its precomputed local
    /// cost, the subchannel width `W`, and an optional fixed downlink
    /// rate.
    pub fn compute(
        user: &UserSpec,
        local: &LocalCost,
        subchannel_width: Hertz,
        downlink_rate: Option<BitsPerSecond>,
    ) -> Self {
        let lambda = user.lambda.value();
        let beta_t = user.preferences.beta_time();
        let beta_e = user.preferences.beta_energy();
        let d = user.task.data().as_bits();
        let w = subchannel_width.as_hz();
        let download_cost = match downlink_rate {
            Some(rate) if user.task.output().as_bits() > 0.0 => {
                let t_down = user.task.output() / rate;
                lambda * beta_t * t_down.as_secs() / local.time.as_secs()
            }
            _ => 0.0,
        };
        Self {
            phi: lambda * beta_t * d / (local.time.as_secs() * w),
            psi: lambda * beta_e * d / (local.energy.as_joules() * w),
            eta: lambda * beta_t * user.device.cpu().as_hz(),
            gain_constant: lambda * (beta_t + beta_e),
            download_cost,
        }
    }
}

/// Structure-of-arrays view of the per-user constants the search hot
/// loops read: one flat `f64` column per derived quantity, indexed by
/// user, instead of gathering fields out of [`UserCoefficients`] structs.
///
/// The three columns are exactly the per-user constants `J*(X)` needs:
/// `√η_u` (KKT allocation, Eq. 22), `φ_u + ψ_u·p_u` (the Γ numerator,
/// Eq. 19), and `gain_constant − download_cost` (the benefit of
/// offloading `u`, Eq. 24). Building them once per scenario keeps the
/// per-proposal inner loops free of struct-field gathers and lets the
/// evaluators share one precomputation.
#[derive(Debug, Clone, PartialEq)]
pub struct CoefficientBlocks {
    /// `√η_u` per user.
    pub sqrt_eta: Vec<f64>,
    /// `φ_u + ψ_u·p_u` per user — the numerator of the Γ term.
    pub gamma_num: Vec<f64>,
    /// `gain_constant − download_cost` per user — the benefit of
    /// offloading.
    pub gain_const: Vec<f64>,
}

impl CoefficientBlocks {
    /// Packs per-user coefficient structs (paired with each user's linear
    /// transmit power in watts) into flat columns.
    pub fn pack<'c>(users: impl Iterator<Item = (&'c UserCoefficients, f64)>) -> Self {
        let (lo, _) = users.size_hint();
        let mut blocks = Self {
            sqrt_eta: Vec::with_capacity(lo),
            gamma_num: Vec::with_capacity(lo),
            gain_const: Vec::with_capacity(lo),
        };
        for (c, power) in users {
            blocks.sqrt_eta.push(c.eta.sqrt());
            blocks.gamma_num.push(c.phi + c.psi * power);
            blocks.gain_const.push(c.gain_constant - c.download_cost);
        }
        blocks
    }

    /// Number of users packed.
    pub fn len(&self) -> usize {
        self.gamma_num.len()
    }

    /// Whether the block store is empty.
    pub fn is_empty(&self) -> bool {
        self.gamma_num.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_types::{Bits, Cycles, DeviceProfile, ProviderPreference, Task, UserPreferences};

    fn spec(beta_time: f64, lambda: f64) -> UserSpec {
        UserSpec {
            task: Task::new(Bits::from_kilobytes(420.0), Cycles::from_mega(1000.0)).unwrap(),
            device: DeviceProfile::paper_default(),
            preferences: UserPreferences::new(beta_time).unwrap(),
            lambda: ProviderPreference::new(lambda).unwrap(),
        }
    }

    #[test]
    fn hand_computed_reference() {
        let user = spec(0.5, 1.0);
        let local = user.task.local_cost(&user.device);
        let w = Hertz::new(20.0e6 / 3.0);
        let c = UserCoefficients::compute(&user, &local, w, None);

        let d = 420.0 * 8192.0;
        // t_local = 1 s, E_local = 5 J.
        assert!((c.phi - 0.5 * d / (1.0 * w.as_hz())).abs() < 1e-12);
        assert!((c.psi - 0.5 * d / (5.0 * w.as_hz())).abs() < 1e-12);
        assert!((c.eta - 0.5 * 1.0e9).abs() < 1e-3);
        assert!((c.gain_constant - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coefficients_scale_linearly_with_lambda() {
        let full = spec(0.5, 1.0);
        let half = spec(0.5, 0.5);
        let local = full.task.local_cost(&full.device);
        let w = Hertz::new(1.0e6);
        let cf = UserCoefficients::compute(&full, &local, w, None);
        let ch = UserCoefficients::compute(&half, &local, w, None);
        assert!((ch.phi / cf.phi - 0.5).abs() < 1e-12);
        assert!((ch.psi / cf.psi - 0.5).abs() < 1e-12);
        assert!((ch.eta / cf.eta - 0.5).abs() < 1e-12);
        assert!((ch.gain_constant / cf.gain_constant - 0.5).abs() < 1e-12);
    }

    #[test]
    fn extreme_preferences_zero_out_one_side() {
        let local = spec(0.5, 1.0)
            .task
            .local_cost(&DeviceProfile::paper_default());
        let w = Hertz::new(1.0e6);

        let time_only = UserCoefficients::compute(&spec(1.0, 1.0), &local, w, None);
        assert!(time_only.psi == 0.0 && time_only.phi > 0.0 && time_only.eta > 0.0);

        let energy_only = UserCoefficients::compute(&spec(0.0, 1.0), &local, w, None);
        assert!(energy_only.phi == 0.0 && energy_only.eta == 0.0 && energy_only.psi > 0.0);

        // The gain constant is λ in both extremes (β's sum to 1).
        assert!((time_only.gain_constant - 1.0).abs() < 1e-12);
        assert!((energy_only.gain_constant - 1.0).abs() < 1e-12);
    }

    #[test]
    fn download_cost_reflects_output_and_rate() {
        use mec_types::Task;
        let mut user = spec(0.5, 1.0);
        user.task = Task::with_output(
            Bits::from_kilobytes(420.0),
            Cycles::from_mega(1000.0),
            Bits::new(1.0e6),
        )
        .unwrap();
        let local = user.task.local_cost(&user.device);
        let w = Hertz::new(1.0e6);
        // No downlink modeled -> zero cost.
        let c = UserCoefficients::compute(&user, &local, w, None);
        assert_eq!(c.download_cost, 0.0);
        // 1 Mbit at 10 Mbit/s = 0.1 s; t_local = 1 s; lambda*beta_t = 0.5.
        let c = UserCoefficients::compute(
            &user,
            &local,
            w,
            Some(mec_types::BitsPerSecond::new(10.0e6)),
        );
        assert!((c.download_cost - 0.05).abs() < 1e-12);
        // Zero-output tasks pay nothing even with a downlink.
        let plain = spec(0.5, 1.0);
        let lp = plain.task.local_cost(&plain.device);
        let c =
            UserCoefficients::compute(&plain, &lp, w, Some(mec_types::BitsPerSecond::new(10.0e6)));
        assert_eq!(c.download_cost, 0.0);
    }

    #[test]
    fn packed_blocks_match_per_user_structs() {
        let specs = [spec(0.5, 1.0), spec(1.0, 0.8), spec(0.2, 0.3)];
        let w = Hertz::new(1.0e6);
        let coeffs: Vec<UserCoefficients> = specs
            .iter()
            .map(|u| UserCoefficients::compute(u, &u.task.local_cost(&u.device), w, None))
            .collect();
        let powers = [0.01, 0.05, 0.1];
        let blocks = CoefficientBlocks::pack(coeffs.iter().zip(powers.iter().copied()));
        assert_eq!(blocks.len(), 3);
        assert!(!blocks.is_empty());
        for (u, (c, p)) in coeffs.iter().zip(powers).enumerate() {
            assert_eq!(blocks.sqrt_eta[u].to_bits(), c.eta.sqrt().to_bits());
            assert_eq!(blocks.gamma_num[u].to_bits(), (c.phi + c.psi * p).to_bits());
            assert_eq!(
                blocks.gain_const[u].to_bits(),
                (c.gain_constant - c.download_cost).to_bits()
            );
        }
    }

    #[test]
    fn wider_subchannels_reduce_uplink_cost_weights() {
        let user = spec(0.5, 1.0);
        let local = user.task.local_cost(&user.device);
        let narrow = UserCoefficients::compute(&user, &local, Hertz::new(1.0e6), None);
        let wide = UserCoefficients::compute(&user, &local, Hertz::new(2.0e6), None);
        assert!((narrow.phi / wide.phi - 2.0).abs() < 1e-12);
        assert!((narrow.psi / wide.psi - 2.0).abs() < 1e-12);
        // η is independent of the radio.
        assert_eq!(narrow.eta, wide.eta);
    }
}
