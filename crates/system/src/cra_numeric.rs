//! Numerical verification of the CRA closed form (the paper's Lemma).
//!
//! The paper derives `f*_us = f_s·√η_u / Σ√η_v` (Eq. 22) from the KKT
//! conditions and points to an external appendix for the proof. This
//! module *checks* that result computationally: it solves the same convex
//! program
//!
//! ```text
//! min Σ_u η_u / f_u    s.t.  Σ_u f_u ≤ f_s,  f_u > 0
//! ```
//!
//! with projected gradient descent over the capped simplex, with no
//! knowledge of the closed form. A property test asserts the two agree,
//! which is as close to a machine-checked proof of the Lemma as a
//! simulation codebase gets — and it gives downstream users an
//! allocation path for objective variants whose KKT system has no closed
//! form.

use crate::allocation::ResourceAllocation;
use crate::assignment::Assignment;
use crate::scenario::Scenario;
use mec_types::Error;

/// Options for the projected-gradient CRA solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericCraOptions {
    /// Maximum gradient iterations per server.
    pub max_iterations: usize,
    /// Convergence threshold on the max relative share change.
    pub tolerance: f64,
    /// Lower bound on any share as a fraction of capacity (keeps the
    /// objective differentiable; constraint (12e) requires `f > 0`).
    pub min_share_fraction: f64,
}

impl Default for NumericCraOptions {
    fn default() -> Self {
        Self {
            max_iterations: 50_000,
            tolerance: 1e-12,
            min_share_fraction: 1e-9,
        }
    }
}

/// Projects `v` onto the simplex `{x : x ≥ floor, Σx = total}`.
///
/// Standard sort-based Euclidean projection (Held–Wolfe–Crowder), shifted
/// by the floor.
fn project_capped_simplex(v: &[f64], total: f64, floor: f64) -> Vec<f64> {
    let n = v.len();
    let budget = total - floor * n as f64;
    debug_assert!(budget >= 0.0, "floors exceed the capacity");
    // Project (v - floor) onto the simplex of mass `budget`, then shift
    // back.
    let shifted: Vec<f64> = v.iter().map(|x| x - floor).collect();
    let mut sorted = shifted.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite shares"));
    let mut cumsum = 0.0;
    let mut rho = 0usize;
    let mut theta = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        cumsum += x;
        let candidate = (cumsum - budget) / (i as f64 + 1.0);
        if x - candidate > 0.0 {
            rho = i + 1;
            theta = candidate;
        }
    }
    debug_assert!(rho > 0);
    let _ = rho;
    shifted
        .iter()
        .map(|x| (x - theta).max(0.0) + floor)
        .collect()
}

/// Solves one server's CRA program numerically.
///
/// Returns the per-user shares in the same order as `etas`. Users with
/// `η = 0` end up at (or near) the floor — matching the closed form's
/// zero-share limit while keeping strictly positive shares.
///
/// # Panics
///
/// Panics if `etas` is empty, any `η` is negative/non-finite, or the
/// capacity is non-positive.
pub fn solve_server_numeric(etas: &[f64], capacity: f64, options: &NumericCraOptions) -> Vec<f64> {
    assert!(!etas.is_empty(), "no users to allocate to");
    assert!(capacity > 0.0 && capacity.is_finite());
    assert!(etas.iter().all(|e| e.is_finite() && *e >= 0.0));

    let n = etas.len();
    if etas.iter().all(|e| *e == 0.0) {
        return vec![capacity / n as f64; n];
    }
    let floor = options.min_share_fraction * capacity;
    // Start from an equal split.
    let mut f = vec![capacity / n as f64; n];
    // The objective is Σ η/f; its gradient is −η/f². Use a diminishing
    // step scaled so the first step moves a reasonable fraction of the
    // capacity.
    let grad_scale: f64 = etas
        .iter()
        .zip(&f)
        .map(|(e, fi)| (e / (fi * fi)).abs())
        .fold(0.0, f64::max)
        .max(1e-300);
    let base_step = 0.25 * capacity / grad_scale;

    for iter in 0..options.max_iterations {
        let step = base_step / (1.0 + iter as f64 * 0.01);
        let candidate: Vec<f64> = f
            .iter()
            .zip(etas)
            .map(|(fi, e)| fi + step * e / (fi * fi))
            .collect();
        let projected = project_capped_simplex(&candidate, capacity, floor);
        let max_delta = f
            .iter()
            .zip(&projected)
            .map(|(a, b)| (a - b).abs() / capacity)
            .fold(0.0, f64::max);
        f = projected;
        if max_delta < options.tolerance {
            break;
        }
    }
    f
}

/// Numerically computes the full allocation for a decision, server by
/// server — the gradient-based counterpart of
/// [`kkt_allocation`](crate::allocation::kkt_allocation).
///
/// # Errors
///
/// Returns [`Error::InfeasibleAssignment`] if the assignment does not
/// match the scenario.
pub fn numeric_allocation(
    scenario: &Scenario,
    x: &Assignment,
    options: &NumericCraOptions,
) -> Result<ResourceAllocation, Error> {
    x.verify_feasible(scenario)?;
    let mut shares = vec![0.0; scenario.num_users()];
    for s in scenario.server_ids() {
        let users = x.server_users(s);
        if users.is_empty() {
            continue;
        }
        let etas: Vec<f64> = users
            .iter()
            .map(|u| scenario.coefficients(*u).eta)
            .collect();
        let solved = solve_server_numeric(&etas, scenario.server(s).capacity().as_hz(), options);
        for (u, f) in users.iter().zip(solved) {
            shares[u.index()] = f;
        }
    }
    Ok(ResourceAllocation::from_shares(shares))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::kkt_allocation;
    use crate::scenario::UserSpec;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_types::{
        Bits, Cycles, DeviceProfile, Hertz, ProviderPreference, ServerId, ServerProfile,
        SubchannelId, Task, UserId, UserPreferences, Watts,
    };

    #[test]
    fn simplex_projection_properties() {
        let p = project_capped_simplex(&[3.0, 1.0, 0.5], 2.0, 0.1);
        assert!((p.iter().sum::<f64>() - 2.0).abs() < 1e-9);
        assert!(p.iter().all(|x| *x >= 0.1 - 1e-12));
        // A point already on the simplex projects to itself.
        let q = project_capped_simplex(&[1.0, 0.6, 0.4], 2.0, 0.1);
        for (a, b) in q.iter().zip([1.0, 0.6, 0.4]) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn equal_etas_converge_to_equal_split() {
        let f = solve_server_numeric(&[1.0, 1.0, 1.0, 1.0], 20.0e9, &NumericCraOptions::default());
        for fi in &f {
            assert!((fi - 5.0e9).abs() / 5.0e9 < 1e-4, "{fi}");
        }
    }

    #[test]
    fn numeric_matches_the_papers_closed_form() {
        // Heterogeneous etas: shares must follow the √η rule within
        // numerical tolerance — this is the Lemma check.
        let etas = [4.0e8, 1.0e8, 2.5e8, 9.0e8];
        let capacity = 20.0e9;
        let f = solve_server_numeric(&etas, capacity, &NumericCraOptions::default());
        let sum_sqrt: f64 = etas.iter().map(|e| e.sqrt()).sum();
        for (fi, e) in f.iter().zip(&etas) {
            let expected = capacity * e.sqrt() / sum_sqrt;
            assert!(
                (fi - expected).abs() / expected < 1e-3,
                "numeric {fi} vs closed-form {expected}"
            );
        }
    }

    #[test]
    fn all_zero_etas_fall_back_to_equal_split() {
        let f = solve_server_numeric(&[0.0, 0.0], 10.0, &NumericCraOptions::default());
        assert_eq!(f, vec![5.0, 5.0]);
    }

    #[test]
    fn full_allocation_agrees_with_kkt_on_a_scenario() {
        let mk_user = |beta: f64| UserSpec {
            task: Task::new(Bits::from_kilobytes(420.0), Cycles::from_mega(1000.0)).unwrap(),
            device: DeviceProfile::paper_default(),
            preferences: UserPreferences::new(beta).unwrap(),
            lambda: ProviderPreference::MAX,
        };
        let scenario = Scenario::new(
            vec![mk_user(0.9), mk_user(0.3), mk_user(0.6)],
            vec![ServerProfile::paper_default()],
            OfdmaConfig::new(Hertz::from_mega(20.0), 3).unwrap(),
            ChannelGains::uniform(3, 1, 3, 1e-10).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap();
        let mut x = Assignment::all_local(&scenario);
        for (i, u) in scenario.user_ids().enumerate() {
            x.assign(u, ServerId::new(0), SubchannelId::new(i)).unwrap();
        }
        let numeric = numeric_allocation(&scenario, &x, &NumericCraOptions::default()).unwrap();
        let closed = kkt_allocation(&scenario, &x);
        for u in scenario.user_ids() {
            let a = numeric.share(u).as_hz();
            let b = closed.share(u).as_hz();
            assert!(
                (a - b).abs() / b < 1e-3,
                "user {u}: numeric {a} vs closed {b}"
            );
        }
        numeric.verify(&scenario, &x).unwrap();
    }

    #[test]
    fn local_users_get_zero_in_numeric_allocation() {
        let scenario = Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(1000.0)).unwrap(); 2],
            vec![ServerProfile::paper_default()],
            OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap(),
            ChannelGains::uniform(2, 1, 2, 1e-10).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap();
        let mut x = Assignment::all_local(&scenario);
        x.assign(UserId::new(1), ServerId::new(0), SubchannelId::new(0))
            .unwrap();
        let numeric = numeric_allocation(&scenario, &x, &NumericCraOptions::default()).unwrap();
        assert_eq!(numeric.share(UserId::new(0)).as_hz(), 0.0);
        assert!(numeric.share(UserId::new(1)).as_hz() > 0.0);
    }

    #[test]
    #[should_panic(expected = "no users")]
    fn empty_server_panics() {
        let _ = solve_server_numeric(&[], 1.0, &NumericCraOptions::default());
    }
}
