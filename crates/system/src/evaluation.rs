//! Objective evaluation: the exact `J*(X)` of Eq. 24 and full per-user
//! reports.
//!
//! Two entry points with identical semantics but different costs:
//!
//! * [`Evaluator::objective`] — the closed-form `J*(X)` used inside search
//!   loops: `O(T·S)` for the SINR totals plus `O(T)` for the cost sums,
//!   with no allocations beyond one scratch vector.
//! * [`Evaluator::evaluate`] — materializes the KKT allocation and every
//!   per-user metric (times, energies, utilities) for reporting.
//!
//! The two agree to floating-point accuracy; a property test in the crate
//! enforces it.

use crate::allocation::{kkt_allocation, optimal_lambda_cost};
use crate::assignment::Assignment;
use crate::metrics::{SystemEvaluation, UserMetrics};
use crate::scenario::Scenario;
use mec_radio::{shannon_rate, Transmission};
use mec_types::{BitsPerSecond, Error, Seconds};

/// Reusable buffers for [`Evaluator::objective_with`]. Search loops that
/// evaluate thousands of candidates keep one of these alive to avoid
/// per-candidate allocations.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    transmissions: Vec<Transmission>,
    totals: Vec<f64>,
    sinrs: Vec<f64>,
}

/// Evaluates offloading decisions against one scenario.
#[derive(Debug, Clone, Copy)]
pub struct Evaluator<'a> {
    scenario: &'a Scenario,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator bound to a scenario.
    pub fn new(scenario: &'a Scenario) -> Self {
        Self { scenario }
    }

    /// The scenario this evaluator is bound to.
    pub fn scenario(&self) -> &'a Scenario {
        self.scenario
    }

    /// Computes the SINR of every transmission (Eq. 3) in `O(T·S)` using
    /// per-`(server, subchannel)` received-power totals.
    ///
    /// Correctness relies on constraint (12d): at most one user per
    /// `(s, j)`, so subtracting a user's own signal from the total received
    /// power at its server leaves exactly the inter-cell interference.
    pub fn sinrs(&self, transmissions: &[Transmission]) -> Vec<f64> {
        let sc = self.scenario;
        let num_servers = sc.num_servers();
        let num_sub = sc.num_subchannels();
        let powers = sc.tx_powers_watts();
        let gains = sc.gains();
        let noise = sc.noise().as_watts();

        // total[s][j] = Σ_{transmitters on j} p_k · h[k][s][j], on top of
        // any fixed external received power (the sharded solver's halo).
        let mut total = vec![0.0f64; num_servers * num_sub];
        if let Some(ext) = sc.external_rx() {
            // `ext` is subchannel-major (`[j·S + s]`); transpose in place.
            for (j, ext_row) in ext.chunks_exact(num_servers).enumerate() {
                for (s, &v) in ext_row.iter().enumerate() {
                    total[s * num_sub + j] = v;
                }
            }
        }
        for t in transmissions {
            let p = powers[t.user.index()];
            for s in sc.server_ids() {
                total[s.index() * num_sub + t.subchannel.index()] +=
                    p * gains.gain(t.user, s, t.subchannel);
            }
        }

        transmissions
            .iter()
            .map(|t| {
                let signal = powers[t.user.index()] * gains.gain(t.user, t.server, t.subchannel);
                let interference =
                    (total[t.server.index() * num_sub + t.subchannel.index()] - signal).max(0.0);
                signal / (interference + noise)
            })
            .collect()
    }

    /// The uplink cost `Γ(X) = Σ_{offloaded} (φ_u + ψ_u·p_u) / log2(1+γ_us)`
    /// for precomputed SINRs (aligned with `transmissions`).
    fn gamma_cost(&self, transmissions: &[Transmission], sinrs: &[f64]) -> f64 {
        transmissions
            .iter()
            .zip(sinrs)
            .map(|(t, sinr)| {
                let c = self.scenario.coefficients(t.user);
                let p = self.scenario.tx_powers_watts()[t.user.index()];
                (c.phi + c.psi * p) / (1.0 + sinr).log2()
            })
            .sum()
    }

    /// The exact optimal-value function `J*(X)` (Eq. 24):
    /// `Σ_{offloaded} λ_u(β_t+β_e) − Γ(X) − Λ(X, F*)`.
    ///
    /// May be `-∞` if an offloaded user has zero SINR (zero channel gain);
    /// such decisions are valid inputs that any maximizer simply rejects.
    pub fn objective(&self, x: &Assignment) -> f64 {
        self.objective_with(x, &mut EvalScratch::default())
    }

    /// Allocation-free variant of [`Evaluator::objective`] for search hot
    /// loops: all intermediate buffers live in `scratch` and are reused
    /// across calls. Semantically identical to `objective`.
    pub fn objective_with(&self, x: &Assignment, scratch: &mut EvalScratch) -> f64 {
        let sc = self.scenario;
        scratch.transmissions.clear();
        scratch
            .transmissions
            .extend(x.offloaded().map(|(u, s, j)| Transmission::new(u, s, j)));
        if scratch.transmissions.is_empty() {
            return 0.0;
        }

        // SINR totals, as in `sinrs` but into reused buffers laid out in
        // the same subchannel-major, lane-padded rows as the incremental
        // evaluator (`totals[j·stride + s]`) — index-only relative to the
        // server-major variant, so the arithmetic is unchanged.
        let num_sub = sc.num_subchannels();
        let stride = crate::simd::padded_len(sc.num_servers());
        let powers = sc.tx_powers_watts();
        let gains = sc.gains();
        let noise = sc.noise().as_watts();
        scratch.totals.clear();
        scratch.totals.resize(stride * num_sub, 0.0);
        if let Some(ext) = sc.external_rx() {
            // Seed each subchannel row with the frozen external power
            // (padding lanes stay zero).
            let num_servers = sc.num_servers();
            for (row, ext_row) in scratch
                .totals
                .chunks_exact_mut(stride)
                .zip(ext.chunks_exact(num_servers))
            {
                row[..num_servers].copy_from_slice(ext_row);
            }
        }
        for t in &scratch.transmissions {
            let p = powers[t.user.index()];
            for s in sc.server_ids() {
                scratch.totals[t.subchannel.index() * stride + s.index()] +=
                    p * gains.gain(t.user, s, t.subchannel);
            }
        }
        scratch.sinrs.clear();
        scratch.sinrs.extend(scratch.transmissions.iter().map(|t| {
            let signal = powers[t.user.index()] * gains.gain(t.user, t.server, t.subchannel);
            let interference = (scratch.totals[t.subchannel.index() * stride + t.server.index()]
                - signal)
                .max(0.0);
            signal / (interference + noise)
        }));

        let gain: f64 = scratch
            .transmissions
            .iter()
            .map(|t| {
                let c = sc.coefficients(t.user);
                c.gain_constant - c.download_cost
            })
            .sum();
        gain - self.gamma_cost(&scratch.transmissions, &scratch.sinrs) - optimal_lambda_cost(sc, x)
    }

    /// Full evaluation: KKT allocation, per-user metrics, and the Eq. 16
    /// decomposition of the system utility.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InfeasibleAssignment`] if the assignment's
    /// dimensions do not match the scenario.
    pub fn evaluate(&self, x: &Assignment) -> Result<SystemEvaluation, Error> {
        x.verify_feasible(self.scenario)?;
        let sc = self.scenario;
        let transmissions = x.transmissions();
        let sinrs = self.sinrs(&transmissions);
        let allocation = kkt_allocation(sc, x);
        let width = sc.ofdma().subchannel_width();

        // Index SINR by user for the per-user pass.
        let mut sinr_of = vec![0.0f64; sc.num_users()];
        for (t, sinr) in transmissions.iter().zip(&sinrs) {
            sinr_of[t.user.index()] = *sinr;
        }

        let mut users = Vec::with_capacity(sc.num_users());
        let mut system_utility = 0.0;
        for u in sc.user_ids() {
            let spec = sc.user(u);
            let local = sc.local_cost(u);
            let m = if x.is_offloaded(u) {
                let sinr = sinr_of[u.index()];
                let rate = shannon_rate(width, sinr);
                let upload_time = spec.task.data() / rate;
                let download_time = match sc.downlink() {
                    Some(down_rate) if spec.task.output().as_bits() > 0.0 => {
                        spec.task.output() / down_rate
                    }
                    _ => Seconds::ZERO,
                };
                let execute_time = spec.task.workload() / allocation.share(u);
                let completion_time = upload_time + execute_time + download_time;
                let energy = spec.device.tx_power_watts() * upload_time;
                let utility = spec.preferences.beta_time()
                    * (local.time - completion_time).as_secs()
                    / local.time.as_secs()
                    + spec.preferences.beta_energy() * (local.energy - energy).as_joules()
                        / local.energy.as_joules();
                UserMetrics {
                    offloaded: true,
                    sinr,
                    rate,
                    upload_time,
                    download_time,
                    execute_time,
                    completion_time,
                    energy,
                    utility,
                }
            } else {
                UserMetrics {
                    offloaded: false,
                    sinr: 0.0,
                    rate: BitsPerSecond::ZERO,
                    upload_time: Seconds::ZERO,
                    download_time: Seconds::ZERO,
                    execute_time: local.time,
                    completion_time: local.time,
                    energy: local.energy,
                    utility: 0.0,
                }
            };
            system_utility += spec.lambda.value() * m.utility;
            users.push(m);
        }

        let gain_constant: f64 = transmissions
            .iter()
            .map(|t| {
                let c = sc.coefficients(t.user);
                c.gain_constant - c.download_cost
            })
            .sum();
        Ok(SystemEvaluation {
            system_utility,
            gain_constant,
            gamma_cost: self.gamma_cost(&transmissions, &sinrs),
            lambda_cost: optimal_lambda_cost(sc, x),
            num_offloaded: transmissions.len(),
            users,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::UserSpec;
    use mec_radio::{compute_sinrs, ChannelGains, OfdmaConfig};
    use mec_types::{
        Bits, Cycles, DeviceProfile, Hertz, Joules, ProviderPreference, ServerId, ServerProfile,
        SubchannelId, Task, UserId, UserPreferences, Watts,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn user(workload_mega: f64) -> UserSpec {
        UserSpec {
            task: Task::new(
                Bits::from_kilobytes(420.0),
                Cycles::from_mega(workload_mega),
            )
            .unwrap(),
            device: DeviceProfile::paper_default(),
            preferences: UserPreferences::balanced(),
            lambda: ProviderPreference::MAX,
        }
    }

    fn scenario(num_users: usize, num_servers: usize, num_sub: usize, gain: f64) -> Scenario {
        Scenario::new(
            vec![user(1000.0); num_users],
            vec![ServerProfile::paper_default(); num_servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), num_sub).unwrap(),
            ChannelGains::uniform(num_users, num_servers, num_sub, gain).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap()
    }

    fn random_scenario(
        seed: u64,
        num_users: usize,
        num_servers: usize,
        num_sub: usize,
    ) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let gains = ChannelGains::from_fn(num_users, num_servers, num_sub, |_, _, _| {
            10.0_f64.powf(rng.gen_range(-13.0..-9.0))
        })
        .unwrap();
        Scenario::new(
            vec![user(2000.0); num_users],
            vec![ServerProfile::paper_default(); num_servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), num_sub).unwrap(),
            gains,
            Watts::new(1e-13),
        )
        .unwrap()
    }

    fn random_assignment(scenario: &Scenario, seed: u64) -> Assignment {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Assignment::all_local(scenario);
        for u in scenario.user_ids() {
            if rng.gen_bool(0.7) {
                let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
                if let Some(j) = x.free_subchannel(s) {
                    x.assign(u, s, j).unwrap();
                }
            }
        }
        x
    }

    #[test]
    fn all_local_has_zero_objective() {
        let sc = scenario(4, 2, 2, 1e-10);
        let x = Assignment::all_local(&sc);
        let ev = Evaluator::new(&sc);
        assert_eq!(ev.objective(&x), 0.0);
        let full = ev.evaluate(&x).unwrap();
        assert_eq!(full.system_utility, 0.0);
        assert_eq!(full.num_offloaded, 0);
        // Local users pay the local cost.
        assert!((full.users[0].completion_time.as_secs() - 1.0).abs() < 1e-12);
        assert!((full.users[0].energy.as_joules() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fast_sinr_matches_reference_implementation() {
        for seed in 0..5 {
            let sc = random_scenario(seed, 8, 3, 3);
            let x = random_assignment(&sc, seed + 100);
            let txs = x.transmissions();
            let fast = Evaluator::new(&sc).sinrs(&txs);
            let slow = compute_sinrs(
                sc.gains(),
                sc.tx_powers_watts(),
                sc.noise().as_watts(),
                &txs,
            );
            assert_eq!(fast.len(), slow.len());
            for (f, s) in fast.iter().zip(&slow) {
                assert!((f - s).abs() / s.max(1e-300) < 1e-9, "fast {f} vs slow {s}");
            }
        }
    }

    #[test]
    fn closed_form_objective_matches_direct_weighted_utility() {
        for seed in 0..8 {
            let sc = random_scenario(seed, 10, 3, 4);
            let x = random_assignment(&sc, seed + 50);
            let ev = Evaluator::new(&sc);
            let closed = ev.objective(&x);
            let direct = ev.evaluate(&x).unwrap().system_utility;
            assert!(
                (closed - direct).abs() < 1e-9 * direct.abs().max(1.0),
                "seed {seed}: closed {closed} vs direct {direct}"
            );
        }
    }

    #[test]
    fn eq16_decomposition_reconstructs_utility() {
        let sc = random_scenario(3, 6, 3, 2);
        let x = random_assignment(&sc, 9);
        let full = Evaluator::new(&sc).evaluate(&x).unwrap();
        let reconstructed = full.gain_constant - full.gamma_cost - full.lambda_cost;
        assert!((reconstructed - full.system_utility).abs() < 1e-9);
    }

    #[test]
    fn good_channel_offloading_beats_local() {
        // Clean, strong channel; a single user offloading to an empty
        // 20 GHz server should gain on both axes.
        let sc = scenario(1, 1, 1, 1e-8);
        let mut x = Assignment::all_local(&sc);
        x.assign(UserId::new(0), ServerId::new(0), SubchannelId::new(0))
            .unwrap();
        let ev = Evaluator::new(&sc);
        let full = ev.evaluate(&x).unwrap();
        assert!(full.system_utility > 0.0);
        let m = &full.users[0];
        assert!(m.offloaded);
        assert!(
            m.completion_time < Seconds::new(1.0),
            "beats 1 s local time"
        );
        assert!(m.energy < Joules::new(5.0), "beats 5 J local energy");
        assert!(m.utility > 0.0);
    }

    #[test]
    fn terrible_channel_makes_offloading_lose() {
        let sc = scenario(1, 1, 1, 1e-16);
        let mut x = Assignment::all_local(&sc);
        x.assign(UserId::new(0), ServerId::new(0), SubchannelId::new(0))
            .unwrap();
        let ev = Evaluator::new(&sc);
        assert!(ev.objective(&x) < 0.0);
    }

    #[test]
    fn interference_reduces_objective() {
        // Two users on the same subchannel in different cells interfere;
        // moving one to another subchannel must improve the objective.
        let sc = scenario(2, 2, 2, 1e-10);
        let ev = Evaluator::new(&sc);
        let mut clash = Assignment::all_local(&sc);
        clash
            .assign(UserId::new(0), ServerId::new(0), SubchannelId::new(0))
            .unwrap();
        clash
            .assign(UserId::new(1), ServerId::new(1), SubchannelId::new(0))
            .unwrap();
        let mut clean = Assignment::all_local(&sc);
        clean
            .assign(UserId::new(0), ServerId::new(0), SubchannelId::new(0))
            .unwrap();
        clean
            .assign(UserId::new(1), ServerId::new(1), SubchannelId::new(1))
            .unwrap();
        assert!(ev.objective(&clean) > ev.objective(&clash));
    }

    #[test]
    fn server_sharing_splits_compute() {
        // Two identical users on one server each get half the capacity.
        let sc = scenario(2, 1, 2, 1e-9);
        let mut x = Assignment::all_local(&sc);
        x.assign(UserId::new(0), ServerId::new(0), SubchannelId::new(0))
            .unwrap();
        x.assign(UserId::new(1), ServerId::new(0), SubchannelId::new(1))
            .unwrap();
        let full = Evaluator::new(&sc).evaluate(&x).unwrap();
        // w = 1e9 cycles on 10 GHz share = 0.1 s each.
        for m in &full.users {
            assert!((m.execute_time.as_secs() - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn scratch_objective_equals_allocating_objective() {
        let mut scratch = crate::evaluation::EvalScratch::default();
        for seed in 0..6 {
            let sc = random_scenario(seed, 9, 3, 3);
            let ev = Evaluator::new(&sc);
            for variant in 0..4 {
                let x = random_assignment(&sc, seed * 10 + variant);
                let a = ev.objective(&x);
                let b = ev.objective_with(&x, &mut scratch);
                assert_eq!(a, b, "seed {seed} variant {variant}");
            }
        }
    }

    #[test]
    fn downlink_extension_stays_consistent() {
        // Build a scenario whose tasks return 1 Mbit of results over a
        // 50 Mbit/s downlink; the closed form and the direct evaluation
        // must still agree, and utilities must drop vs the no-downlink
        // case.
        let mk = |downlink: bool| -> Scenario {
            let task = mec_types::Task::with_output(
                Bits::from_kilobytes(420.0),
                Cycles::from_mega(2000.0),
                Bits::new(1.0e6),
            )
            .unwrap();
            let spec = UserSpec {
                task,
                device: DeviceProfile::paper_default(),
                preferences: UserPreferences::balanced(),
                lambda: ProviderPreference::MAX,
            };
            let sc = Scenario::new(
                vec![spec; 3],
                vec![ServerProfile::paper_default(); 2],
                OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap(),
                ChannelGains::uniform(3, 2, 2, 1e-10).unwrap(),
                Watts::new(1e-13),
            )
            .unwrap();
            if downlink {
                sc.with_downlink(mec_types::BitsPerSecond::new(50.0e6))
                    .unwrap()
            } else {
                sc
            }
        };
        let with = mk(true);
        let without = mk(false);
        let mut x = Assignment::all_local(&with);
        x.assign(UserId::new(0), ServerId::new(0), SubchannelId::new(0))
            .unwrap();
        x.assign(UserId::new(1), ServerId::new(1), SubchannelId::new(1))
            .unwrap();

        let ev_with = Evaluator::new(&with);
        let closed = ev_with.objective(&x);
        let full = ev_with.evaluate(&x).unwrap();
        assert!((closed - full.system_utility).abs() < 1e-9);
        // Per-user download time = 1 Mbit / 50 Mbit/s = 0.02 s.
        for m in full.users.iter().filter(|m| m.offloaded) {
            assert!((m.download_time.as_secs() - 0.02).abs() < 1e-12);
            assert!(m.completion_time >= m.upload_time + m.execute_time);
        }
        // Modeling the downlink can only lower the utility.
        let baseline = Evaluator::new(&without).objective(&x);
        assert!(closed < baseline);
    }

    #[test]
    fn external_interference_lowers_objective_and_stays_consistent() {
        let sc = random_scenario(4, 8, 3, 2);
        let x = random_assignment(&sc, 44);
        assert!(x.num_offloaded() > 0);
        let base = Evaluator::new(&sc).objective(&x);
        // A zero external field is exactly a no-op.
        let mut zero = sc.clone();
        zero.set_external_rx(Some(vec![0.0; 2 * 3])).unwrap();
        assert_eq!(Evaluator::new(&zero).objective(&x), base);
        let zero_sinrs = Evaluator::new(&zero).sinrs(&x.transmissions());
        let base_sinrs = Evaluator::new(&sc).sinrs(&x.transmissions());
        assert_eq!(zero_sinrs, base_sinrs);
        // A strong external field strictly lowers the objective, and the
        // closed form still matches the full evaluation.
        let mut noisy = sc.clone();
        noisy.set_external_rx(Some(vec![1e-11; 2 * 3])).unwrap();
        let ev = Evaluator::new(&noisy);
        let closed = ev.objective(&x);
        assert!(closed < base);
        let direct = ev.evaluate(&x).unwrap().system_utility;
        assert!((closed - direct).abs() < 1e-9 * direct.abs().max(1.0));
    }

    #[test]
    fn downlink_rejects_bad_rates() {
        let sc = scenario(2, 2, 2, 1e-10);
        assert!(sc
            .clone()
            .with_downlink(mec_types::BitsPerSecond::new(0.0))
            .is_err());
        assert!(sc
            .clone()
            .with_downlink(mec_types::BitsPerSecond::new(-5.0))
            .is_err());
        assert!(sc
            .with_downlink(mec_types::BitsPerSecond::new(f64::NAN))
            .is_err());
    }

    #[test]
    fn evaluate_rejects_mismatched_dimensions() {
        let sc = scenario(2, 2, 2, 1e-10);
        let wrong = Assignment::with_dims(3, 2, 2);
        assert!(Evaluator::new(&sc).evaluate(&wrong).is_err());
    }
}
