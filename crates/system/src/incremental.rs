//! Incremental (delta) evaluation of `J*(X)` for search hot loops.
//!
//! [`Evaluator::objective_with`] recomputes the whole objective from
//! scratch: `O(T·S)` for the received-power totals plus `O(T)` for the
//! cost sums, for every candidate. But a neighborhood move touches at
//! most four `(server, subchannel)` slots, and `J*(X)` decomposes into
//! sums whose terms depend only on local state:
//!
//! * the benefit sum `Σ (gain_u − download_u)` — `O(1)` per join/leave;
//! * the execution cost `Λ = Σ_s (Σ_{u∈U_s} √η_u)²/f_s` — `O(1)` per
//!   affected server;
//! * the uplink cost `Γ = Σ_u (φ_u + ψ_u·p_u)/log2(1+γ_u)` — a user's
//!   SINR depends only on the totals `T[s][j] = Σ_{k on j} p_k·h[k][s][j]`
//!   of its own subchannel, so a membership change on subchannel `j`
//!   invalidates exactly the Γ terms of users transmitting on `j`.
//!
//! [`IncrementalObjective`] keeps all of that as persistent state and
//! exposes [`apply`](IncrementalObjective::apply) /
//! [`undo`](IncrementalObjective::undo): a proposal costs
//! `O(S · |affected subchannels|)` instead of `O(T·S)`, with no
//! allocation after warm-up. [`MoveDesc`] is the compact move language
//! the kernels speak — at most four primitive assign/release operations.
//!
//! ## Memory layout
//!
//! All per-`(server, subchannel)` state is stored as structure-of-arrays
//! blocks whose server dimension is padded to a multiple of
//! [`simd::LANES`]: the weighted gains `p_u·h[u][·][j]` as one contiguous
//! lane-padded row per `(user, subchannel)`, the received-power totals as
//! one row per subchannel. Every row sweep then runs through the
//! `chunks_exact`-based kernels of [`crate::simd`], which are
//! bit-identical to the scalar loops they replace (per-slot arithmetic is
//! independent across servers). Per-user constants live in flat
//! [`CoefficientBlocks`] columns instead of per-user structs.
//!
//! ## Speculative scoring
//!
//! [`score`](IncrementalObjective::score) evaluates a candidate move
//! *without mutating anything*: it replays exactly the floating-point
//! operations `apply` would perform, on local copies of the scalar sums
//! and a scratch totals row, and returns the candidate objective —
//! bit-identical to `apply` + [`current`](IncrementalObjective::current).
//! Search loops score first and only `apply`+`commit` accepted moves, so
//! a rejected proposal costs pure arithmetic: no assignment mutation, no
//! journaling, no undo. This is the batched-proposal fast path of the
//! TTSA/tempering/local-search/hJTORA engines.
//!
//! ## Exactness and drift
//!
//! `undo` restores state *bit-exactly*. Expensive per-slot refreshes
//! (totals, fresh Γ terms) are write-behind: buffered as new values in
//! the move log, flushed into the persistent arrays only on commit, so
//! a reject simply drops them. The few eager writes (retiring a moved
//! user's Γ term, its cached signal, the server `Σ√η` sums, the mutated
//! assignment) journal their old values and are replayed in reverse;
//! scalar sums restore from snapshots. Rejected proposals therefore
//! leave no trace. Accepted moves update the sums in place, which
//! accumulates floating-point drift relative to a fresh evaluation — on
//! the order of an ulp per accepted move. Callers bound it by calling
//! [`resync`](IncrementalObjective::resync) periodically (the TTSA and
//! local-search loops do so every 4096 proposals); the property suite in
//! `tests/soa_props.rs` pins the drift below `1e-9` relative and the
//! score/apply deltas bit-exact against each other.

use crate::assignment::Assignment;
use crate::coefficients::CoefficientBlocks;
use crate::scenario::Scenario;
use crate::simd;
use mec_types::{Error, ServerId, SubchannelId, UserId};

/// One primitive mutation of an [`Assignment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimOp {
    /// Attach `user` (currently local) to the free slot `(server, subchannel)`.
    Assign {
        /// The user to attach.
        user: UserId,
        /// Target server.
        server: ServerId,
        /// Target subchannel.
        subchannel: SubchannelId,
    },
    /// Release `user` (currently offloaded) back to local execution.
    Release {
        /// The user to release.
        user: UserId,
    },
}

/// The most primitive operations any neighborhood move decomposes into
/// (a swap of two offloaded users: two releases plus two assigns).
pub const MAX_MOVE_OPS: usize = 4;

/// A compact, allocation-free description of one neighborhood move: a
/// sequence of at most [`MAX_MOVE_OPS`] primitive operations that is
/// valid when applied in order against the assignment it was built for.
///
/// Constructors take the current assignment so the op sequence respects
/// the mid-sequence invariants (`Assign` targets a free slot and a local
/// user, `Release` targets an offloaded user).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MoveDesc {
    ops: [Option<PrimOp>; MAX_MOVE_OPS],
    len: u8,
}

impl MoveDesc {
    /// The empty move (e.g. a swap of two local users).
    pub fn noop() -> Self {
        Self::default()
    }

    /// Appends a primitive op.
    ///
    /// # Panics
    ///
    /// Panics if the move already holds [`MAX_MOVE_OPS`] ops.
    pub fn push(&mut self, op: PrimOp) {
        let i = self.len as usize;
        assert!(i < MAX_MOVE_OPS, "a move holds at most {MAX_MOVE_OPS} ops");
        self.ops[i] = Some(op);
        self.len += 1;
    }

    /// The ops, in application order.
    pub fn ops(&self) -> impl Iterator<Item = PrimOp> + '_ {
        self.ops
            .iter()
            .take(self.len as usize)
            .map(|op| op.expect("ops below len are set"))
    }

    /// Number of primitive ops.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the move changes nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the move changes nothing (alias of [`is_empty`](Self::is_empty)).
    pub fn is_noop(&self) -> bool {
        self.is_empty()
    }

    /// Moves `user` to `target` (`None` = back to local execution),
    /// assuming the target slot is free in `x`.
    pub fn relocate(
        x: &Assignment,
        user: UserId,
        target: Option<(ServerId, SubchannelId)>,
    ) -> Self {
        let mut mv = Self::noop();
        if x.slot(user) == target {
            return mv;
        }
        if x.is_offloaded(user) {
            mv.push(PrimOp::Release { user });
        }
        if let Some((server, subchannel)) = target {
            mv.push(PrimOp::Assign {
                user,
                server,
                subchannel,
            });
        }
        mv
    }

    /// Moves `user` to `(server, subchannel)`, evicting the slot's current
    /// occupant (if any) to local execution — the kernel's realization of
    /// Algorithm 2's "allocate one randomly if none are free".
    pub fn relocate_evicting(
        x: &Assignment,
        user: UserId,
        server: ServerId,
        subchannel: SubchannelId,
    ) -> Self {
        let mut mv = Self::noop();
        if x.slot(user) == Some((server, subchannel)) {
            return mv;
        }
        if let Some(victim) = x.occupant(server, subchannel) {
            mv.push(PrimOp::Release { user: victim });
        }
        if x.is_offloaded(user) {
            mv.push(PrimOp::Release { user });
        }
        mv.push(PrimOp::Assign {
            user,
            server,
            subchannel,
        });
        mv
    }

    /// Exchanges the slots of `a` and `b` (either may be local), matching
    /// [`Assignment::swap`].
    pub fn swap(x: &Assignment, a: UserId, b: UserId) -> Self {
        let mut mv = Self::noop();
        if a == b {
            return mv;
        }
        let slot_a = x.slot(a);
        let slot_b = x.slot(b);
        if slot_a.is_none() && slot_b.is_none() {
            return mv;
        }
        if slot_a.is_some() {
            mv.push(PrimOp::Release { user: a });
        }
        if slot_b.is_some() {
            mv.push(PrimOp::Release { user: b });
        }
        if let Some((server, subchannel)) = slot_b {
            mv.push(PrimOp::Assign {
                user: a,
                server,
                subchannel,
            });
        }
        if let Some((server, subchannel)) = slot_a {
            mv.push(PrimOp::Assign {
                user: b,
                server,
                subchannel,
            });
        }
        mv
    }

    /// Applies the move to a plain assignment (no incremental state).
    ///
    /// # Errors
    ///
    /// Fails if an op violates feasibility — i.e. the move was built for a
    /// different assignment. The assignment may be partially mutated on
    /// error.
    pub fn apply_to(&self, x: &mut Assignment) -> Result<(), Error> {
        for op in self.ops() {
            match op {
                PrimOp::Assign {
                    user,
                    server,
                    subchannel,
                } => x.assign(user, server, subchannel)?,
                PrimOp::Release { user } => {
                    if x.release(user).is_none() {
                        return Err(Error::InfeasibleAssignment(format!(
                            "release of local user {user} in a MoveDesc"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Log of the last [`IncrementalObjective::apply`]: totals and Γ writes are
/// buffered here (write-behind) and only flushed into the persistent arrays
/// by [`commit`](IncrementalObjective::commit), so
/// [`undo`](IncrementalObjective::undo) merely drops them — a rejected
/// proposal never touches the big arrays at all. The scalar sums and the
/// per-server Λ state *are* updated eagerly (they feed
/// [`current`](IncrementalObjective::current)), so their old values are
/// snapshotted for a bit-exact rollback. Buffers are reused across moves, so
/// steady-state applies do not allocate.
#[derive(Debug, Clone, Default)]
struct MoveLog {
    valid: bool,
    /// New values of every totals row the move rewrites — one group of
    /// `num_servers` values per entry of `touched_subs`, in the same
    /// order — flushed on commit.
    new_totals: Vec<f64>,
    /// Subchannel index of each buffered totals row in `new_totals`.
    touched_subs: Vec<usize>,
    /// `(user, new Γ term, new non-finite flag)` of every Γ term the move
    /// writes, flushed on commit.
    new_gammas: Vec<(usize, f64, bool)>,
    /// `(user, old Γ term, old non-finite flag)` of the moved users whose
    /// Γ terms were retired eagerly, replayed in reverse on undo.
    old_gammas: Vec<(usize, f64, bool)>,
    /// `(user, old cached signal)` of the moved users whose `p·h` cache was
    /// rewritten eagerly, replayed in reverse on undo.
    old_signals: Vec<(usize, f64)>,
    /// `(server, old Σ√η, old user count)` of every server sum written
    /// eagerly, replayed in reverse on undo.
    servers: Vec<(usize, f64, u32)>,
    /// Inverse assignment ops, in undo order.
    inverse: MoveDesc,
    gain_sum: f64,
    gamma_sum: f64,
    lambda_sum: f64,
    nonfinite: u32,
    num_offloaded: usize,
}

/// Persistent incremental state for `J*(X)` (Eq. 24) over one scenario.
///
/// Owns the current [`Assignment`] and keeps the per-`(s,j)` received-power
/// totals, per-user cached Γ terms, per-server `Σ√η` sums and the benefit
/// sum synchronized with it under [`apply`](Self::apply) /
/// [`undo`](Self::undo).
///
/// # Example
///
/// ```
/// use mec_radio::{ChannelGains, OfdmaConfig};
/// use mec_system::{Assignment, Evaluator, IncrementalObjective, MoveDesc, Scenario, UserSpec};
/// use mec_types::*;
///
/// # fn main() -> std::result::Result<(), mec_types::Error> {
/// let scenario = Scenario::new(
///     vec![UserSpec::paper_default_with_workload(Cycles::from_mega(1000.0))?; 2],
///     vec![ServerProfile::paper_default(); 1],
///     OfdmaConfig::new(Hertz::from_mega(20.0), 2)?,
///     ChannelGains::uniform(2, 1, 2, 1e-10)?,
///     Watts::new(1e-13),
/// )?;
/// let mut inc = IncrementalObjective::new(&scenario, Assignment::all_local(&scenario))?;
/// assert_eq!(inc.current(), 0.0);
///
/// let mv = MoveDesc::relocate(
///     inc.assignment(),
///     UserId::new(0),
///     Some((ServerId::new(0), SubchannelId::new(0))),
/// );
/// let delta = inc.apply(&mv);
/// assert!((inc.current() - delta).abs() < 1e-12);
/// assert!((inc.current() - Evaluator::new(&scenario).objective(inc.assignment())).abs() < 1e-12);
/// inc.undo();
/// assert_eq!(inc.current(), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalObjective<'a> {
    scenario: &'a Scenario,
    x: Assignment,
    num_sub: usize,
    /// The server-row stride: `num_servers` padded up to a multiple of
    /// [`simd::LANES`], so every per-server row is `chunks_exact`-clean.
    stride: usize,
    noise: f64,
    /// Per-user constants (`√η`, `φ+ψ·p`, net gain), hoisted out of the
    /// hot loop as flat SoA columns.
    coeffs: CoefficientBlocks,
    capacity: Vec<f64>,
    /// Weighted gains `p_u·h[u][s][j]`, laid out `[u][j][s]` with the
    /// server dimension padded to `stride` (padding lanes hold `0.0`), so
    /// the fused totals pass sweeps one lane-aligned row per op. When the
    /// gain tensor is subchannel-shared the `j` dimension is collapsed:
    /// one `[u][s]` row per user, shared by every subchannel
    /// (`wgain_shared`), cutting the dominant allocation by `N×`.
    wgain: Vec<f64>,
    /// Whether `wgain` stores one row per user (subchannel-shared gains)
    /// instead of one per `(user, subchannel)`.
    wgain_shared: bool,
    // Persistent sums.
    /// `totals[j·stride + s] = Σ_{k transmitting on j} p_k·h[k][s][j]` —
    /// per-subchannel lane-padded rows, contiguous for the hot loops.
    totals: Vec<f64>,
    /// Cached Γ term per user (`0.0` for local users and non-finite terms).
    gamma_of: Vec<f64>,
    /// Cached received signal `p_u·h[u][s][j]` of each user at its current
    /// slot (stale while local — only read for slot occupants).
    signal_of: Vec<f64>,
    /// Whether a user's Γ term is non-finite (zero SINR ⇒ `+∞` cost).
    gamma_bad: Vec<bool>,
    /// `Σ_{u∈U_s} √η_u` per server.
    sum_sqrt_eta: Vec<f64>,
    users_on: Vec<u32>,
    gain_sum: f64,
    gamma_sum: f64,
    lambda_sum: f64,
    nonfinite: u32,
    num_offloaded: usize,
    log: MoveLog,
    /// Scratch totals rows for [`score`](Self::score) — reused across
    /// calls so speculative scoring never allocates.
    score_totals: Vec<f64>,
    /// Scratch `(Γ numerator, SINR)` pairs for [`score`](Self::score)'s
    /// split Γ fold — gathered call-free, consumed by the `log2` pass.
    score_fold: Vec<(f64, f64)>,
}

impl<'a> IncrementalObjective<'a> {
    /// Builds the incremental state for `x` in `O(T·S)` — the same cost as
    /// one full evaluation.
    ///
    /// # Errors
    ///
    /// Fails if `x` does not fit the scenario's geometry.
    pub fn new(scenario: &'a Scenario, x: Assignment) -> Result<Self, Error> {
        x.verify_feasible(scenario)?;
        let users = scenario.num_users();
        let servers = scenario.num_servers();
        let num_sub = scenario.num_subchannels();
        let stride = simd::padded_len(servers);
        let powers = scenario.tx_powers_watts();
        let gains = scenario.gains();
        // Repack the gain tensor into lane-padded SoA rows (padding lanes
        // stay 0.0 and never contribute). Subchannel-shared tensors get
        // one `[u][·]` row per user instead of one per `(u, j)` — same
        // values, `N×` less memory, which is what keeps U=100k instances
        // affordable.
        let wgain_shared = gains.is_subchannel_shared();
        let rows_per_user = if wgain_shared { 1 } else { num_sub };
        let mut wgain = vec![0.0; users * rows_per_user * stride];
        for u in 0..users {
            for j in 0..rows_per_user {
                for s in 0..servers {
                    wgain[(u * rows_per_user + j) * stride + s] = powers[u]
                        * gains.gain(UserId::new(u), ServerId::new(s), SubchannelId::new(j));
                }
            }
        }
        let mut inc = Self {
            scenario,
            x,
            num_sub,
            stride,
            noise: scenario.noise().as_watts(),
            coeffs: CoefficientBlocks::pack(
                (0..users).map(|u| (scenario.coefficients(UserId::new(u)), powers[u])),
            ),
            capacity: (0..servers)
                .map(|s| scenario.server(ServerId::new(s)).capacity().as_hz())
                .collect(),
            wgain,
            wgain_shared,
            totals: vec![0.0; stride * num_sub],
            gamma_of: vec![0.0; users],
            signal_of: vec![0.0; users],
            gamma_bad: vec![false; users],
            sum_sqrt_eta: vec![0.0; servers],
            users_on: vec![0; servers],
            gain_sum: 0.0,
            gamma_sum: 0.0,
            lambda_sum: 0.0,
            nonfinite: 0,
            num_offloaded: 0,
            log: MoveLog::with_capacity(servers, stride),
            score_totals: Vec::with_capacity(MAX_MOVE_OPS * stride),
            score_fold: Vec::with_capacity(stride),
        };
        inc.resync();
        Ok(inc)
    }

    /// The scenario this state is bound to.
    pub fn scenario(&self) -> &'a Scenario {
        self.scenario
    }

    /// The current decision.
    pub fn assignment(&self) -> &Assignment {
        &self.x
    }

    /// Consumes the state, returning the current decision.
    pub fn into_assignment(self) -> Assignment {
        self.x
    }

    /// Replaces the current decision wholesale and rebuilds every
    /// maintained sum from it — the replica restore path of the tempering
    /// engine (elite migration, state exchange). Costs one full resync;
    /// any pending undo state is discarded. The destination's buffers are
    /// reused, so a replica can adopt another's snapshot without touching
    /// the heap.
    ///
    /// # Errors
    ///
    /// Fails (leaving the state unchanged) if `x` does not fit the
    /// scenario's geometry.
    pub fn replace_assignment(&mut self, x: &Assignment) -> Result<(), Error> {
        x.verify_feasible(self.scenario)?;
        self.x.clone_from(x);
        self.resync();
        Ok(())
    }

    /// The current `J*(X)`: `0.0` for the all-local decision, `−∞` when any
    /// offloaded user has a non-finite Γ term (zero SINR), otherwise the
    /// maintained `gain − Γ − Λ`.
    #[inline]
    pub fn current(&self) -> f64 {
        if self.num_offloaded == 0 {
            return 0.0;
        }
        if self.nonfinite > 0 {
            return f64::NEG_INFINITY;
        }
        self.gain_sum - self.gamma_sum - self.lambda_sum
    }

    /// Start of the lane-padded weighted-gain row `p_u·h[u][·][j]` —
    /// per-`(user, subchannel)` in the dense layout, per-user when the
    /// gain tensor is subchannel-shared.
    #[inline]
    fn wgain_base(&self, u: usize, j: usize) -> usize {
        if self.wgain_shared {
            u * self.stride
        } else {
            (u * self.num_sub + j) * self.stride
        }
    }

    /// The contiguous lane-padded weighted-gain row `p_u·h[u][·][j]`.
    #[inline]
    fn wgain_row(&self, u: usize, j: usize) -> &[f64] {
        &self.wgain[self.wgain_base(u, j)..][..self.stride]
    }

    /// Λ term of one server from its current `Σ√η` sum (Eq. 23).
    #[inline]
    fn lambda_term(&self, s: usize) -> f64 {
        lambda_term_from(self.sum_sqrt_eta[s], self.capacity[s])
    }

    /// Rebuilds every sum from the assignment, discarding accumulated
    /// drift and any pending undo state. Iterates in the same order as
    /// [`Evaluator::objective_with`] so the rebuilt value tracks the
    /// reference as closely as summation order allows.
    ///
    /// [`Evaluator::objective_with`]: crate::Evaluator::objective_with
    pub fn resync(&mut self) {
        self.log.discard();
        let servers = self.scenario.num_servers();
        let stride = self.stride;
        self.totals.iter_mut().for_each(|t| *t = 0.0);
        if let Some(ext) = self.scenario.external_rx() {
            // Seed each subchannel row with the frozen external received
            // power `[j·S + s]` (padding lanes stay zero) — the sharded
            // solver's halo baseline. `apply`/`score` inherit it
            // automatically because their buffered rows copy from here.
            for (row, ext_row) in self
                .totals
                .chunks_exact_mut(stride)
                .zip(ext.chunks_exact(servers))
            {
                row[..servers].copy_from_slice(ext_row);
            }
        }
        for (u, _, j) in self.x.offloaded() {
            let row = self.wgain_base(u.index(), j.index());
            simd::add_assign_rows(
                &mut self.totals[j.index() * stride..][..stride],
                &self.wgain[row..][..stride],
            );
        }

        self.gain_sum = 0.0;
        self.gamma_sum = 0.0;
        self.nonfinite = 0;
        self.num_offloaded = 0;
        self.gamma_of.iter_mut().for_each(|g| *g = 0.0);
        self.gamma_bad.iter_mut().for_each(|b| *b = false);
        for (u, s, j) in self.x.offloaded() {
            self.num_offloaded += 1;
            self.gain_sum += self.coeffs.gain_const[u.index()];
            self.signal_of[u.index()] = self.wgain_row(u.index(), j.index())[s.index()];
            let term = self.gamma_term(u, s, j);
            if term.is_finite() {
                self.gamma_sum += term;
                self.gamma_of[u.index()] = term;
            } else {
                self.gamma_bad[u.index()] = true;
                self.nonfinite += 1;
            }
        }

        self.lambda_sum = 0.0;
        for s in 0..servers {
            let mut sum = 0.0;
            let mut count = 0;
            for j in 0..self.num_sub {
                if let Some(u) = self.x.occupant(ServerId::new(s), SubchannelId::new(j)) {
                    sum += self.coeffs.sqrt_eta[u.index()];
                    count += 1;
                }
            }
            self.sum_sqrt_eta[s] = sum;
            self.users_on[s] = count;
            self.lambda_sum += self.lambda_term(s);
        }
    }

    /// The Γ term of user `u` transmitting at `(s, j)`, from the current
    /// totals — the exact expression of the reference evaluator.
    #[inline]
    fn gamma_term(&self, u: UserId, s: ServerId, j: SubchannelId) -> f64 {
        let signal = self.wgain_row(u.index(), j.index())[s.index()];
        let total = self.totals[j.index() * self.stride + s.index()];
        gamma_term_from(self.coeffs.gamma_num[u.index()], signal, total, self.noise)
    }

    /// Applies `mv` to the assignment and all sums, returning
    /// `J*(X_new) − J*(X_old)`. Writes to the totals and Γ arrays are
    /// buffered; call [`undo`](Self::undo) to roll back bit-exactly or
    /// [`commit`](Self::commit) to flush them. Applying a new move
    /// implicitly commits the previous one.
    ///
    /// Cost: `O(S)` per primitive op (totals update) plus `O(S)` per
    /// distinct affected subchannel (Γ refresh) — independent of the
    /// number of transmitters `T`.
    ///
    /// # Panics
    ///
    /// Panics if an op is invalid against the current assignment (the
    /// move was built for a different decision).
    pub fn apply(&mut self, mv: &MoveDesc) -> f64 {
        self.commit();
        let before = self.current();
        self.log.begin(
            self.gain_sum,
            self.gamma_sum,
            self.lambda_sum,
            self.nonfinite,
            self.num_offloaded,
        );

        // Subchannels whose membership changed: every user transmitting on
        // one of them needs its Γ term refreshed.
        let mut touched: [Option<SubchannelId>; MAX_MOVE_OPS] = [None; MAX_MOVE_OPS];
        let mut touch = |j: SubchannelId| {
            for slot in touched.iter_mut() {
                match slot {
                    Some(seen) if *seen == j => return,
                    None => {
                        *slot = Some(j);
                        return;
                    }
                    _ => {}
                }
            }
        };
        // Power contributions to fold into the totals, in op order:
        // `(user, subchannel, joined)`. Kept out of `leave`/`join` so the
        // totals pass below can journal each affected `(s, j)` slot once
        // instead of once per op.
        let mut changes: [Option<(UserId, SubchannelId, bool)>; MAX_MOVE_OPS] =
            [None; MAX_MOVE_OPS];
        let mut num_changes = 0usize;

        for op in mv.ops() {
            match op {
                PrimOp::Release { user } => {
                    let (s, j) = self
                        .x
                        .release(user)
                        .expect("MoveDesc releases an offloaded user");
                    self.leave(user, s);
                    touch(j);
                    changes[num_changes] = Some((user, j, false));
                    self.log.inverse.push(PrimOp::Assign {
                        user,
                        server: s,
                        subchannel: j,
                    });
                }
                PrimOp::Assign {
                    user,
                    server,
                    subchannel,
                } => {
                    self.x
                        .assign(user, server, subchannel)
                        .expect("MoveDesc assigns into a free slot");
                    self.join(user, server, subchannel);
                    touch(subchannel);
                    changes[num_changes] = Some((user, subchannel, true));
                    self.log.inverse.push(PrimOp::Release { user });
                }
            }
            num_changes += 1;
        }
        self.log.inverse.reverse();
        let changes = &changes[..num_changes];

        // Fused totals + Γ pass over each affected subchannel: seed the
        // buffered totals row from the committed values, sweep each op's
        // lane-padded weighted-gain row over it with the chunked kernels
        // (per-slot add order is the op order and per-slot arithmetic is
        // independent across servers, so the float rounding matches the
        // sequential scalar updates), then refresh every slot occupant's
        // Γ term from the buffered value.
        let servers = self.scenario.num_servers();
        let stride = self.stride;
        for j in touched.iter().flatten() {
            let ji = j.index();
            self.log.touched_subs.push(ji);
            let base = self.log.new_totals.len();
            self.log
                .new_totals
                .extend_from_slice(&self.totals[ji * stride..][..stride]);
            for (user, ja, joined) in changes.iter().flatten() {
                if ja != j {
                    continue;
                }
                let wb = self.wgain_base(user.index(), ji);
                let row = &self.wgain[wb..][..stride];
                let slots = &mut self.log.new_totals[base..][..stride];
                if *joined {
                    simd::add_assign_rows(slots, row);
                } else {
                    simd::sub_assign_rows(slots, row);
                }
            }
            // Two independent accumulators (retired and fresh terms) keep
            // the adds off the serial `gamma_sum` dependency chain; the
            // sum is folded in once per subchannel. The fold is split:
            // the gather pass retires each occupant's old term and
            // collects its post-move SINR call-free, then the second
            // pass runs the `log2` libm calls over the compact buffer
            // and patches the journaled Γ entries. Each accumulator's
            // add order is the server order either way, so the bits are
            // unchanged relative to a fused per-occupant loop. Users the
            // in-flight move relocated were already retired eagerly by
            // [`leave`](Self::leave), and the received signal comes from
            // the `p·h` cache maintained by [`join`](Self::join).
            let mut row_old = 0.0;
            let mut row_new = 0.0;
            self.score_fold.clear();
            for t in 0..servers {
                let total = self.log.new_totals[base + t];
                let t = ServerId::new(t);
                if let Some(occupant) = self.x.occupant(t, *j) {
                    let u = occupant.index();
                    let old = if self.gamma_bad[u] {
                        self.nonfinite -= 1;
                        0.0
                    } else {
                        self.gamma_of[u]
                    };
                    row_old += old;
                    self.score_fold.push((
                        self.coeffs.gamma_num[u],
                        sinr_from(self.signal_of[u], total, self.noise),
                    ));
                    self.log.new_gammas.push((u, 0.0, false));
                }
            }
            let refreshed = self.log.new_gammas.len() - self.score_fold.len();
            for (k, &(gamma_num, sinr)) in self.score_fold.iter().enumerate() {
                let term = gamma_term_from_sinr(gamma_num, sinr);
                let entry = &mut self.log.new_gammas[refreshed + k];
                let new = if term.is_finite() {
                    entry.1 = term;
                    term
                } else {
                    entry.2 = true;
                    self.nonfinite += 1;
                    0.0
                };
                row_new += new;
            }
            self.gamma_sum += row_new - row_old;
        }

        self.log.valid = true;
        self.current() - before
    }

    /// Membership bookkeeping when `user` leaves server `s`: benefit sum,
    /// server Λ term, and retirement of its Γ term. The totals row of its
    /// subchannel is updated by the caller's fused totals pass.
    fn leave(&mut self, user: UserId, s: ServerId) {
        let u = user.index();
        self.gain_sum -= self.coeffs.gain_const[u];
        self.num_offloaded -= 1;

        // Retire the user's Γ term eagerly (journaling the old cache), so
        // the refresh pass can read `gamma_of` without tracking which users
        // the in-flight move relocated.
        self.log
            .old_gammas
            .push((u, self.gamma_of[u], self.gamma_bad[u]));
        if self.gamma_bad[u] {
            self.nonfinite -= 1;
            self.gamma_bad[u] = false;
        } else {
            self.gamma_sum -= self.gamma_of[u];
        }
        self.gamma_of[u] = 0.0;

        let si = s.index();
        self.log
            .servers
            .push((si, self.sum_sqrt_eta[si], self.users_on[si]));
        let old_term = self.lambda_term(si);
        self.users_on[si] -= 1;
        if self.users_on[si] == 0 {
            // Pin the empty-server sum to exactly zero so drift cannot
            // leave a phantom Λ term behind.
            self.sum_sqrt_eta[si] = 0.0;
        } else {
            self.sum_sqrt_eta[si] -= self.coeffs.sqrt_eta[u];
        }
        self.lambda_sum += self.lambda_term(si) - old_term;
    }

    /// Membership bookkeeping when `user` joins slot `(s, j)`. Its Γ term
    /// is installed by the caller's refresh pass (its subchannel is
    /// touched) and the totals row by the caller's fused totals pass; the
    /// received-signal cache is rewritten here, eagerly and journaled.
    fn join(&mut self, user: UserId, s: ServerId, j: SubchannelId) {
        let u = user.index();
        self.gain_sum += self.coeffs.gain_const[u];
        self.num_offloaded += 1;

        self.log.old_signals.push((u, self.signal_of[u]));
        self.signal_of[u] = self.wgain_row(u, j.index())[s.index()];

        let si = s.index();
        self.log
            .servers
            .push((si, self.sum_sqrt_eta[si], self.users_on[si]));
        let old_term = self.lambda_term(si);
        self.users_on[si] += 1;
        self.sum_sqrt_eta[si] += self.coeffs.sqrt_eta[u];
        self.lambda_sum += self.lambda_term(si) - old_term;
    }

    /// Rolls back the last applied (uncommitted) move bit-exactly: the
    /// buffered totals and Γ writes are dropped unflushed, the eagerly
    /// updated scalars and server sums are restored from their snapshot,
    /// and the assignment is reverted by the logged inverse ops.
    ///
    /// # Panics
    ///
    /// Panics if there is no uncommitted move.
    pub fn undo(&mut self) {
        assert!(self.log.valid, "no uncommitted move to undo");
        self.log.valid = false;
        self.log.new_totals.clear();
        self.log.touched_subs.clear();
        self.log.new_gammas.clear();
        for (u, old_term, old_bad) in self.log.old_gammas.drain(..).rev() {
            self.gamma_of[u] = old_term;
            self.gamma_bad[u] = old_bad;
        }
        for (u, old_signal) in self.log.old_signals.drain(..).rev() {
            self.signal_of[u] = old_signal;
        }
        for (s, old_sum, old_count) in self.log.servers.drain(..).rev() {
            self.sum_sqrt_eta[s] = old_sum;
            self.users_on[s] = old_count;
        }
        self.gain_sum = self.log.gain_sum;
        self.gamma_sum = self.log.gamma_sum;
        self.lambda_sum = self.log.lambda_sum;
        self.nonfinite = self.log.nonfinite;
        self.num_offloaded = self.log.num_offloaded;
        let inverse = self.log.inverse;
        self.log.inverse = MoveDesc::noop();
        // The logged inverse ops are valid by construction, so skip the
        // feasibility checks of `MoveDesc::apply_to` on this hot path.
        for op in inverse.ops() {
            match op {
                PrimOp::Assign {
                    user,
                    server,
                    subchannel,
                } => self.x.restore_assign(user, server, subchannel),
                PrimOp::Release { user } => {
                    self.x.release(user);
                }
            }
        }
    }

    /// Accepts the last applied move, flushing its buffered totals and Γ
    /// writes into the persistent arrays. A no-op without a pending move.
    pub fn commit(&mut self) {
        if self.log.valid {
            let stride = self.stride;
            for (k, &j) in self.log.touched_subs.iter().enumerate() {
                self.totals[j * stride..][..stride]
                    .copy_from_slice(&self.log.new_totals[k * stride..][..stride]);
            }
            for &(u, term, bad) in &self.log.new_gammas {
                self.gamma_of[u] = term;
                self.gamma_bad[u] = bad;
            }
        }
        self.log.discard();
    }
}

impl IncrementalObjective<'_> {
    /// Scores a candidate move *speculatively*: returns the objective
    /// `J*(X ⊕ mv)` the move would produce — bit-identical to
    /// [`apply`](Self::apply) followed by [`current`](Self::current) —
    /// without mutating the assignment, the persistent sums, or the move
    /// log. Any pending uncommitted move is committed first, exactly as
    /// `apply` would.
    ///
    /// This is the batched-proposal fast path: search loops score K
    /// candidates (pure arithmetic — no journaling, no assignment writes,
    /// no undo) and only `apply` + [`commit`](Self::commit) an accepted
    /// one. The replay performs the same floating-point operations in the
    /// same order as `apply`: per-op benefit/Λ updates and Γ retirements
    /// on local copies of the scalar sums, then the fused per-subchannel
    /// chunked totals sweep and the ordered Γ refresh fold. The property
    /// suite in `tests/soa_props.rs` pins `score` and `apply` bit-exact
    /// against each other over long random walks.
    ///
    /// The move must have been built by a [`MoveDesc`] constructor against
    /// the current assignment; scoring a move built for a different
    /// decision yields a meaningless value (and panics in debug builds
    /// where the mismatch is detectable).
    pub fn score(&mut self, mv: &MoveDesc) -> f64 {
        self.commit();
        // Local replicas of the scalar sums `apply` updates in place.
        let mut gain_sum = self.gain_sum;
        let mut gamma_sum = self.gamma_sum;
        let mut lambda_sum = self.lambda_sum;
        let mut nonfinite = self.nonfinite;
        let mut num_offloaded = self.num_offloaded;

        // Fixed-size overlays standing in for the assignment mutation
        // `apply` performs: per-user slots, per-server `Σ√η` sums, the
        // set of users whose Γ term this move retires, and the op-ordered
        // slot writes `(server, subchannel, user, joined)` the totals
        // sweep and the occupancy patches below are derived from.
        let mut slot_overlay: [Option<SlotWrite>; MAX_MOVE_OPS] = [None; MAX_MOVE_OPS];
        let mut server_overlay: [Option<(usize, f64, u32)>; MAX_MOVE_OPS] = [None; MAX_MOVE_OPS];
        let mut num_servers_touched = 0usize;
        let mut retired_user: [UserId; MAX_MOVE_OPS] = [UserId::new(0); MAX_MOVE_OPS];
        let mut num_retired = 0usize;
        let mut writes: [(usize, SubchannelId, UserId, bool); MAX_MOVE_OPS] =
            [(0, SubchannelId::new(0), UserId::new(0), false); MAX_MOVE_OPS];
        let mut num_ops = 0usize;

        // Touched subchannels, deduplicated in first-seen order like
        // `apply`'s pass.
        let mut touched: [Option<SubchannelId>; MAX_MOVE_OPS] = [None; MAX_MOVE_OPS];
        let mut touch = |j: SubchannelId| {
            for slot in touched.iter_mut() {
                match slot {
                    Some(seen) if *seen == j => return,
                    None => {
                        *slot = Some(j);
                        return;
                    }
                    _ => {}
                }
            }
        };

        for op in mv.ops() {
            // The latest overlaid Σ√η state of the op's server (ops may
            // repeat a server, so the chain must read its own writes).
            let mut update_server = |si: usize, sqrt_eta: f64, join: bool| {
                let mut found = None;
                for (i, e) in server_overlay[..num_servers_touched].iter().enumerate() {
                    if matches!(e, Some((s0, _, _)) if *s0 == si) {
                        found = Some(i);
                    }
                }
                let (sum0, count0) = match found {
                    Some(i) => {
                        let (_, a, b) = server_overlay[i].expect("found entries are set");
                        (a, b)
                    }
                    None => (self.sum_sqrt_eta[si], self.users_on[si]),
                };
                let old_term = lambda_term_from(sum0, self.capacity[si]);
                let (sum1, count1) = if join {
                    (sum0 + sqrt_eta, count0 + 1)
                } else if count0 == 1 {
                    // Same empty-server pin to exactly zero as `leave`.
                    (0.0, 0)
                } else {
                    (sum0 - sqrt_eta, count0 - 1)
                };
                lambda_sum += lambda_term_from(sum1, self.capacity[si]) - old_term;
                match found {
                    Some(i) => server_overlay[i] = Some((si, sum1, count1)),
                    None => {
                        server_overlay[num_servers_touched] = Some((si, sum1, count1));
                        num_servers_touched += 1;
                    }
                }
            };
            match op {
                PrimOp::Release { user } => {
                    let slot = slot_overlay[..num_ops]
                        .iter()
                        .rev()
                        .flatten()
                        .find(|(w, _)| *w == user)
                        .map(|(_, s)| *s)
                        .unwrap_or_else(|| self.x.slot(user));
                    let (s, j) = slot.expect("MoveDesc releases an offloaded user");
                    let u = user.index();
                    gain_sum -= self.coeffs.gain_const[u];
                    num_offloaded -= 1;
                    // Γ retirement, mirroring `leave` (the committed cache
                    // is authoritative — one move never releases a user
                    // twice).
                    if self.gamma_bad[u] {
                        nonfinite -= 1;
                    } else {
                        gamma_sum -= self.gamma_of[u];
                    }
                    retired_user[num_retired] = user;
                    num_retired += 1;
                    update_server(s.index(), self.coeffs.sqrt_eta[u], false);
                    slot_overlay[num_ops] = Some((user, None));
                    writes[num_ops] = (s.index(), j, user, false);
                    touch(j);
                }
                PrimOp::Assign {
                    user,
                    server,
                    subchannel,
                } => {
                    let u = user.index();
                    gain_sum += self.coeffs.gain_const[u];
                    num_offloaded += 1;
                    update_server(server.index(), self.coeffs.sqrt_eta[u], true);
                    slot_overlay[num_ops] = Some((user, Some((server, subchannel))));
                    writes[num_ops] = (server.index(), subchannel, user, true);
                    touch(subchannel);
                }
            }
            num_ops += 1;
        }

        // Fused totals + Γ pass, as in `apply`, but into the reusable
        // scratch rows and against occupancy patches instead of a mutated
        // assignment.
        let servers = self.capacity.len();
        let stride = self.stride;
        self.score_totals.clear();
        for j in touched.iter().flatten() {
            let ji = j.index();
            let base = self.score_totals.len();
            self.score_totals
                .extend_from_slice(&self.totals[ji * stride..][..stride]);
            // This subchannel's occupancy patches, last write per slot
            // wins (an evicting relocate writes `None` then `Some`).
            let mut patch_slot: [usize; MAX_MOVE_OPS] = [usize::MAX; MAX_MOVE_OPS];
            let mut patch_occ: [Option<UserId>; MAX_MOVE_OPS] = [None; MAX_MOVE_OPS];
            let mut num_patch = 0usize;
            for (si, ja, user, joined) in &writes[..num_ops] {
                if ja != j {
                    continue;
                }
                let wb = self.wgain_base(user.index(), ji);
                let row = &self.wgain[wb..][..stride];
                let slots = &mut self.score_totals[base..][..stride];
                if *joined {
                    simd::add_assign_rows(slots, row);
                } else {
                    simd::sub_assign_rows(slots, row);
                }
                let occ = joined.then_some(*user);
                match patch_slot[..num_patch].iter().position(|p| p == si) {
                    Some(i) => patch_occ[i] = occ,
                    None => {
                        patch_slot[num_patch] = *si;
                        patch_occ[num_patch] = occ;
                        num_patch += 1;
                    }
                }
            }
            // Ordered Γ refresh fold over the subchannel's post-move
            // occupants — same two accumulators and server order as
            // `apply`, so the rounding matches bit for bit. Occupants of
            // unpatched slots cannot have been touched by the move (a
            // user holds exactly one slot), so they read the committed
            // `gamma_of`/`signal_of` caches directly, exactly like
            // `apply`'s refresh after `leave`/`join` updated them; only
            // patched slots (at most one per op) resolve the
            // relocated-user special cases.
            let occ_row = &self.x.occupants_on(*j)[..servers];
            let mut row_old = 0.0;
            self.score_fold.clear();
            for (t, committed) in occ_row.iter().enumerate() {
                let patch = patch_slot[..num_patch].iter().position(|&p| p == t);
                let Some(v) = patch.map_or(*committed, |i| patch_occ[i]) else {
                    continue;
                };
                let u = v.index();
                let total = self.score_totals[base + t];
                let (old, was_bad, signal) = if patch.is_some() {
                    // `v` was assigned to this slot by the move. Its old
                    // term is zero if the move also released it first
                    // (`leave` retires eagerly); its signal is the
                    // new-slot `p·h`, as `join` caches eagerly.
                    let retired = retired_user[..num_retired].contains(&v);
                    let (old, was_bad) = if retired {
                        (0.0, false)
                    } else {
                        (self.gamma_of[u], self.gamma_bad[u])
                    };
                    (old, was_bad, self.wgain[self.wgain_base(u, ji) + t])
                } else {
                    (self.gamma_of[u], self.gamma_bad[u], self.signal_of[u])
                };
                if was_bad {
                    nonfinite -= 1;
                }
                row_old += old;
                self.score_fold.push((
                    self.coeffs.gamma_num[u],
                    sinr_from(signal, total, self.noise),
                ));
            }
            // Second pass runs the `log2` libm calls over the gathered
            // SINRs. Splitting the fold keeps the gather loop call-free
            // (no spills around the calls) and each accumulator's add
            // order is still the server order, so the bits match the
            // fused loop `apply` runs.
            let mut row_new = 0.0;
            for &(gamma_num, sinr) in &self.score_fold {
                let term = gamma_term_from_sinr(gamma_num, sinr);
                let fresh = if term.is_finite() {
                    term
                } else {
                    nonfinite += 1;
                    0.0
                };
                row_new += fresh;
            }
            gamma_sum += row_new - row_old;
        }

        if num_offloaded == 0 {
            0.0
        } else if nonfinite > 0 {
            f64::NEG_INFINITY
        } else {
            gain_sum - gamma_sum - lambda_sum
        }
    }
}

/// One overlaid per-user slot write of a speculative score:
/// `(user, its post-op slot)`.
type SlotWrite = (UserId, Option<(ServerId, SubchannelId)>);

/// Λ term of one server from a `Σ√η` sum against its capacity (Eq. 23).
#[inline]
fn lambda_term_from(sum: f64, capacity: f64) -> f64 {
    if sum > 0.0 {
        sum * sum / capacity
    } else {
        0.0
    }
}

/// The Γ term of a user receiving `signal` on a slot whose received-power
/// total is `total` — the exact expression of the reference evaluator,
/// shared verbatim by the apply and score paths so their rounding agrees.
#[inline]
fn gamma_term_from(gamma_num: f64, signal: f64, total: f64, noise: f64) -> f64 {
    gamma_term_from_sinr(gamma_num, sinr_from(signal, total, noise))
}

/// The SINR half of [`gamma_term_from`] — call-free, so gather loops
/// over a subchannel's occupants pipeline without spilling around libm.
#[inline]
fn sinr_from(signal: f64, total: f64, noise: f64) -> f64 {
    let interference = (total - signal).max(0.0);
    signal / (interference + noise)
}

/// The `log2` half of [`gamma_term_from`] (Eq. 24's rate denominator).
#[inline]
fn gamma_term_from_sinr(gamma_num: f64, sinr: f64) -> f64 {
    gamma_num / (1.0 + sinr).log2()
}

impl MoveDesc {
    /// Reverses the op order in place (used to turn a forward journal of
    /// inverse ops into undo order).
    pub(crate) fn reverse(&mut self) {
        self.ops[..self.len as usize].reverse();
    }
}

impl MoveLog {
    /// An empty journal with buffers sized for the worst-case move against
    /// `servers` stations (`stride` lane-padded totals slots per row), so
    /// even the first apply does not allocate.
    fn with_capacity(servers: usize, stride: usize) -> Self {
        Self {
            new_totals: Vec::with_capacity(MAX_MOVE_OPS * stride),
            touched_subs: Vec::with_capacity(MAX_MOVE_OPS),
            new_gammas: Vec::with_capacity(MAX_MOVE_OPS * (servers + 1)),
            old_gammas: Vec::with_capacity(MAX_MOVE_OPS),
            old_signals: Vec::with_capacity(MAX_MOVE_OPS),
            servers: Vec::with_capacity(2 * MAX_MOVE_OPS),
            ..Self::default()
        }
    }

    /// Snapshots the scalar sums for the next move. The log must already
    /// be clean — `apply` always commits (and thereby discards) first, and
    /// `undo` drains every buffer it touches.
    fn begin(
        &mut self,
        gain_sum: f64,
        gamma_sum: f64,
        lambda_sum: f64,
        nonfinite: u32,
        num_offloaded: usize,
    ) {
        debug_assert!(!self.valid && self.new_totals.is_empty() && self.inverse.is_empty());
        self.gain_sum = gain_sum;
        self.gamma_sum = gamma_sum;
        self.lambda_sum = lambda_sum;
        self.nonfinite = nonfinite;
        self.num_offloaded = num_offloaded;
    }

    fn discard(&mut self) {
        self.valid = false;
        self.new_totals.clear();
        self.touched_subs.clear();
        self.new_gammas.clear();
        self.old_gammas.clear();
        self.old_signals.clear();
        self.servers.clear();
        self.inverse = MoveDesc::noop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::{EvalScratch, Evaluator};
    use crate::scenario::UserSpec;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_scenario(seed: u64, users: usize, servers: usize, subs: usize) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let gains = ChannelGains::from_fn(users, servers, subs, |_, _, _| {
            10.0_f64.powf(rng.gen_range(-13.0..-9.0))
        })
        .unwrap();
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), subs).unwrap(),
            gains,
            Watts::new(1e-13),
        )
        .unwrap()
    }

    fn random_assignment(scenario: &Scenario, seed: u64) -> Assignment {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Assignment::all_local(scenario);
        for u in scenario.user_ids() {
            if rng.gen_bool(0.6) {
                let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
                if let Some(j) = x.free_subchannel(s) {
                    x.assign(u, s, j).unwrap();
                }
            }
        }
        x
    }

    /// A random valid MoveDesc against `x`, mimicking the kernel's shapes.
    fn random_move(scenario: &Scenario, x: &Assignment, rng: &mut StdRng) -> MoveDesc {
        let u = UserId::new(rng.gen_range(0..scenario.num_users()));
        match rng.gen_range(0..4) {
            0 => MoveDesc::relocate(x, u, None),
            1 => {
                let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
                let j = SubchannelId::new(rng.gen_range(0..scenario.num_subchannels()));
                MoveDesc::relocate_evicting(x, u, s, j)
            }
            2 => {
                let v = UserId::new(rng.gen_range(0..scenario.num_users()));
                MoveDesc::swap(x, u, v)
            }
            _ => {
                let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
                match x.free_subchannel(s) {
                    Some(j) if !x.is_offloaded(u) => MoveDesc::relocate(x, u, Some((s, j))),
                    _ => MoveDesc::relocate(x, u, None),
                }
            }
        }
    }

    fn assert_close(a: f64, b: f64, what: &str) {
        if a.is_finite() || b.is_finite() {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "{what}: incremental {a} vs reference {b}"
            );
        }
    }

    #[test]
    fn fresh_build_matches_reference() {
        let mut scratch = EvalScratch::default();
        for seed in 0..6 {
            let sc = random_scenario(seed, 9, 3, 3);
            let x = random_assignment(&sc, seed + 40);
            let reference = Evaluator::new(&sc).objective_with(&x, &mut scratch);
            let inc = IncrementalObjective::new(&sc, x).unwrap();
            assert_close(inc.current(), reference, "fresh build");
        }
    }

    #[test]
    fn all_local_is_exactly_zero() {
        let sc = random_scenario(0, 4, 2, 2);
        let inc = IncrementalObjective::new(&sc, Assignment::all_local(&sc)).unwrap();
        assert_eq!(inc.current(), 0.0);
    }

    #[test]
    fn apply_tracks_reference_over_random_walks() {
        let mut scratch = EvalScratch::default();
        for seed in 0..5 {
            let sc = random_scenario(seed, 10, 3, 3);
            let ev = Evaluator::new(&sc);
            let mut rng = StdRng::seed_from_u64(seed + 7);
            let mut inc =
                IncrementalObjective::new(&sc, random_assignment(&sc, seed + 11)).unwrap();
            for step in 0..400 {
                let mv = random_move(&sc, inc.assignment(), &mut rng);
                inc.apply(&mv);
                inc.commit();
                inc.assignment().verify_feasible(&sc).unwrap();
                let reference = ev.objective_with(inc.assignment(), &mut scratch);
                assert_close(
                    inc.current(),
                    reference,
                    &format!("seed {seed} step {step}"),
                );
            }
        }
    }

    #[test]
    fn undo_is_bit_exact() {
        let sc = random_scenario(3, 8, 3, 2);
        let mut rng = StdRng::seed_from_u64(99);
        let mut inc = IncrementalObjective::new(&sc, random_assignment(&sc, 21)).unwrap();
        for _ in 0..300 {
            let x_before = inc.assignment().clone();
            let obj_before = inc.current();
            let mv = random_move(&sc, inc.assignment(), &mut rng);
            inc.apply(&mv);
            inc.undo();
            assert_eq!(inc.assignment(), &x_before, "assignment restored");
            assert_eq!(
                inc.current().to_bits(),
                obj_before.to_bits(),
                "objective restored bit-exactly"
            );
        }
    }

    #[test]
    fn delta_matches_before_after_difference() {
        let sc = random_scenario(5, 7, 2, 3);
        let mut rng = StdRng::seed_from_u64(17);
        let mut inc = IncrementalObjective::new(&sc, random_assignment(&sc, 31)).unwrap();
        for _ in 0..200 {
            let before = inc.current();
            let mv = random_move(&sc, inc.assignment(), &mut rng);
            let delta = inc.apply(&mv);
            assert_eq!(delta.to_bits(), (inc.current() - before).to_bits());
            if rng.gen_bool(0.5) {
                inc.undo();
            } else {
                inc.commit();
            }
        }
    }

    #[test]
    fn noop_move_changes_nothing() {
        let sc = random_scenario(2, 5, 2, 2);
        let mut inc = IncrementalObjective::new(&sc, random_assignment(&sc, 13)).unwrap();
        let before = inc.current();
        let delta = inc.apply(&MoveDesc::noop());
        assert_eq!(delta, 0.0);
        assert_eq!(inc.current().to_bits(), before.to_bits());
        inc.undo();
        assert_eq!(inc.current().to_bits(), before.to_bits());
    }

    #[test]
    fn resync_discards_drift_and_pending_moves() {
        let mut scratch = EvalScratch::default();
        let sc = random_scenario(8, 9, 3, 3);
        let ev = Evaluator::new(&sc);
        let mut rng = StdRng::seed_from_u64(5);
        let mut inc = IncrementalObjective::new(&sc, random_assignment(&sc, 3)).unwrap();
        for _ in 0..100 {
            let mv = random_move(&sc, inc.assignment(), &mut rng);
            inc.apply(&mv);
            inc.commit();
        }
        inc.resync();
        let reference = ev.objective_with(inc.assignment(), &mut scratch);
        assert_close(inc.current(), reference, "post-resync");
    }

    #[test]
    fn move_desc_constructors_match_assignment_semantics() {
        let sc = random_scenario(4, 6, 2, 2);
        let x = random_assignment(&sc, 77);

        // Swap equivalence against Assignment::swap.
        for (a, b) in [(0, 1), (2, 3), (4, 5), (1, 1)] {
            let (a, b) = (UserId::new(a), UserId::new(b));
            let mut via_desc = x.clone();
            MoveDesc::swap(&x, a, b).apply_to(&mut via_desc).unwrap();
            let mut via_swap = x.clone();
            via_swap.swap(a, b);
            assert_eq!(via_desc, via_swap);
        }

        // Evicting relocation equivalence against assign_evicting.
        for u in 0..sc.num_users() {
            let u = UserId::new(u);
            for s in 0..sc.num_servers() {
                for j in 0..sc.num_subchannels() {
                    let (s, j) = (ServerId::new(s), SubchannelId::new(j));
                    let mut via_desc = x.clone();
                    MoveDesc::relocate_evicting(&x, u, s, j)
                        .apply_to(&mut via_desc)
                        .unwrap();
                    let mut via_evict = x.clone();
                    via_evict.assign_evicting(u, s, j).unwrap();
                    assert_eq!(via_desc, via_evict);
                }
            }
        }
    }

    #[test]
    fn score_matches_apply_bit_exactly() {
        for seed in 0..6 {
            let sc = random_scenario(seed, 10, 3, 3);
            let mut rng = StdRng::seed_from_u64(seed + 71);
            let mut inc =
                IncrementalObjective::new(&sc, random_assignment(&sc, seed + 29)).unwrap();
            for step in 0..300 {
                let mv = random_move(&sc, inc.assignment(), &mut rng);
                let speculative = inc.score(&mv);
                let x_before = inc.assignment().clone();
                let before = inc.current();
                inc.apply(&mv);
                let applied = inc.current();
                assert_eq!(
                    speculative.to_bits(),
                    applied.to_bits(),
                    "seed {seed} step {step}: score {speculative} vs apply {applied}"
                );
                // Scoring never mutates: the assignment and the committed
                // state are untouched after an undo of the real apply.
                inc.undo();
                assert_eq!(inc.assignment(), &x_before);
                assert_eq!(inc.current().to_bits(), before.to_bits());
                // Occasionally walk forward so scoring is exercised from
                // many committed states.
                if rng.gen_bool(0.3) {
                    inc.apply(&mv);
                    inc.commit();
                }
            }
        }
    }

    #[test]
    fn score_handles_noop_and_all_local() {
        let sc = random_scenario(12, 5, 2, 2);
        let mut inc = IncrementalObjective::new(&sc, Assignment::all_local(&sc)).unwrap();
        assert_eq!(inc.score(&MoveDesc::noop()), 0.0);
        let mv = MoveDesc::relocate(
            inc.assignment(),
            UserId::new(0),
            Some((ServerId::new(0), SubchannelId::new(0))),
        );
        let speculative = inc.score(&mv);
        inc.apply(&mv);
        assert_eq!(speculative.to_bits(), inc.current().to_bits());
        inc.commit();
        // Releasing the only offloaded user scores exactly 0.0 again.
        let back = MoveDesc::relocate(inc.assignment(), UserId::new(0), None);
        assert_eq!(inc.score(&back), 0.0);
    }

    #[test]
    fn padded_lanes_stay_zero_and_inert() {
        // A geometry whose server count is not a lane multiple: the padded
        // layout must agree with the reference evaluator everywhere.
        let mut scratch = EvalScratch::default();
        for servers in [1, 2, 3, 5, 6, 7, 9] {
            let sc = random_scenario(40 + servers as u64, 12, servers, 3);
            let x = random_assignment(&sc, 7);
            let inc = IncrementalObjective::new(&sc, x.clone()).unwrap();
            let reference = Evaluator::new(&sc).objective_with(&x, &mut scratch);
            assert_close(inc.current(), reference, &format!("{servers} servers"));
        }
    }

    /// As [`random_scenario`] but with a subchannel-shared gain tensor
    /// carrying the same per-link values as the dense one.
    fn shared_random_scenario(seed: u64, users: usize, servers: usize, subs: usize) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let gains = ChannelGains::shared_from_fn(users, servers, subs, |_, _| {
            10.0_f64.powf(rng.gen_range(-13.0..-9.0))
        })
        .unwrap();
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), subs).unwrap(),
            gains,
            Watts::new(1e-13),
        )
        .unwrap()
    }

    #[test]
    fn shared_gain_layout_is_bit_identical_to_dense() {
        // Build a dense twin of the shared tensor (same per-link values,
        // replicated across subchannels) and drive both through the same
        // move sequence: every objective must match bit for bit, because
        // the collapsed wgain rows hold the exact same numbers.
        for seed in 0..4 {
            let shared = shared_random_scenario(seed, 10, 3, 3);
            let dense_gains = ChannelGains::from_fn(10, 3, 3, |u, s, _| {
                shared.gains().gain(u, s, SubchannelId::new(0))
            })
            .unwrap();
            let dense = Scenario::new(
                shared.users().to_vec(),
                shared.servers().to_vec(),
                *shared.ofdma(),
                dense_gains,
                shared.noise(),
            )
            .unwrap();
            let x = random_assignment(&shared, seed + 3);
            let mut inc_s = IncrementalObjective::new(&shared, x.clone()).unwrap();
            let mut inc_d = IncrementalObjective::new(&dense, x).unwrap();
            assert!(inc_s.wgain_shared && !inc_d.wgain_shared);
            assert_eq!(inc_s.current().to_bits(), inc_d.current().to_bits());
            let mut rng = StdRng::seed_from_u64(seed + 500);
            for _ in 0..200 {
                let mv = random_move(&shared, inc_s.assignment(), &mut rng);
                let score_s = inc_s.score(&mv);
                let score_d = inc_d.score(&mv);
                assert_eq!(score_s.to_bits(), score_d.to_bits());
                inc_s.apply(&mv);
                inc_d.apply(&mv);
                inc_s.commit();
                inc_d.commit();
                assert_eq!(inc_s.current().to_bits(), inc_d.current().to_bits());
            }
            inc_s.resync();
            inc_d.resync();
            assert_eq!(inc_s.current().to_bits(), inc_d.current().to_bits());
        }
    }

    #[test]
    fn external_rx_flows_through_resync_apply_and_score() {
        let mut scratch = EvalScratch::default();
        for seed in 0..4 {
            let mut sc = random_scenario(seed, 9, 3, 3);
            sc.set_external_rx(Some((0..9).map(|i| 1e-12 * (1.0 + i as f64)).collect()))
                .unwrap();
            let ev = Evaluator::new(&sc);
            let x = random_assignment(&sc, seed + 9);
            let mut inc = IncrementalObjective::new(&sc, x).unwrap();
            assert_close(
                inc.current(),
                ev.objective_with(inc.assignment(), &mut scratch),
                "fresh build with external rx",
            );
            let mut rng = StdRng::seed_from_u64(seed + 1000);
            for step in 0..200 {
                let mv = random_move(&sc, inc.assignment(), &mut rng);
                let speculative = inc.score(&mv);
                inc.apply(&mv);
                assert_eq!(speculative.to_bits(), inc.current().to_bits());
                inc.commit();
                let reference = ev.objective_with(inc.assignment(), &mut scratch);
                assert_close(
                    inc.current(),
                    reference,
                    &format!("seed {seed} step {step} with external rx"),
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "no uncommitted move")]
    fn undo_without_apply_panics() {
        let sc = random_scenario(1, 3, 2, 2);
        let mut inc = IncrementalObjective::new(&sc, Assignment::all_local(&sc)).unwrap();
        inc.undo();
    }

    #[test]
    fn rejects_mismatched_geometry() {
        let sc = random_scenario(1, 3, 2, 2);
        assert!(IncrementalObjective::new(&sc, Assignment::with_dims(5, 2, 2)).is_err());
    }
}
