//! # mec-system
//!
//! The JTORA (Joint Task Offloading and Resource Allocation) problem
//! substrate: scenario construction, feasible offloading decisions
//! (constraints 12b–12d), closed-form KKT computing-resource allocation
//! (Eqs. 20–23), objective evaluation (Eqs. 5–11, 16–19, 24) and the
//! [`Solver`] abstraction implemented by `tsajs` and every baseline.
//!
//! ## The model in brief
//!
//! Each user either runs its task locally or offloads it to exactly one
//! `(server, subchannel)` pair. Offloading costs uplink time/energy
//! (interference-coupled across cells) plus execution time on the server's
//! share of compute; the benefit `J_u` weighs relative time and energy
//! savings by user preferences. For any fixed decision, the optimal compute
//! split is the closed-form square-root rule `f*_us ∝ √η_u` — so the whole
//! problem reduces to searching the discrete decision space with the exact
//! `J*(X)` from Eq. 24 as the score, which is what [`Evaluator::objective`]
//! computes.
//!
//! ## Example
//!
//! ```
//! use mec_system::{Assignment, Evaluator, Scenario, UserSpec};
//! use mec_radio::{ChannelGains, OfdmaConfig};
//! use mec_types::*;
//!
//! # fn main() -> std::result::Result<(), mec_types::Error> {
//! // Two users, one server, two subchannels, clean 1e-10 channels.
//! let users = vec![UserSpec::paper_default_with_workload(Cycles::from_mega(1000.0))?; 2];
//! let scenario = Scenario::new(
//!     users,
//!     vec![ServerProfile::paper_default(); 1],
//!     OfdmaConfig::new(Hertz::from_mega(20.0), 2)?,
//!     ChannelGains::uniform(2, 1, 2, 1e-10)?,
//!     constants::DEFAULT_NOISE.to_watts(),
//! )?;
//!
//! let mut x = Assignment::all_local(&scenario);
//! x.assign(UserId::new(0), ServerId::new(0), SubchannelId::new(0))?;
//! x.assign(UserId::new(1), ServerId::new(0), SubchannelId::new(1))?;
//!
//! let evaluator = Evaluator::new(&scenario);
//! let report = evaluator.evaluate(&x)?;
//! assert!(report.system_utility > 0.0, "offloading should pay off here");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Hot-path layout gates: range loops that should be iterator/chunk sweeps
// and oversized stack buffers are bugs here, not style.
#![deny(clippy::needless_range_loop)]
#![deny(clippy::large_stack_arrays)]

pub mod allocation;
pub mod assignment;
pub mod coefficients;
pub mod cra_numeric;
pub mod evaluation;
pub mod incremental;
pub mod metrics;
#[doc(hidden)]
pub mod pr1_baseline;
pub mod scenario;
pub mod simd;
pub mod solver;
pub mod spec;

pub use allocation::{
    equal_share_allocation, kkt_allocation, optimal_lambda_cost, ResourceAllocation,
};
pub use assignment::Assignment;
pub use coefficients::{CoefficientBlocks, UserCoefficients};
pub use cra_numeric::{numeric_allocation, solve_server_numeric, NumericCraOptions};
pub use evaluation::{EvalScratch, Evaluator};
pub use incremental::{IncrementalObjective, MoveDesc, PrimOp};
pub use metrics::{SystemEvaluation, UserMetrics};
pub use scenario::{Scenario, UserSpec};
pub use solver::{Solution, Solver, SolverStats};
pub use spec::ScenarioSpec;
