//! Per-user and system-level evaluation reports.

use mec_types::{BitsPerSecond, Joules, Seconds};
use serde::{Deserialize, Serialize};

/// What one user experiences under a given decision and allocation.
///
/// For a local user, `completion_time`/`energy` are the local execution
/// figures and the uplink fields are zero; for an offloaded user they are
/// `t_u = t_upload + t_execute` (Eq. 8) and `E_u = p_u·t_upload` (Eq. 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserMetrics {
    /// Whether the user offloads.
    pub offloaded: bool,
    /// Uplink SINR `γ_us` (zero for local users).
    pub sinr: f64,
    /// Uplink rate `R_us` (zero for local users).
    pub rate: BitsPerSecond,
    /// Uplink transfer time `t_upload` (zero for local users).
    pub upload_time: Seconds,
    /// Downlink result-return time (zero for local users and when the
    /// downlink is not modeled).
    pub download_time: Seconds,
    /// Execution time: on the MEC share for offloaded users, on the local
    /// CPU otherwise.
    pub execute_time: Seconds,
    /// Task completion time: `t_u` when offloaded, `t_local` otherwise.
    pub completion_time: Seconds,
    /// Energy drawn from the device battery: `E_u` when offloaded,
    /// `E_local` otherwise.
    pub energy: Joules,
    /// The offloading benefit `J_u` (Eq. 10); zero for local users.
    pub utility: f64,
}

/// The full system-level evaluation of a decision (with the KKT-optimal
/// allocation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemEvaluation {
    /// The system utility `J(X, F*) = Σ_u λ_u·J_u` (Eq. 11) — the quantity
    /// every figure in the paper plots.
    pub system_utility: f64,
    /// First term of Eq. 16: `Σ_{offloaded} λ_u(β_t + β_e)`.
    pub gain_constant: f64,
    /// The uplink cost `Γ(X)` (transmission part of Eq. 19).
    pub gamma_cost: f64,
    /// The execution cost `Λ(X, F*)` (Eq. 23).
    pub lambda_cost: f64,
    /// Per-user details, indexed by user.
    pub users: Vec<UserMetrics>,
    /// How many users offload.
    pub num_offloaded: usize,
}

impl SystemEvaluation {
    /// Mean task completion time across *all* users (offloaded users
    /// contribute `t_u`, local users `t_local`) — the quantity of
    /// Fig. 9(b).
    pub fn average_completion_time(&self) -> Seconds {
        self.average_of(|m| m.completion_time.as_secs())
            .map(Seconds::new)
            .unwrap_or(Seconds::ZERO)
    }

    /// Mean device energy across all users — the quantity of Fig. 9(a).
    pub fn average_energy(&self) -> Joules {
        self.average_of(|m| m.energy.as_joules())
            .map(Joules::new)
            .unwrap_or(Joules::ZERO)
    }

    /// Mean per-user utility `J_u` (unweighted).
    pub fn average_utility(&self) -> f64 {
        self.average_of(|m| m.utility).unwrap_or(0.0)
    }

    fn average_of<F: Fn(&UserMetrics) -> f64>(&self, f: F) -> Option<f64> {
        if self.users.is_empty() {
            return None;
        }
        Some(self.users.iter().map(f).sum::<f64>() / self.users.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(completion: f64, energy: f64, utility: f64) -> UserMetrics {
        UserMetrics {
            offloaded: true,
            sinr: 1.0,
            rate: BitsPerSecond::new(1.0e6),
            upload_time: Seconds::new(0.1),
            download_time: Seconds::ZERO,
            execute_time: Seconds::new(0.2),
            completion_time: Seconds::new(completion),
            energy: Joules::new(energy),
            utility,
        }
    }

    #[test]
    fn averages_are_arithmetic_means() {
        let eval = SystemEvaluation {
            system_utility: 1.0,
            gain_constant: 2.0,
            gamma_cost: 0.5,
            lambda_cost: 0.5,
            users: vec![metric(1.0, 2.0, 0.4), metric(3.0, 4.0, 0.6)],
            num_offloaded: 2,
        };
        assert_eq!(eval.average_completion_time(), Seconds::new(2.0));
        assert_eq!(eval.average_energy(), Joules::new(3.0));
        assert!((eval.average_utility() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_user_list_yields_zeroes() {
        let eval = SystemEvaluation {
            system_utility: 0.0,
            gain_constant: 0.0,
            gamma_cost: 0.0,
            lambda_cost: 0.0,
            users: vec![],
            num_offloaded: 0,
        };
        assert_eq!(eval.average_completion_time(), Seconds::ZERO);
        assert_eq!(eval.average_energy(), Joules::ZERO);
        assert_eq!(eval.average_utility(), 0.0);
    }
}
