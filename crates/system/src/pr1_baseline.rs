//! The PR-1 incremental evaluator, frozen as a measured baseline.
//!
//! This is the AoS/scalar delta-evaluation path exactly as it shipped in
//! PR 1 (commit `fdd21ba`), before the SoA/padded layout, the split Γ
//! fold and the speculative [`score`] path landed: unpadded `[u][j][s]`
//! weighted-gain rows, per-occupant Γ refreshes with the `log2` call
//! inline in the gather loop, and no way to price a move without
//! mutating. It exists so the `objective` benchmark can measure the old
//! and new paths **in the same process on the same machine state** —
//! recorded baseline numbers from another day are hostage to container
//! phase noise, a same-run denominator is not. The property suite also
//! cross-validates the two implementations bit-for-bit against each
//! other here, which pins the layout refactor to the frozen arithmetic.
//!
//! Not part of the public API: hidden from docs, no stability promise,
//! and nothing outside benchmarks and tests should construct one. It
//! shares [`MoveDesc`]/[`PrimOp`] with the live path so both evaluators
//! can replay the identical move stream.
//!
//! [`score`]: crate::IncrementalObjective::score

use crate::assignment::Assignment;
use crate::incremental::{MoveDesc, PrimOp, MAX_MOVE_OPS};
use crate::scenario::Scenario;
use mec_types::{Error, ServerId, SubchannelId, UserId};

/// Log of the last [`Pr1IncrementalObjective::apply`]: totals and Γ writes
/// are buffered (write-behind) and only flushed by `commit`, so `undo`
/// merely drops them. Identical to the PR-1 `MoveLog`.
#[derive(Debug, Clone, Default)]
struct MoveLog {
    valid: bool,
    new_totals: Vec<f64>,
    touched_subs: Vec<usize>,
    new_gammas: Vec<(usize, f64, bool)>,
    old_gammas: Vec<(usize, f64, bool)>,
    old_signals: Vec<(usize, f64)>,
    servers: Vec<(usize, f64, u32)>,
    inverse: MoveDesc,
    gain_sum: f64,
    gamma_sum: f64,
    lambda_sum: f64,
    nonfinite: u32,
    num_offloaded: usize,
}

/// The PR-1 `IncrementalObjective`, byte-for-byte in its arithmetic:
/// unpadded AoS-flavored rows, scalar folds, no speculative scoring.
#[derive(Debug, Clone)]
pub struct Pr1IncrementalObjective<'a> {
    scenario: &'a Scenario,
    x: Assignment,
    num_sub: usize,
    noise: f64,
    sqrt_eta: Vec<f64>,
    /// `φ_u + ψ_u·p_u`, the numerator of the Γ term.
    gamma_num: Vec<f64>,
    /// `gain_constant − download_cost`, the benefit of offloading `u`.
    gain_const: Vec<f64>,
    capacity: Vec<f64>,
    /// Weighted gains `p_u·h[u][s][j]`, laid out `[u][j][s]` (unpadded).
    wgain: Vec<f64>,
    /// `totals[j·S + s] = Σ_{k transmitting on j} p_k·h[k][s][j]`.
    totals: Vec<f64>,
    gamma_of: Vec<f64>,
    signal_of: Vec<f64>,
    gamma_bad: Vec<bool>,
    sum_sqrt_eta: Vec<f64>,
    users_on: Vec<u32>,
    gain_sum: f64,
    gamma_sum: f64,
    lambda_sum: f64,
    nonfinite: u32,
    num_offloaded: usize,
    log: MoveLog,
}

impl<'a> Pr1IncrementalObjective<'a> {
    /// Builds the incremental state for `x` in `O(T·S)`.
    ///
    /// # Errors
    ///
    /// Fails if `x` does not fit the scenario's geometry.
    pub fn new(scenario: &'a Scenario, x: Assignment) -> Result<Self, Error> {
        x.verify_feasible(scenario)?;
        let users = scenario.num_users();
        let servers = scenario.num_servers();
        let num_sub = scenario.num_subchannels();
        let powers = scenario.tx_powers_watts();
        let gains = scenario.gains();
        let mut wgain = vec![0.0; users * num_sub * servers];
        for u in 0..users {
            for j in 0..num_sub {
                for s in 0..servers {
                    wgain[(u * num_sub + j) * servers + s] = powers[u]
                        * gains.gain(UserId::new(u), ServerId::new(s), SubchannelId::new(j));
                }
            }
        }
        let mut inc = Self {
            scenario,
            x,
            num_sub,
            noise: scenario.noise().as_watts(),
            sqrt_eta: (0..users)
                .map(|u| scenario.coefficients(UserId::new(u)).eta.sqrt())
                .collect(),
            gamma_num: (0..users)
                .map(|u| {
                    let c = scenario.coefficients(UserId::new(u));
                    c.phi + c.psi * powers[u]
                })
                .collect(),
            gain_const: (0..users)
                .map(|u| {
                    let c = scenario.coefficients(UserId::new(u));
                    c.gain_constant - c.download_cost
                })
                .collect(),
            capacity: (0..servers)
                .map(|s| scenario.server(ServerId::new(s)).capacity().as_hz())
                .collect(),
            wgain,
            totals: vec![0.0; servers * num_sub],
            gamma_of: vec![0.0; users],
            signal_of: vec![0.0; users],
            gamma_bad: vec![false; users],
            sum_sqrt_eta: vec![0.0; servers],
            users_on: vec![0; servers],
            gain_sum: 0.0,
            gamma_sum: 0.0,
            lambda_sum: 0.0,
            nonfinite: 0,
            num_offloaded: 0,
            log: MoveLog::with_capacity(servers),
        };
        inc.resync();
        Ok(inc)
    }

    /// The current decision.
    pub fn assignment(&self) -> &Assignment {
        &self.x
    }

    /// The current `J*(X)`.
    #[inline]
    pub fn current(&self) -> f64 {
        if self.num_offloaded == 0 {
            return 0.0;
        }
        if self.nonfinite > 0 {
            return f64::NEG_INFINITY;
        }
        self.gain_sum - self.gamma_sum - self.lambda_sum
    }

    /// The contiguous weighted-gain row `p_u·h[u][·][j]` over all servers.
    #[inline]
    fn wgain_row(&self, u: usize, j: usize) -> &[f64] {
        let servers = self.capacity.len();
        &self.wgain[(u * self.num_sub + j) * servers..][..servers]
    }

    /// Λ term of one server from its current `Σ√η` sum (Eq. 23).
    #[inline]
    fn lambda_term(&self, s: usize) -> f64 {
        let sum = self.sum_sqrt_eta[s];
        if sum > 0.0 {
            sum * sum / self.capacity[s]
        } else {
            0.0
        }
    }

    /// Rebuilds every sum from the assignment, discarding drift and any
    /// pending undo state.
    pub fn resync(&mut self) {
        self.log.discard();
        let servers = self.scenario.num_servers();
        self.totals.iter_mut().for_each(|t| *t = 0.0);
        for (u, _, j) in self.x.offloaded() {
            let row = (u.index() * self.num_sub + j.index()) * servers;
            let slots = &mut self.totals[j.index() * servers..][..servers];
            for (slot, &w) in slots.iter_mut().zip(&self.wgain[row..][..servers]) {
                *slot += w;
            }
        }

        self.gain_sum = 0.0;
        self.gamma_sum = 0.0;
        self.nonfinite = 0;
        self.num_offloaded = 0;
        self.gamma_of.iter_mut().for_each(|g| *g = 0.0);
        self.gamma_bad.iter_mut().for_each(|b| *b = false);
        for (u, s, j) in self.x.offloaded() {
            self.num_offloaded += 1;
            self.gain_sum += self.gain_const[u.index()];
            self.signal_of[u.index()] = self.wgain_row(u.index(), j.index())[s.index()];
            let term = self.gamma_term(u, s, j);
            if term.is_finite() {
                self.gamma_sum += term;
                self.gamma_of[u.index()] = term;
            } else {
                self.gamma_bad[u.index()] = true;
                self.nonfinite += 1;
            }
        }

        self.lambda_sum = 0.0;
        for s in 0..servers {
            let mut sum = 0.0;
            let mut count = 0;
            for j in 0..self.num_sub {
                if let Some(u) = self.x.occupant(ServerId::new(s), SubchannelId::new(j)) {
                    sum += self.sqrt_eta[u.index()];
                    count += 1;
                }
            }
            self.sum_sqrt_eta[s] = sum;
            self.users_on[s] = count;
            self.lambda_sum += self.lambda_term(s);
        }
    }

    /// The Γ term of user `u` transmitting at `(s, j)`, from the current
    /// totals — the exact expression of the reference evaluator.
    #[inline]
    fn gamma_term(&self, u: UserId, s: ServerId, j: SubchannelId) -> f64 {
        let signal = self.wgain_row(u.index(), j.index())[s.index()];
        let interference =
            (self.totals[j.index() * self.capacity.len() + s.index()] - signal).max(0.0);
        let sinr = signal / (interference + self.noise);
        self.gamma_num[u.index()] / (1.0 + sinr).log2()
    }

    /// Applies `mv` to the assignment and all sums, returning
    /// `J*(X_new) − J*(X_old)`. Writes to the totals and Γ arrays are
    /// buffered; call [`undo`](Self::undo) to roll back bit-exactly or
    /// [`commit`](Self::commit) to flush them. Applying a new move
    /// implicitly commits the previous one.
    ///
    /// # Panics
    ///
    /// Panics if an op is invalid against the current assignment.
    pub fn apply(&mut self, mv: &MoveDesc) -> f64 {
        self.commit();
        let before = self.current();
        self.log.begin(
            self.gain_sum,
            self.gamma_sum,
            self.lambda_sum,
            self.nonfinite,
            self.num_offloaded,
        );

        // Subchannels whose membership changed: every user transmitting on
        // one of them needs its Γ term refreshed.
        let mut touched: [Option<SubchannelId>; MAX_MOVE_OPS] = [None; MAX_MOVE_OPS];
        let mut touch = |j: SubchannelId| {
            for slot in touched.iter_mut() {
                match slot {
                    Some(seen) if *seen == j => return,
                    None => {
                        *slot = Some(j);
                        return;
                    }
                    _ => {}
                }
            }
        };
        // Power contributions to fold into the totals, in op order:
        // `(user, subchannel, joined)`.
        let mut changes: [Option<(UserId, SubchannelId, bool)>; MAX_MOVE_OPS] =
            [None; MAX_MOVE_OPS];
        let mut num_changes = 0usize;

        for op in mv.ops() {
            match op {
                PrimOp::Release { user } => {
                    let (s, j) = self
                        .x
                        .release(user)
                        .expect("MoveDesc releases an offloaded user");
                    self.leave(user, s);
                    touch(j);
                    changes[num_changes] = Some((user, j, false));
                    self.log.inverse.push(PrimOp::Assign {
                        user,
                        server: s,
                        subchannel: j,
                    });
                }
                PrimOp::Assign {
                    user,
                    server,
                    subchannel,
                } => {
                    self.x
                        .assign(user, server, subchannel)
                        .expect("MoveDesc assigns into a free slot");
                    self.join(user, server, subchannel);
                    touch(subchannel);
                    changes[num_changes] = Some((user, subchannel, true));
                    self.log.inverse.push(PrimOp::Release { user });
                }
            }
            num_changes += 1;
        }
        self.log.inverse.reverse();
        let changes = &changes[..num_changes];

        // Fused totals + Γ pass over each affected subchannel: seed the
        // buffered totals row from the committed values, sweep each op's
        // contiguous weighted-gain row over it, then refresh every slot
        // occupant's Γ term from the buffered value — the scalar,
        // log2-in-the-gather-loop fold the SoA path replaced.
        let servers = self.scenario.num_servers();
        for j in touched.iter().flatten() {
            let ji = j.index();
            self.log.touched_subs.push(ji);
            let base = self.log.new_totals.len();
            self.log
                .new_totals
                .extend_from_slice(&self.totals[ji * servers..][..servers]);
            for (user, ja, joined) in changes.iter().flatten() {
                if ja != j {
                    continue;
                }
                let row = &self.wgain[(user.index() * self.num_sub + ji) * servers..][..servers];
                let slots = &mut self.log.new_totals[base..];
                if *joined {
                    for (slot, &w) in slots.iter_mut().zip(row) {
                        *slot += w;
                    }
                } else {
                    for (slot, &w) in slots.iter_mut().zip(row) {
                        *slot -= w;
                    }
                }
            }
            let mut row_old = 0.0;
            let mut row_new = 0.0;
            for t in 0..servers {
                let v = self.log.new_totals[base + t];
                let t = ServerId::new(t);
                if let Some(occupant) = self.x.occupant(t, *j) {
                    let (old, new) = self.refresh_gamma(occupant, v);
                    row_old += old;
                    row_new += new;
                }
            }
            self.gamma_sum += row_new - row_old;
        }

        self.log.valid = true;
        self.current() - before
    }

    /// Membership bookkeeping when `user` leaves server `s`.
    fn leave(&mut self, user: UserId, s: ServerId) {
        let u = user.index();
        self.gain_sum -= self.gain_const[u];
        self.num_offloaded -= 1;

        self.log
            .old_gammas
            .push((u, self.gamma_of[u], self.gamma_bad[u]));
        if self.gamma_bad[u] {
            self.nonfinite -= 1;
            self.gamma_bad[u] = false;
        } else {
            self.gamma_sum -= self.gamma_of[u];
        }
        self.gamma_of[u] = 0.0;

        let si = s.index();
        self.log
            .servers
            .push((si, self.sum_sqrt_eta[si], self.users_on[si]));
        let old_term = self.lambda_term(si);
        self.users_on[si] -= 1;
        if self.users_on[si] == 0 {
            self.sum_sqrt_eta[si] = 0.0;
        } else {
            self.sum_sqrt_eta[si] -= self.sqrt_eta[u];
        }
        self.lambda_sum += self.lambda_term(si) - old_term;
    }

    /// Membership bookkeeping when `user` joins slot `(s, j)`.
    fn join(&mut self, user: UserId, s: ServerId, j: SubchannelId) {
        let u = user.index();
        self.gain_sum += self.gain_const[u];
        self.num_offloaded += 1;

        self.log.old_signals.push((u, self.signal_of[u]));
        self.signal_of[u] = self.wgain_row(u, j.index())[s.index()];

        let si = s.index();
        self.log
            .servers
            .push((si, self.sum_sqrt_eta[si], self.users_on[si]));
        let old_term = self.lambda_term(si);
        self.users_on[si] += 1;
        self.sum_sqrt_eta[si] += self.sqrt_eta[u];
        self.lambda_sum += self.lambda_term(si) - old_term;
    }

    /// Recomputes the Γ term of slot occupant `v` against the slot's
    /// post-move total, buffering the write.
    #[inline]
    fn refresh_gamma(&mut self, v: UserId, total: f64) -> (f64, f64) {
        let u = v.index();
        let old = if self.gamma_bad[u] {
            self.nonfinite -= 1;
            0.0
        } else {
            self.gamma_of[u]
        };
        let signal = self.signal_of[u];
        let interference = (total - signal).max(0.0);
        let sinr = signal / (interference + self.noise);
        let term = self.gamma_num[u] / (1.0 + sinr).log2();
        if term.is_finite() {
            self.log.new_gammas.push((u, term, false));
            (old, term)
        } else {
            self.log.new_gammas.push((u, 0.0, true));
            self.nonfinite += 1;
            (old, 0.0)
        }
    }

    /// Rolls back the last applied (uncommitted) move bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics if there is no uncommitted move.
    pub fn undo(&mut self) {
        assert!(self.log.valid, "no uncommitted move to undo");
        self.log.valid = false;
        self.log.new_totals.clear();
        self.log.touched_subs.clear();
        self.log.new_gammas.clear();
        for (u, old_term, old_bad) in self.log.old_gammas.drain(..).rev() {
            self.gamma_of[u] = old_term;
            self.gamma_bad[u] = old_bad;
        }
        for (u, old_signal) in self.log.old_signals.drain(..).rev() {
            self.signal_of[u] = old_signal;
        }
        for (s, old_sum, old_count) in self.log.servers.drain(..).rev() {
            self.sum_sqrt_eta[s] = old_sum;
            self.users_on[s] = old_count;
        }
        self.gain_sum = self.log.gain_sum;
        self.gamma_sum = self.log.gamma_sum;
        self.lambda_sum = self.log.lambda_sum;
        self.nonfinite = self.log.nonfinite;
        self.num_offloaded = self.log.num_offloaded;
        let inverse = self.log.inverse;
        self.log.inverse = MoveDesc::noop();
        // The logged inverse ops are valid by construction, so skip the
        // feasibility checks of `MoveDesc::apply_to` on this hot path.
        for op in inverse.ops() {
            match op {
                PrimOp::Assign {
                    user,
                    server,
                    subchannel,
                } => self.x.restore_assign(user, server, subchannel),
                PrimOp::Release { user } => {
                    self.x.release(user);
                }
            }
        }
    }

    /// Accepts the last applied move, flushing its buffered totals and Γ
    /// writes into the persistent arrays. A no-op without a pending move.
    pub fn commit(&mut self) {
        if self.log.valid {
            let servers = self.capacity.len();
            for (k, &j) in self.log.touched_subs.iter().enumerate() {
                self.totals[j * servers..][..servers]
                    .copy_from_slice(&self.log.new_totals[k * servers..][..servers]);
            }
            for &(u, term, bad) in &self.log.new_gammas {
                self.gamma_of[u] = term;
                self.gamma_bad[u] = bad;
            }
        }
        self.log.discard();
    }
}

impl MoveLog {
    /// An empty journal with buffers sized for the worst-case move against
    /// `servers` stations, so even the first apply does not allocate.
    fn with_capacity(servers: usize) -> Self {
        Self {
            new_totals: Vec::with_capacity(MAX_MOVE_OPS * servers),
            touched_subs: Vec::with_capacity(MAX_MOVE_OPS),
            new_gammas: Vec::with_capacity(MAX_MOVE_OPS * (servers + 1)),
            old_gammas: Vec::with_capacity(MAX_MOVE_OPS),
            old_signals: Vec::with_capacity(MAX_MOVE_OPS),
            servers: Vec::with_capacity(2 * MAX_MOVE_OPS),
            ..Self::default()
        }
    }

    /// Snapshots the scalar sums for the next move.
    fn begin(
        &mut self,
        gain_sum: f64,
        gamma_sum: f64,
        lambda_sum: f64,
        nonfinite: u32,
        num_offloaded: usize,
    ) {
        debug_assert!(!self.valid && self.new_totals.is_empty() && self.inverse.is_empty());
        self.gain_sum = gain_sum;
        self.gamma_sum = gamma_sum;
        self.lambda_sum = lambda_sum;
        self.nonfinite = nonfinite;
        self.num_offloaded = num_offloaded;
    }

    fn discard(&mut self) {
        self.valid = false;
        self.new_totals.clear();
        self.touched_subs.clear();
        self.new_gammas.clear();
        self.old_gammas.clear();
        self.old_signals.clear();
        self.servers.clear();
        self.inverse = MoveDesc::noop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::IncrementalObjective;
    use crate::scenario::UserSpec;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_scenario(seed: u64, users: usize, servers: usize, subs: usize) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let gains = ChannelGains::from_fn(users, servers, subs, |_, _, _| {
            10.0_f64.powf(rng.gen_range(-13.0..-9.0))
        })
        .unwrap();
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
            vec![ServerProfile::paper_default(); servers],
            OfdmaConfig::new(Hertz::from_mega(20.0), subs).unwrap(),
            gains,
            Watts::new(1e-13),
        )
        .unwrap()
    }

    fn random_move(scenario: &Scenario, x: &Assignment, rng: &mut StdRng) -> MoveDesc {
        let u = UserId::new(rng.gen_range(0..scenario.num_users()));
        match rng.gen_range(0..3) {
            0 => MoveDesc::relocate(x, u, None),
            1 => {
                let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
                let j = SubchannelId::new(rng.gen_range(0..scenario.num_subchannels()));
                MoveDesc::relocate_evicting(x, u, s, j)
            }
            _ => {
                let v = UserId::new(rng.gen_range(0..scenario.num_users()));
                MoveDesc::swap(x, u, v)
            }
        }
    }

    /// The frozen PR-1 evaluator and the live SoA path replay the same
    /// move stream bit-for-bit: identical `current()` after every apply,
    /// undo and commit. This pins the layout refactor to the frozen
    /// arithmetic — any reordering of a float fold breaks this test.
    #[test]
    fn pr1_baseline_and_live_path_agree_bit_for_bit() {
        for seed in [11u64, 23, 47] {
            let sc = random_scenario(seed, 24, 5, 3);
            let x = Assignment::all_local(&sc);
            let mut old = Pr1IncrementalObjective::new(&sc, x.clone()).unwrap();
            let mut new = IncrementalObjective::new(&sc, x).unwrap();
            assert_eq!(old.current().to_bits(), new.current().to_bits());

            let mut rng = StdRng::seed_from_u64(seed ^ 0xba5e);
            for step in 0..2_000 {
                let mv = random_move(&sc, new.assignment(), &mut rng);
                let d_old = old.apply(&mv);
                let d_new = new.apply(&mv);
                assert_eq!(
                    d_old.to_bits(),
                    d_new.to_bits(),
                    "delta diverged at step {step} (seed {seed})"
                );
                if rng.gen_bool(0.5) {
                    old.undo();
                    new.undo();
                } else {
                    old.commit();
                    new.commit();
                }
                assert_eq!(
                    old.current().to_bits(),
                    new.current().to_bits(),
                    "objective diverged at step {step} (seed {seed})"
                );
            }
            old.resync();
            new.resync();
            assert_eq!(old.current().to_bits(), new.current().to_bits());
        }
    }
}
