//! JTORA problem instances.

use crate::coefficients::UserCoefficients;
use mec_radio::{ChannelGains, OfdmaConfig};
use mec_types::{
    constants, BitsPerSecond, Cycles, DbMilliwatts, DeviceProfile, Error, LocalCost,
    ProviderPreference, ServerId, ServerProfile, Task, UserId, UserPreferences, Watts,
};
use serde::{Deserialize, Serialize};

/// Everything the model needs to know about one user: its task, its
/// hardware, and how it (and the provider) weighs time against energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserSpec {
    /// The user's atomic computation task `⟨d_u, w_u⟩`.
    pub task: Task,
    /// The handset hardware profile (CPU, κ, transmit power).
    pub device: DeviceProfile,
    /// Time/energy preference weights `β_u`.
    pub preferences: UserPreferences,
    /// Provider priority `λ_u`.
    pub lambda: ProviderPreference,
}

impl UserSpec {
    /// A user with the paper's default device, preferences, priority and
    /// input size (420 KB), with the given task workload.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `workload` is non-positive.
    pub fn paper_default_with_workload(workload: Cycles) -> Result<Self, Error> {
        Ok(Self {
            task: Task::new(constants::DEFAULT_TASK_DATA, workload)?,
            device: DeviceProfile::paper_default(),
            preferences: UserPreferences::balanced(),
            lambda: ProviderPreference::MAX,
        })
    }
}

/// A complete, validated JTORA problem instance.
///
/// Immutable once built; solvers share it by reference. All derived
/// per-user quantities used in the objective (`t_local`, `E_local`,
/// `φ/ψ/η`, transmit powers in watts) are precomputed at construction.
#[derive(Debug, Clone)]
pub struct Scenario {
    users: Vec<UserSpec>,
    servers: Vec<ServerProfile>,
    ofdma: OfdmaConfig,
    gains: ChannelGains,
    noise: Watts,
    downlink: Option<BitsPerSecond>,
    /// Fixed external received power (watts) at `[j·S + s]`, added to the
    /// interference totals of every evaluation. `None` means no external
    /// interference — the exact historical behavior. This is the halo
    /// channel of the sharded solver: each cluster sees the rest of the
    /// city as a frozen per-(server, subchannel) power field.
    external_rx: Option<Vec<f64>>,
    // Precomputed, indexed by user.
    local_costs: Vec<LocalCost>,
    tx_powers_watts: Vec<f64>,
    coefficients: Vec<UserCoefficients>,
}

impl Scenario {
    /// Builds and validates a scenario.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if the gain tensor does not match the
    ///   user/server/subchannel counts.
    /// * [`Error::InvalidParameter`] if there are no users or servers, or
    ///   the noise power is non-positive.
    pub fn new(
        users: Vec<UserSpec>,
        servers: Vec<ServerProfile>,
        ofdma: OfdmaConfig,
        gains: ChannelGains,
        noise: Watts,
    ) -> Result<Self, Error> {
        if users.is_empty() {
            return Err(Error::invalid("U", "scenario needs at least one user"));
        }
        if servers.is_empty() {
            return Err(Error::invalid("S", "scenario needs at least one server"));
        }
        if !noise.is_finite() || noise.as_watts() <= 0.0 {
            return Err(Error::invalid("sigma2", "noise power must be positive"));
        }
        if gains.num_users() != users.len() {
            return Err(Error::DimensionMismatch {
                what: "channel gains vs users",
                expected: users.len(),
                actual: gains.num_users(),
            });
        }
        if gains.num_servers() != servers.len() {
            return Err(Error::DimensionMismatch {
                what: "channel gains vs servers",
                expected: servers.len(),
                actual: gains.num_servers(),
            });
        }
        if gains.num_subchannels() != ofdma.num_subchannels() {
            return Err(Error::DimensionMismatch {
                what: "channel gains vs subchannels",
                expected: ofdma.num_subchannels(),
                actual: gains.num_subchannels(),
            });
        }

        let local_costs: Vec<LocalCost> =
            users.iter().map(|u| u.task.local_cost(&u.device)).collect();
        let tx_powers_watts: Vec<f64> = users
            .iter()
            .map(|u| u.device.tx_power_watts().as_watts())
            .collect();
        let subchannel_width = ofdma.subchannel_width();
        let coefficients: Vec<UserCoefficients> = users
            .iter()
            .zip(&local_costs)
            .map(|(u, lc)| UserCoefficients::compute(u, lc, subchannel_width, None))
            .collect();

        Ok(Self {
            users,
            servers,
            ofdma,
            gains,
            noise,
            downlink: None,
            external_rx: None,
            local_costs,
            tx_powers_watts,
            coefficients,
        })
    }

    /// Enables the downlink extension (§III-A.2): results of size
    /// [`Task::output`] are returned to the user at the given fixed rate,
    /// and the per-user objective coefficients are recomputed to include
    /// the download cost.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the rate is non-positive or
    /// non-finite.
    pub fn with_downlink(mut self, rate: BitsPerSecond) -> Result<Self, Error> {
        if !rate.is_finite() || rate.as_bps() <= 0.0 {
            return Err(Error::invalid("R_down", "downlink rate must be positive"));
        }
        self.downlink = Some(rate);
        let width = self.ofdma.subchannel_width();
        self.coefficients = self
            .users
            .iter()
            .zip(&self.local_costs)
            .map(|(u, lc)| UserCoefficients::compute(u, lc, width, Some(rate)))
            .collect();
        Ok(self)
    }

    /// The fixed downlink rate, if the downlink is modeled.
    #[inline]
    pub fn downlink(&self) -> Option<BitsPerSecond> {
        self.downlink
    }

    /// Installs a fixed external received-power field: `external[j·S + s]`
    /// watts are added to the interference total at server `s` on
    /// subchannel `j` in every objective/SINR evaluation. The sharded
    /// solver uses this to expose the frozen rest-of-city halo to a
    /// cluster; `None` (the default) reproduces the isolated-scenario
    /// semantics exactly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the field is not `N·S`
    /// entries long and [`Error::InvalidParameter`] if any entry is
    /// negative or non-finite.
    pub fn set_external_rx(&mut self, external: Option<Vec<f64>>) -> Result<(), Error> {
        if let Some(ext) = &external {
            let expected = self.num_subchannels() * self.num_servers();
            if ext.len() != expected {
                return Err(Error::DimensionMismatch {
                    what: "external_rx vs subchannels x servers",
                    expected,
                    actual: ext.len(),
                });
            }
            if let Some(bad) = ext.iter().find(|v| !v.is_finite() || **v < 0.0) {
                return Err(Error::invalid(
                    "external_rx",
                    format!("entries must be finite and >= 0, got {bad}"),
                ));
            }
        }
        self.external_rx = external;
        Ok(())
    }

    /// Builder-style variant of [`Scenario::set_external_rx`].
    ///
    /// # Errors
    ///
    /// As [`Scenario::set_external_rx`].
    pub fn with_external_rx(mut self, external: Vec<f64>) -> Result<Self, Error> {
        self.set_external_rx(Some(external))?;
        Ok(self)
    }

    /// Removes and returns the installed external field (if any), leaving
    /// the scenario in the isolated (`None`) state. The sharded engine's
    /// halo loop uses this to recycle the field's buffer across visits
    /// instead of allocating a fresh `N·S` vector per installation.
    pub fn take_external_rx(&mut self) -> Option<Vec<f64>> {
        self.external_rx.take()
    }

    /// The external received-power field at `[j·S + s]`, if installed.
    #[inline]
    pub fn external_rx(&self) -> Option<&[f64]> {
        self.external_rx.as_deref()
    }

    /// Builds the sub-scenario restricted to the given users and servers:
    /// new user `v` is old `users[v]`, new server `t` is old `servers[t]`,
    /// with gain rows carried along in their existing storage layout. All
    /// derived per-user quantities are recomputed from the same specs, so
    /// they are bit-identical to the parent's. Any external-rx field is
    /// *not* inherited — callers that shard a scenario install each
    /// cluster's halo explicitly per sweep.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] if `users` or `servers` is empty.
    /// * [`Error::UnknownEntity`] for an out-of-range id.
    pub fn subset(&self, users: &[UserId], servers: &[ServerId]) -> Result<Self, Error> {
        for &u in users {
            if u.index() >= self.users.len() {
                return Err(Error::UnknownEntity {
                    kind: "user",
                    index: u.index(),
                    count: self.users.len(),
                });
            }
        }
        for &s in servers {
            if s.index() >= self.servers.len() {
                return Err(Error::UnknownEntity {
                    kind: "server",
                    index: s.index(),
                    count: self.servers.len(),
                });
            }
        }
        let sub_users: Vec<UserSpec> = users.iter().map(|&u| self.users[u.index()]).collect();
        let sub_servers: Vec<ServerProfile> =
            servers.iter().map(|&s| self.servers[s.index()]).collect();
        let gains = self.gains.subset(users, servers)?;
        let base = Self::new(sub_users, sub_servers, self.ofdma, gains, self.noise)?;
        match self.downlink {
            Some(rate) => base.with_downlink(rate),
            None => Ok(base),
        }
    }

    /// Overrides user `u`'s uplink transmit power — the mutation hook for
    /// the joint power-control extension (the paper keeps `p_u` fixed and
    /// names power optimization as future work).
    ///
    /// The objective coefficients `φ/ψ/η` do not depend on `p_u` (it
    /// enters Eq. 19 only as the `ψ_u·p_u` multiplier and through the
    /// SINR), so only the cached linear power needs updating.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownEntity`] for an out-of-range user and
    /// [`Error::InvalidParameter`] for a non-finite power.
    pub fn set_tx_power(&mut self, u: UserId, power: DbMilliwatts) -> Result<(), Error> {
        let Some(spec) = self.users.get_mut(u.index()) else {
            return Err(Error::UnknownEntity {
                kind: "user",
                index: u.index(),
                count: self.tx_powers_watts.len(),
            });
        };
        spec.device = spec.device.with_tx_power(power)?;
        self.tx_powers_watts[u.index()] = power.to_watts().as_watts();
        Ok(())
    }

    /// Number of users `U`.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of servers `S`.
    #[inline]
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Number of subchannels `N`.
    #[inline]
    pub fn num_subchannels(&self) -> usize {
        self.ofdma.num_subchannels()
    }

    /// All user specs, indexed by [`UserId`].
    #[inline]
    pub fn users(&self) -> &[UserSpec] {
        &self.users
    }

    /// One user spec.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn user(&self, u: UserId) -> &UserSpec {
        &self.users[u.index()]
    }

    /// All server profiles, indexed by [`ServerId`].
    #[inline]
    pub fn servers(&self) -> &[ServerProfile] {
        &self.servers
    }

    /// One server profile.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn server(&self, s: ServerId) -> &ServerProfile {
        &self.servers[s.index()]
    }

    /// The OFDMA band plan.
    #[inline]
    pub fn ofdma(&self) -> &OfdmaConfig {
        &self.ofdma
    }

    /// The channel-gain tensor.
    #[inline]
    pub fn gains(&self) -> &ChannelGains {
        &self.gains
    }

    /// Background noise power `σ²`.
    #[inline]
    pub fn noise(&self) -> Watts {
        self.noise
    }

    /// Precomputed local execution cost of user `u`.
    #[inline]
    pub fn local_cost(&self, u: UserId) -> LocalCost {
        self.local_costs[u.index()]
    }

    /// Per-user linear transmit powers in watts (indexed by user).
    #[inline]
    pub fn tx_powers_watts(&self) -> &[f64] {
        &self.tx_powers_watts
    }

    /// Precomputed objective coefficients `(φ_u, ψ_u, η_u)` of user `u`.
    #[inline]
    pub fn coefficients(&self, u: UserId) -> &UserCoefficients {
        &self.coefficients[u.index()]
    }

    /// Iterates over all user ids.
    pub fn user_ids(&self) -> impl Iterator<Item = UserId> + Clone {
        UserId::all(self.users.len())
    }

    /// Iterates over all server ids.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> + Clone {
        ServerId::all(self.servers.len())
    }

    /// Number of binary decision variables `n = U·S·N` (the exponent in
    /// the exhaustive search space `2^n`).
    pub fn num_decision_vars(&self) -> usize {
        self.num_users() * self.num_servers() * self.num_subchannels()
    }

    /// Re-indexes the user population: new user `v` is old user
    /// `perm[v]`, with the gain tensor rows carried along. The objective
    /// landscape is invariant under this relabeling (only user *ids*
    /// change), which makes it the canonical metamorphic transform for
    /// conformance testing.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if `perm` is not `U` entries long.
    /// * [`Error::UnknownEntity`] for an out-of-range old user id.
    /// * [`Error::InvalidParameter`] if `perm` repeats an old user (not a
    ///   permutation).
    pub fn permute_users(&self, perm: &[UserId]) -> Result<Self, Error> {
        if perm.len() != self.users.len() {
            return Err(Error::DimensionMismatch {
                what: "permutation vs users",
                expected: self.users.len(),
                actual: perm.len(),
            });
        }
        let mut seen = vec![false; self.users.len()];
        for &old in perm {
            if old.index() >= self.users.len() {
                return Err(Error::UnknownEntity {
                    kind: "user",
                    index: old.index(),
                    count: self.users.len(),
                });
            }
            if std::mem::replace(&mut seen[old.index()], true) {
                return Err(Error::invalid(
                    "perm",
                    format!("old user {old} appears more than once"),
                ));
            }
        }
        let users: Vec<UserSpec> = perm.iter().map(|&old| self.users[old.index()]).collect();
        // Row-gather via `subset` keeps the tensor's storage layout.
        let all_servers: Vec<ServerId> = self.server_ids().collect();
        let gains = self.gains.subset(perm, &all_servers)?;
        let base = Self::new(users, self.servers.clone(), self.ofdma, gains, self.noise)?;
        match self.downlink {
            Some(rate) => base.with_downlink(rate),
            None => Ok(base),
        }
    }

    /// Rescales every provider priority `λ_u` by the same factor and
    /// recomputes the derived coefficients. Since all of `φ/ψ/η` and the
    /// offloading gain are linear in `λ_u`, a uniform rescale scales the
    /// system utility `J*(X)` by the factor without moving the argmax —
    /// the second metamorphic transform used by the conformance harness.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if any rescaled `λ_u` leaves
    /// the valid `(0, 1]` range.
    pub fn with_scaled_lambdas(&self, factor: f64) -> Result<Self, Error> {
        let mut users = self.users.clone();
        for spec in &mut users {
            spec.lambda = ProviderPreference::new(spec.lambda.value() * factor)?;
        }
        let base = Self::new(
            users,
            self.servers.clone(),
            self.ofdma,
            self.gains.clone(),
            self.noise,
        )?;
        match self.downlink {
            Some(rate) => base.with_downlink(rate),
            None => Ok(base),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_radio::ChannelGains;
    use mec_types::Hertz;

    fn small() -> Scenario {
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(1000.0)).unwrap(); 3],
            vec![ServerProfile::paper_default(); 2],
            OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap(),
            ChannelGains::uniform(3, 2, 2, 1e-10).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap()
    }

    #[test]
    fn dimensions_are_exposed() {
        let s = small();
        assert_eq!(s.num_users(), 3);
        assert_eq!(s.num_servers(), 2);
        assert_eq!(s.num_subchannels(), 2);
        assert_eq!(s.num_decision_vars(), 12);
        assert_eq!(s.user_ids().count(), 3);
        assert_eq!(s.server_ids().count(), 2);
    }

    #[test]
    fn precomputed_local_costs_match_task_model() {
        let s = small();
        for u in s.user_ids() {
            let expected = s.user(u).task.local_cost(&s.user(u).device);
            assert_eq!(s.local_cost(u), expected);
        }
        // 1000 Mcycles / 1 GHz = 1 s; κ f² w = 5 J.
        assert!((s.local_cost(UserId::new(0)).time.as_secs() - 1.0).abs() < 1e-12);
        assert!((s.local_cost(UserId::new(0)).energy.as_joules() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn tx_powers_are_linear_watts() {
        let s = small();
        for p in s.tx_powers_watts() {
            assert!((p - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn set_tx_power_updates_cache_and_spec() {
        let mut s = small();
        s.set_tx_power(UserId::new(1), DbMilliwatts::new(20.0))
            .unwrap();
        assert!(
            (s.tx_powers_watts()[1] - 0.1).abs() < 1e-12,
            "20 dBm = 100 mW"
        );
        assert_eq!(s.user(UserId::new(1)).device.tx_power().as_dbm(), 20.0);
        // Other users untouched; coefficients unchanged (p-independent).
        assert!((s.tx_powers_watts()[0] - 0.01).abs() < 1e-12);
        let before = *small().coefficients(UserId::new(1));
        assert_eq!(*s.coefficients(UserId::new(1)), before);
        // Errors.
        assert!(s
            .set_tx_power(UserId::new(9), DbMilliwatts::new(10.0))
            .is_err());
        assert!(s
            .set_tx_power(UserId::new(0), DbMilliwatts::new(f64::NAN))
            .is_err());
    }

    #[test]
    fn mismatched_gains_are_rejected() {
        let users =
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(1000.0)).unwrap(); 3];
        let servers = vec![ServerProfile::paper_default(); 2];
        let ofdma = OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap();
        // Wrong user count in the tensor.
        let bad = ChannelGains::uniform(4, 2, 2, 1e-10).unwrap();
        assert!(matches!(
            Scenario::new(
                users.clone(),
                servers.clone(),
                ofdma,
                bad,
                Watts::new(1e-13)
            ),
            Err(Error::DimensionMismatch { .. })
        ));
        // Wrong subchannel count.
        let bad = ChannelGains::uniform(3, 2, 3, 1e-10).unwrap();
        assert!(Scenario::new(users, servers, ofdma, bad, Watts::new(1e-13)).is_err());
    }

    #[test]
    fn empty_populations_are_rejected() {
        let ofdma = OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap();
        let g = ChannelGains::uniform(0, 1, 2, 1e-10).unwrap();
        assert!(Scenario::new(
            vec![],
            vec![ServerProfile::paper_default()],
            ofdma,
            g,
            Watts::new(1e-13)
        )
        .is_err());
    }

    #[test]
    fn permute_users_relabels_specs_and_gain_rows() {
        let mut s = small();
        // Make the users distinguishable.
        s.set_tx_power(UserId::new(2), DbMilliwatts::new(20.0))
            .unwrap();
        let perm = [UserId::new(2), UserId::new(0), UserId::new(1)];
        let p = s.permute_users(&perm).unwrap();
        for (v, &old) in perm.iter().enumerate() {
            let v = UserId::new(v);
            assert_eq!(p.user(v), s.user(old));
            assert_eq!(p.coefficients(v), s.coefficients(old));
            assert_eq!(p.local_cost(v), s.local_cost(old));
            for srv in s.server_ids() {
                for j in 0..s.num_subchannels() {
                    let j = mec_types::SubchannelId::new(j);
                    assert_eq!(p.gains().gain(v, srv, j), s.gains().gain(old, srv, j));
                }
            }
        }
        // Invalid permutations are rejected.
        assert!(s.permute_users(&[UserId::new(0)]).is_err());
        assert!(s
            .permute_users(&[UserId::new(0), UserId::new(0), UserId::new(1)])
            .is_err());
        assert!(s
            .permute_users(&[UserId::new(0), UserId::new(1), UserId::new(9)])
            .is_err());
    }

    #[test]
    fn scaled_lambdas_rescale_coefficients_linearly() {
        let s = small();
        let scaled = s.with_scaled_lambdas(0.25).unwrap();
        for u in s.user_ids() {
            assert!(
                (scaled.user(u).lambda.value() - 0.25 * s.user(u).lambda.value()).abs() < 1e-15
            );
            let (a, b) = (scaled.coefficients(u), s.coefficients(u));
            assert!((a.phi - 0.25 * b.phi).abs() <= 1e-12 * b.phi.abs());
            assert!((a.psi - 0.25 * b.psi).abs() <= 1e-12 * b.psi.abs());
            assert!((a.eta - 0.25 * b.eta).abs() <= 1e-12 * b.eta.abs());
            assert!(
                (a.gain_constant - 0.25 * b.gain_constant).abs() <= 1e-12 * b.gain_constant.abs()
            );
            // Local costs and powers are λ-independent.
            assert_eq!(scaled.local_cost(u), s.local_cost(u));
        }
        // Factors that push λ out of (0, 1] are rejected.
        assert!(s.with_scaled_lambdas(0.0).is_err());
        assert!(s.with_scaled_lambdas(2.0).is_err());
    }

    #[test]
    fn external_rx_is_validated_and_exposed() {
        let mut s = small();
        assert!(s.external_rx().is_none());
        // Wrong length (N·S = 4 here), negative and non-finite entries.
        assert!(s.set_external_rx(Some(vec![0.0; 3])).is_err());
        assert!(s.set_external_rx(Some(vec![-1.0; 4])).is_err());
        assert!(s.set_external_rx(Some(vec![f64::NAN; 4])).is_err());
        s.set_external_rx(Some(vec![1e-12; 4])).unwrap();
        assert_eq!(s.external_rx().unwrap().len(), 4);
        s.set_external_rx(None).unwrap();
        assert!(s.external_rx().is_none());
        let s = small().with_external_rx(vec![0.0; 4]).unwrap();
        assert!(s.external_rx().is_some());
        // take_external_rx hands the buffer back for reuse.
        let mut s = small().with_external_rx(vec![2e-12; 4]).unwrap();
        let taken = s.take_external_rx().unwrap();
        assert_eq!(taken, vec![2e-12; 4]);
        assert!(s.external_rx().is_none());
        assert!(s.take_external_rx().is_none());
    }

    #[test]
    fn subset_restricts_population_and_keeps_physics() {
        let mut s = small();
        s.set_tx_power(UserId::new(2), DbMilliwatts::new(20.0))
            .unwrap();
        let users = [UserId::new(2), UserId::new(0)];
        let servers = [ServerId::new(1)];
        let sub = s.subset(&users, &servers).unwrap();
        assert_eq!(sub.num_users(), 2);
        assert_eq!(sub.num_servers(), 1);
        assert_eq!(sub.num_subchannels(), 2);
        for (v, &old) in users.iter().enumerate() {
            let v = UserId::new(v);
            assert_eq!(sub.user(v), s.user(old));
            assert_eq!(sub.coefficients(v), s.coefficients(old));
            assert_eq!(sub.local_cost(v), s.local_cost(old));
            assert_eq!(
                sub.tx_powers_watts()[v.index()],
                s.tx_powers_watts()[old.index()]
            );
            for j in 0..2 {
                let j = mec_types::SubchannelId::new(j);
                assert_eq!(
                    sub.gains().gain(v, ServerId::new(0), j),
                    s.gains().gain(old, ServerId::new(1), j)
                );
            }
        }
        // The subset does not inherit an external-rx field.
        let mut parent = s.clone();
        parent.set_external_rx(Some(vec![1e-12; 4])).unwrap();
        assert!(parent
            .subset(&users, &servers)
            .unwrap()
            .external_rx()
            .is_none());
        // Degenerate and out-of-range subsets are rejected.
        assert!(s.subset(&[], &servers).is_err());
        assert!(s.subset(&users, &[]).is_err());
        assert!(s.subset(&[UserId::new(9)], &servers).is_err());
        assert!(s.subset(&users, &[ServerId::new(5)]).is_err());
    }

    #[test]
    fn nonpositive_noise_is_rejected() {
        let users = vec![UserSpec::paper_default_with_workload(Cycles::from_mega(1000.0)).unwrap()];
        let ofdma = OfdmaConfig::new(Hertz::from_mega(20.0), 1).unwrap();
        let g = ChannelGains::uniform(1, 1, 1, 1e-10).unwrap();
        assert!(Scenario::new(
            users,
            vec![ServerProfile::paper_default()],
            ofdma,
            g,
            Watts::new(0.0)
        )
        .is_err());
    }
}
