//! JTORA problem instances.

use crate::coefficients::UserCoefficients;
use mec_radio::{ChannelGains, OfdmaConfig};
use mec_types::{
    constants, BitsPerSecond, Cycles, DbMilliwatts, DeviceProfile, Error, LocalCost,
    ProviderPreference, ServerId, ServerProfile, Task, UserId, UserPreferences, Watts,
};
use serde::{Deserialize, Serialize};

/// Everything the model needs to know about one user: its task, its
/// hardware, and how it (and the provider) weighs time against energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserSpec {
    /// The user's atomic computation task `⟨d_u, w_u⟩`.
    pub task: Task,
    /// The handset hardware profile (CPU, κ, transmit power).
    pub device: DeviceProfile,
    /// Time/energy preference weights `β_u`.
    pub preferences: UserPreferences,
    /// Provider priority `λ_u`.
    pub lambda: ProviderPreference,
}

impl UserSpec {
    /// A user with the paper's default device, preferences, priority and
    /// input size (420 KB), with the given task workload.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `workload` is non-positive.
    pub fn paper_default_with_workload(workload: Cycles) -> Result<Self, Error> {
        Ok(Self {
            task: Task::new(constants::DEFAULT_TASK_DATA, workload)?,
            device: DeviceProfile::paper_default(),
            preferences: UserPreferences::balanced(),
            lambda: ProviderPreference::MAX,
        })
    }
}

/// A complete, validated JTORA problem instance.
///
/// Immutable once built; solvers share it by reference. All derived
/// per-user quantities used in the objective (`t_local`, `E_local`,
/// `φ/ψ/η`, transmit powers in watts) are precomputed at construction.
#[derive(Debug, Clone)]
pub struct Scenario {
    users: Vec<UserSpec>,
    servers: Vec<ServerProfile>,
    ofdma: OfdmaConfig,
    gains: ChannelGains,
    noise: Watts,
    downlink: Option<BitsPerSecond>,
    // Precomputed, indexed by user.
    local_costs: Vec<LocalCost>,
    tx_powers_watts: Vec<f64>,
    coefficients: Vec<UserCoefficients>,
}

impl Scenario {
    /// Builds and validates a scenario.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if the gain tensor does not match the
    ///   user/server/subchannel counts.
    /// * [`Error::InvalidParameter`] if there are no users or servers, or
    ///   the noise power is non-positive.
    pub fn new(
        users: Vec<UserSpec>,
        servers: Vec<ServerProfile>,
        ofdma: OfdmaConfig,
        gains: ChannelGains,
        noise: Watts,
    ) -> Result<Self, Error> {
        if users.is_empty() {
            return Err(Error::invalid("U", "scenario needs at least one user"));
        }
        if servers.is_empty() {
            return Err(Error::invalid("S", "scenario needs at least one server"));
        }
        if !noise.is_finite() || noise.as_watts() <= 0.0 {
            return Err(Error::invalid("sigma2", "noise power must be positive"));
        }
        if gains.num_users() != users.len() {
            return Err(Error::DimensionMismatch {
                what: "channel gains vs users",
                expected: users.len(),
                actual: gains.num_users(),
            });
        }
        if gains.num_servers() != servers.len() {
            return Err(Error::DimensionMismatch {
                what: "channel gains vs servers",
                expected: servers.len(),
                actual: gains.num_servers(),
            });
        }
        if gains.num_subchannels() != ofdma.num_subchannels() {
            return Err(Error::DimensionMismatch {
                what: "channel gains vs subchannels",
                expected: ofdma.num_subchannels(),
                actual: gains.num_subchannels(),
            });
        }

        let local_costs: Vec<LocalCost> =
            users.iter().map(|u| u.task.local_cost(&u.device)).collect();
        let tx_powers_watts: Vec<f64> = users
            .iter()
            .map(|u| u.device.tx_power_watts().as_watts())
            .collect();
        let subchannel_width = ofdma.subchannel_width();
        let coefficients: Vec<UserCoefficients> = users
            .iter()
            .zip(&local_costs)
            .map(|(u, lc)| UserCoefficients::compute(u, lc, subchannel_width, None))
            .collect();

        Ok(Self {
            users,
            servers,
            ofdma,
            gains,
            noise,
            downlink: None,
            local_costs,
            tx_powers_watts,
            coefficients,
        })
    }

    /// Enables the downlink extension (§III-A.2): results of size
    /// [`Task::output`] are returned to the user at the given fixed rate,
    /// and the per-user objective coefficients are recomputed to include
    /// the download cost.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the rate is non-positive or
    /// non-finite.
    pub fn with_downlink(mut self, rate: BitsPerSecond) -> Result<Self, Error> {
        if !rate.is_finite() || rate.as_bps() <= 0.0 {
            return Err(Error::invalid("R_down", "downlink rate must be positive"));
        }
        self.downlink = Some(rate);
        let width = self.ofdma.subchannel_width();
        self.coefficients = self
            .users
            .iter()
            .zip(&self.local_costs)
            .map(|(u, lc)| UserCoefficients::compute(u, lc, width, Some(rate)))
            .collect();
        Ok(self)
    }

    /// The fixed downlink rate, if the downlink is modeled.
    #[inline]
    pub fn downlink(&self) -> Option<BitsPerSecond> {
        self.downlink
    }

    /// Overrides user `u`'s uplink transmit power — the mutation hook for
    /// the joint power-control extension (the paper keeps `p_u` fixed and
    /// names power optimization as future work).
    ///
    /// The objective coefficients `φ/ψ/η` do not depend on `p_u` (it
    /// enters Eq. 19 only as the `ψ_u·p_u` multiplier and through the
    /// SINR), so only the cached linear power needs updating.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownEntity`] for an out-of-range user and
    /// [`Error::InvalidParameter`] for a non-finite power.
    pub fn set_tx_power(&mut self, u: UserId, power: DbMilliwatts) -> Result<(), Error> {
        let Some(spec) = self.users.get_mut(u.index()) else {
            return Err(Error::UnknownEntity {
                kind: "user",
                index: u.index(),
                count: self.tx_powers_watts.len(),
            });
        };
        spec.device = spec.device.with_tx_power(power)?;
        self.tx_powers_watts[u.index()] = power.to_watts().as_watts();
        Ok(())
    }

    /// Number of users `U`.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of servers `S`.
    #[inline]
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Number of subchannels `N`.
    #[inline]
    pub fn num_subchannels(&self) -> usize {
        self.ofdma.num_subchannels()
    }

    /// All user specs, indexed by [`UserId`].
    #[inline]
    pub fn users(&self) -> &[UserSpec] {
        &self.users
    }

    /// One user spec.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn user(&self, u: UserId) -> &UserSpec {
        &self.users[u.index()]
    }

    /// All server profiles, indexed by [`ServerId`].
    #[inline]
    pub fn servers(&self) -> &[ServerProfile] {
        &self.servers
    }

    /// One server profile.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn server(&self, s: ServerId) -> &ServerProfile {
        &self.servers[s.index()]
    }

    /// The OFDMA band plan.
    #[inline]
    pub fn ofdma(&self) -> &OfdmaConfig {
        &self.ofdma
    }

    /// The channel-gain tensor.
    #[inline]
    pub fn gains(&self) -> &ChannelGains {
        &self.gains
    }

    /// Background noise power `σ²`.
    #[inline]
    pub fn noise(&self) -> Watts {
        self.noise
    }

    /// Precomputed local execution cost of user `u`.
    #[inline]
    pub fn local_cost(&self, u: UserId) -> LocalCost {
        self.local_costs[u.index()]
    }

    /// Per-user linear transmit powers in watts (indexed by user).
    #[inline]
    pub fn tx_powers_watts(&self) -> &[f64] {
        &self.tx_powers_watts
    }

    /// Precomputed objective coefficients `(φ_u, ψ_u, η_u)` of user `u`.
    #[inline]
    pub fn coefficients(&self, u: UserId) -> &UserCoefficients {
        &self.coefficients[u.index()]
    }

    /// Iterates over all user ids.
    pub fn user_ids(&self) -> impl Iterator<Item = UserId> + Clone {
        UserId::all(self.users.len())
    }

    /// Iterates over all server ids.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> + Clone {
        ServerId::all(self.servers.len())
    }

    /// Number of binary decision variables `n = U·S·N` (the exponent in
    /// the exhaustive search space `2^n`).
    pub fn num_decision_vars(&self) -> usize {
        self.num_users() * self.num_servers() * self.num_subchannels()
    }

    /// Re-indexes the user population: new user `v` is old user
    /// `perm[v]`, with the gain tensor rows carried along. The objective
    /// landscape is invariant under this relabeling (only user *ids*
    /// change), which makes it the canonical metamorphic transform for
    /// conformance testing.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if `perm` is not `U` entries long.
    /// * [`Error::UnknownEntity`] for an out-of-range old user id.
    /// * [`Error::InvalidParameter`] if `perm` repeats an old user (not a
    ///   permutation).
    pub fn permute_users(&self, perm: &[UserId]) -> Result<Self, Error> {
        if perm.len() != self.users.len() {
            return Err(Error::DimensionMismatch {
                what: "permutation vs users",
                expected: self.users.len(),
                actual: perm.len(),
            });
        }
        let mut seen = vec![false; self.users.len()];
        for &old in perm {
            if old.index() >= self.users.len() {
                return Err(Error::UnknownEntity {
                    kind: "user",
                    index: old.index(),
                    count: self.users.len(),
                });
            }
            if std::mem::replace(&mut seen[old.index()], true) {
                return Err(Error::invalid(
                    "perm",
                    format!("old user {old} appears more than once"),
                ));
            }
        }
        let users: Vec<UserSpec> = perm.iter().map(|&old| self.users[old.index()]).collect();
        let gains = ChannelGains::from_fn(
            self.num_users(),
            self.num_servers(),
            self.num_subchannels(),
            |v, s, j| self.gains.gain(perm[v.index()], s, j),
        )?;
        let base = Self::new(users, self.servers.clone(), self.ofdma, gains, self.noise)?;
        match self.downlink {
            Some(rate) => base.with_downlink(rate),
            None => Ok(base),
        }
    }

    /// Rescales every provider priority `λ_u` by the same factor and
    /// recomputes the derived coefficients. Since all of `φ/ψ/η` and the
    /// offloading gain are linear in `λ_u`, a uniform rescale scales the
    /// system utility `J*(X)` by the factor without moving the argmax —
    /// the second metamorphic transform used by the conformance harness.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if any rescaled `λ_u` leaves
    /// the valid `(0, 1]` range.
    pub fn with_scaled_lambdas(&self, factor: f64) -> Result<Self, Error> {
        let mut users = self.users.clone();
        for spec in &mut users {
            spec.lambda = ProviderPreference::new(spec.lambda.value() * factor)?;
        }
        let base = Self::new(
            users,
            self.servers.clone(),
            self.ofdma,
            self.gains.clone(),
            self.noise,
        )?;
        match self.downlink {
            Some(rate) => base.with_downlink(rate),
            None => Ok(base),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_radio::ChannelGains;
    use mec_types::Hertz;

    fn small() -> Scenario {
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(1000.0)).unwrap(); 3],
            vec![ServerProfile::paper_default(); 2],
            OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap(),
            ChannelGains::uniform(3, 2, 2, 1e-10).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap()
    }

    #[test]
    fn dimensions_are_exposed() {
        let s = small();
        assert_eq!(s.num_users(), 3);
        assert_eq!(s.num_servers(), 2);
        assert_eq!(s.num_subchannels(), 2);
        assert_eq!(s.num_decision_vars(), 12);
        assert_eq!(s.user_ids().count(), 3);
        assert_eq!(s.server_ids().count(), 2);
    }

    #[test]
    fn precomputed_local_costs_match_task_model() {
        let s = small();
        for u in s.user_ids() {
            let expected = s.user(u).task.local_cost(&s.user(u).device);
            assert_eq!(s.local_cost(u), expected);
        }
        // 1000 Mcycles / 1 GHz = 1 s; κ f² w = 5 J.
        assert!((s.local_cost(UserId::new(0)).time.as_secs() - 1.0).abs() < 1e-12);
        assert!((s.local_cost(UserId::new(0)).energy.as_joules() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn tx_powers_are_linear_watts() {
        let s = small();
        for p in s.tx_powers_watts() {
            assert!((p - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn set_tx_power_updates_cache_and_spec() {
        let mut s = small();
        s.set_tx_power(UserId::new(1), DbMilliwatts::new(20.0))
            .unwrap();
        assert!(
            (s.tx_powers_watts()[1] - 0.1).abs() < 1e-12,
            "20 dBm = 100 mW"
        );
        assert_eq!(s.user(UserId::new(1)).device.tx_power().as_dbm(), 20.0);
        // Other users untouched; coefficients unchanged (p-independent).
        assert!((s.tx_powers_watts()[0] - 0.01).abs() < 1e-12);
        let before = *small().coefficients(UserId::new(1));
        assert_eq!(*s.coefficients(UserId::new(1)), before);
        // Errors.
        assert!(s
            .set_tx_power(UserId::new(9), DbMilliwatts::new(10.0))
            .is_err());
        assert!(s
            .set_tx_power(UserId::new(0), DbMilliwatts::new(f64::NAN))
            .is_err());
    }

    #[test]
    fn mismatched_gains_are_rejected() {
        let users =
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(1000.0)).unwrap(); 3];
        let servers = vec![ServerProfile::paper_default(); 2];
        let ofdma = OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap();
        // Wrong user count in the tensor.
        let bad = ChannelGains::uniform(4, 2, 2, 1e-10).unwrap();
        assert!(matches!(
            Scenario::new(
                users.clone(),
                servers.clone(),
                ofdma,
                bad,
                Watts::new(1e-13)
            ),
            Err(Error::DimensionMismatch { .. })
        ));
        // Wrong subchannel count.
        let bad = ChannelGains::uniform(3, 2, 3, 1e-10).unwrap();
        assert!(Scenario::new(users, servers, ofdma, bad, Watts::new(1e-13)).is_err());
    }

    #[test]
    fn empty_populations_are_rejected() {
        let ofdma = OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap();
        let g = ChannelGains::uniform(0, 1, 2, 1e-10).unwrap();
        assert!(Scenario::new(
            vec![],
            vec![ServerProfile::paper_default()],
            ofdma,
            g,
            Watts::new(1e-13)
        )
        .is_err());
    }

    #[test]
    fn permute_users_relabels_specs_and_gain_rows() {
        let mut s = small();
        // Make the users distinguishable.
        s.set_tx_power(UserId::new(2), DbMilliwatts::new(20.0))
            .unwrap();
        let perm = [UserId::new(2), UserId::new(0), UserId::new(1)];
        let p = s.permute_users(&perm).unwrap();
        for (v, &old) in perm.iter().enumerate() {
            let v = UserId::new(v);
            assert_eq!(p.user(v), s.user(old));
            assert_eq!(p.coefficients(v), s.coefficients(old));
            assert_eq!(p.local_cost(v), s.local_cost(old));
            for srv in s.server_ids() {
                for j in 0..s.num_subchannels() {
                    let j = mec_types::SubchannelId::new(j);
                    assert_eq!(p.gains().gain(v, srv, j), s.gains().gain(old, srv, j));
                }
            }
        }
        // Invalid permutations are rejected.
        assert!(s.permute_users(&[UserId::new(0)]).is_err());
        assert!(s
            .permute_users(&[UserId::new(0), UserId::new(0), UserId::new(1)])
            .is_err());
        assert!(s
            .permute_users(&[UserId::new(0), UserId::new(1), UserId::new(9)])
            .is_err());
    }

    #[test]
    fn scaled_lambdas_rescale_coefficients_linearly() {
        let s = small();
        let scaled = s.with_scaled_lambdas(0.25).unwrap();
        for u in s.user_ids() {
            assert!(
                (scaled.user(u).lambda.value() - 0.25 * s.user(u).lambda.value()).abs() < 1e-15
            );
            let (a, b) = (scaled.coefficients(u), s.coefficients(u));
            assert!((a.phi - 0.25 * b.phi).abs() <= 1e-12 * b.phi.abs());
            assert!((a.psi - 0.25 * b.psi).abs() <= 1e-12 * b.psi.abs());
            assert!((a.eta - 0.25 * b.eta).abs() <= 1e-12 * b.eta.abs());
            assert!(
                (a.gain_constant - 0.25 * b.gain_constant).abs() <= 1e-12 * b.gain_constant.abs()
            );
            // Local costs and powers are λ-independent.
            assert_eq!(scaled.local_cost(u), s.local_cost(u));
        }
        // Factors that push λ out of (0, 1] are rejected.
        assert!(s.with_scaled_lambdas(0.0).is_err());
        assert!(s.with_scaled_lambdas(2.0).is_err());
    }

    #[test]
    fn nonpositive_noise_is_rejected() {
        let users = vec![UserSpec::paper_default_with_workload(Cycles::from_mega(1000.0)).unwrap()];
        let ofdma = OfdmaConfig::new(Hertz::from_mega(20.0), 1).unwrap();
        let g = ChannelGains::uniform(1, 1, 1, 1e-10).unwrap();
        assert!(Scenario::new(
            users,
            vec![ServerProfile::paper_default()],
            ofdma,
            g,
            Watts::new(0.0)
        )
        .is_err());
    }
}
