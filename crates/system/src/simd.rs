//! Explicit-width chunked kernels for the SoA hot path.
//!
//! The incremental evaluator and the reference evaluator keep their
//! per-`(server, subchannel)` arrays padded to a multiple of [`LANES`]
//! servers so every sweep runs as `chunks_exact(LANES)` over four
//! independent accumulator lanes — the `f64x4` shape LLVM auto-vectorizes
//! reliably, with no SIMD crates and no `unsafe`.
//!
//! Bit-exactness: every kernel performs *per-slot independent* arithmetic
//! (`dst[i] op= src[i]`), so chunking only reorders work across slots,
//! never the operation sequence within one slot. The results are
//! bit-identical to the scalar loops they replace; the order-sensitive
//! reductions of the objective (the Γ fold over a subchannel's occupants,
//! the Λ sum over servers) deliberately stay scalar and sequential in
//! `incremental.rs` so accepted-move trajectories keep their seeds.

/// Chunk width of the manual vector kernels (one AVX2 `f64x4` register).
pub const LANES: usize = 4;

/// The padded length of a per-server row: `n` rounded up to a multiple of
/// [`LANES`], so `chunks_exact(LANES)` covers it with no remainder loop.
#[inline]
pub fn padded_len(n: usize) -> usize {
    n.next_multiple_of(LANES)
}

/// `dst[i] += src[i]` over two equal-length, lane-padded rows.
#[inline]
pub fn add_assign_rows(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len(), "row lengths match");
    debug_assert_eq!(dst.len() % LANES, 0, "rows are lane-padded");
    for (d, s) in dst.chunks_exact_mut(LANES).zip(src.chunks_exact(LANES)) {
        d[0] += s[0];
        d[1] += s[1];
        d[2] += s[2];
        d[3] += s[3];
    }
}

/// `dst[i] -= src[i]` over two equal-length, lane-padded rows.
#[inline]
pub fn sub_assign_rows(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len(), "row lengths match");
    debug_assert_eq!(dst.len() % LANES, 0, "rows are lane-padded");
    for (d, s) in dst.chunks_exact_mut(LANES).zip(src.chunks_exact(LANES)) {
        d[0] -= s[0];
        d[1] -= s[1];
        d[2] -= s[2];
        d[3] -= s[3];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_rounds_up_to_lane_multiples() {
        assert_eq!(padded_len(0), 0);
        assert_eq!(padded_len(1), 4);
        assert_eq!(padded_len(4), 4);
        assert_eq!(padded_len(9), 12);
        assert_eq!(padded_len(12), 12);
    }

    #[test]
    fn chunked_sweeps_are_bit_identical_to_scalar() {
        let src: Vec<f64> = (0..16).map(|i| (i as f64) * 0.3 + 1e-12).collect();
        let mut chunked = vec![1.0e-9; 16];
        let mut scalar = chunked.clone();
        add_assign_rows(&mut chunked, &src);
        for (d, s) in scalar.iter_mut().zip(&src) {
            *d += s;
        }
        assert_eq!(
            chunked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        sub_assign_rows(&mut chunked, &src);
        for (d, s) in scalar.iter_mut().zip(&src) {
            *d -= s;
        }
        assert_eq!(
            chunked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
