//! The solver abstraction shared by TSAJS and every baseline.

use crate::assignment::Assignment;
use crate::evaluation::Evaluator;
use crate::metrics::SystemEvaluation;
use crate::scenario::Scenario;
use mec_types::Error;
use std::time::Duration;

/// A JTORA solver: given a scenario, produce a feasible offloading
/// decision whose score is the exact `J*(X)` of Eq. 24 (the KKT-optimal
/// allocation is implied by the decision).
///
/// `solve` takes `&mut self` so stochastic solvers can carry their RNG
/// state between calls; deterministic solvers simply ignore it.
pub trait Solver {
    /// A short display name ("TSAJS", "hJTORA", "Greedy", …) used in
    /// experiment tables.
    fn name(&self) -> &str;

    /// Solves the scenario.
    ///
    /// # Errors
    ///
    /// Implementations return [`Error::UnsupportedScenario`] when the
    /// instance exceeds what they can handle (e.g. exhaustive search past
    /// its size guard).
    fn solve(&mut self, scenario: &Scenario) -> Result<Solution, Error>;
}

/// Execution counters reported alongside a solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// How many times `J*(X)` was evaluated.
    pub objective_evaluations: u64,
    /// Algorithm-specific iteration count (annealing proposals, improvement
    /// rounds, enumerated leaves, …).
    pub iterations: u64,
    /// Wall-clock time spent in `solve`.
    pub elapsed: Duration,
}

/// The outcome of a solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The chosen offloading decision.
    pub assignment: Assignment,
    /// Its exact objective value `J*(X)`.
    pub utility: f64,
    /// Execution counters.
    pub stats: SolverStats,
}

impl Solution {
    /// Produces the full per-user evaluation of this solution.
    ///
    /// # Errors
    ///
    /// Returns an error if the assignment does not match the scenario (it
    /// always matches the scenario it was solved on).
    pub fn evaluate(&self, scenario: &Scenario) -> Result<SystemEvaluation, Error> {
        Evaluator::new(scenario).evaluate(&self.assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::UserSpec;
    use mec_radio::{ChannelGains, OfdmaConfig};
    use mec_types::{Cycles, Hertz, ServerProfile, Watts};

    /// A solver that always answers "everyone local".
    struct AllLocal;

    impl Solver for AllLocal {
        fn name(&self) -> &str {
            "AllLocal"
        }

        fn solve(&mut self, scenario: &Scenario) -> Result<Solution, Error> {
            let assignment = Assignment::all_local(scenario);
            let utility = Evaluator::new(scenario).objective(&assignment);
            Ok(Solution {
                assignment,
                utility,
                stats: SolverStats {
                    objective_evaluations: 1,
                    iterations: 0,
                    elapsed: Duration::ZERO,
                },
            })
        }
    }

    #[test]
    fn trait_object_usage_works() {
        let scenario = Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(1000.0)).unwrap(); 2],
            vec![ServerProfile::paper_default()],
            OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap(),
            ChannelGains::uniform(2, 1, 2, 1e-10).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap();
        let mut solver: Box<dyn Solver> = Box::new(AllLocal);
        assert_eq!(solver.name(), "AllLocal");
        let solution = solver.solve(&scenario).unwrap();
        assert_eq!(solution.utility, 0.0);
        let eval = solution.evaluate(&scenario).unwrap();
        assert_eq!(eval.num_offloaded, 0);
        assert_eq!(solution.stats.objective_evaluations, 1);
    }
}
