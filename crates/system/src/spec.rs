//! Serializable scenario specifications.
//!
//! [`Scenario`] precomputes derived quantities and is therefore not
//! directly serializable; [`ScenarioSpec`] is its plain-data twin. Specs
//! round-trip through Serde (the `tsajs-sim` CLI stores them as JSON), and
//! [`ScenarioSpec::into_scenario`] re-runs full validation, so a spec from
//! disk can never produce an invalid scenario.

use crate::scenario::{Scenario, UserSpec};
use mec_radio::{ChannelGains, OfdmaConfig};
use mec_topology::Point2;
use mec_types::{BitsPerSecond, Error, ServerProfile, Watts};
use serde::{Deserialize, Serialize};

/// The persistent form of a [`Scenario`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Per-user tasks, devices and preferences.
    pub users: Vec<UserSpec>,
    /// Per-server computing capacities.
    pub servers: Vec<ServerProfile>,
    /// The OFDMA band plan.
    pub ofdma: OfdmaConfig,
    /// The channel-gain tensor.
    pub gains: ChannelGains,
    /// Background noise power.
    pub noise: Watts,
    /// Optional fixed downlink rate (§III-A.2 extension).
    #[serde(default)]
    pub downlink: Option<BitsPerSecond>,
    /// Optional user positions (meters), aligned with `users`. Channel
    /// gains are already baked into `gains`; positions are carried only
    /// for visualization and mobility tooling.
    #[serde(default)]
    pub positions: Option<Vec<Point2>>,
}

impl ScenarioSpec {
    /// Captures a scenario into its persistent form.
    pub fn from_scenario(scenario: &Scenario) -> Self {
        Self {
            users: scenario.users().to_vec(),
            servers: scenario.servers().to_vec(),
            ofdma: *scenario.ofdma(),
            gains: scenario.gains().clone(),
            noise: scenario.noise(),
            downlink: scenario.downlink(),
            positions: None,
        }
    }

    /// Attaches user positions (for rendering/mobility tooling).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the count differs from the
    /// user count.
    pub fn with_positions(mut self, positions: Vec<Point2>) -> Result<Self, Error> {
        if positions.len() != self.users.len() {
            return Err(Error::DimensionMismatch {
                what: "positions vs users",
                expected: self.users.len(),
                actual: positions.len(),
            });
        }
        self.positions = Some(positions);
        Ok(self)
    }

    /// Validates and builds the runnable scenario.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Scenario::new`] (dimension mismatches,
    /// invalid physical parameters) plus [`Scenario::with_downlink`] when a
    /// downlink rate is present.
    pub fn into_scenario(self) -> Result<Scenario, Error> {
        let scenario = Scenario::new(self.users, self.servers, self.ofdma, self.gains, self.noise)?;
        match self.downlink {
            Some(rate) => scenario.with_downlink(rate),
            None => Ok(scenario),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_types::{Cycles, Hertz, UserId};

    fn scenario() -> Scenario {
        Scenario::new(
            vec![UserSpec::paper_default_with_workload(Cycles::from_mega(1500.0)).unwrap(); 3],
            vec![ServerProfile::paper_default(); 2],
            OfdmaConfig::new(Hertz::from_mega(20.0), 2).unwrap(),
            ChannelGains::uniform(3, 2, 2, 1e-10).unwrap(),
            Watts::new(1e-13),
        )
        .unwrap()
    }

    #[test]
    fn spec_roundtrip_preserves_the_model() {
        let original = scenario();
        let spec = ScenarioSpec::from_scenario(&original);
        let rebuilt = spec.into_scenario().unwrap();
        assert_eq!(rebuilt.num_users(), original.num_users());
        assert_eq!(rebuilt.gains(), original.gains());
        assert_eq!(rebuilt.noise(), original.noise());
        assert_eq!(rebuilt.downlink(), None);
        // Derived quantities are recomputed identically.
        let u = UserId::new(0);
        assert_eq!(rebuilt.local_cost(u), original.local_cost(u));
        assert_eq!(rebuilt.coefficients(u), original.coefficients(u));
    }

    #[test]
    fn downlink_survives_the_roundtrip() {
        let original = scenario()
            .with_downlink(BitsPerSecond::new(100.0e6))
            .unwrap();
        let spec = ScenarioSpec::from_scenario(&original);
        assert_eq!(spec.downlink, Some(BitsPerSecond::new(100.0e6)));
        let rebuilt = spec.into_scenario().unwrap();
        assert_eq!(rebuilt.downlink(), Some(BitsPerSecond::new(100.0e6)));
    }

    #[test]
    fn positions_attach_and_validate() {
        let spec = ScenarioSpec::from_scenario(&scenario());
        assert_eq!(spec.positions, None);
        let pts = vec![Point2::new(0.0, 0.0); 3];
        let spec = spec.with_positions(pts.clone()).unwrap();
        assert_eq!(spec.positions.as_deref(), Some(pts.as_slice()));
        // Wrong count is rejected.
        let bad =
            ScenarioSpec::from_scenario(&scenario()).with_positions(vec![Point2::new(0.0, 0.0); 2]);
        assert!(bad.is_err());
    }

    #[test]
    fn corrupted_specs_fail_validation() {
        let mut spec = ScenarioSpec::from_scenario(&scenario());
        spec.users.pop(); // Now the gain tensor no longer matches.
        assert!(matches!(
            spec.into_scenario(),
            Err(Error::DimensionMismatch { .. })
        ));
    }
}
