//! Property suite pinning the SoA/chunked/speculative delta paths
//! bit-exact against the scalar `apply`/`undo` reference of
//! [`IncrementalObjective`] over long random walks.
//!
//! Three contracts, each exercised across random geometries (including
//! server counts that are not lane multiples, so the padding lanes are
//! covered):
//!
//! * `score(mv)` equals `apply(mv)` + `current()` **bit for bit**, and
//!   leaves no trace;
//! * `undo()` after `apply()` restores the objective bit-exactly;
//! * the maintained sums track the reference evaluator within `1e-9`
//!   relative over long committed walks (the documented drift bound).

use mec_radio::{ChannelGains, OfdmaConfig};
use mec_system::{simd, UserSpec};
use mec_system::{Assignment, EvalScratch, Evaluator, IncrementalObjective, MoveDesc, Scenario};
use mec_types::{Cycles, Hertz, ServerId, ServerProfile, SubchannelId, UserId, Watts};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_scenario(seed: u64, users: usize, servers: usize, subs: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let gains = ChannelGains::from_fn(users, servers, subs, |_, _, _| {
        10.0_f64.powf(rng.gen_range(-13.0..-9.0))
    })
    .unwrap();
    Scenario::new(
        vec![UserSpec::paper_default_with_workload(Cycles::from_mega(2000.0)).unwrap(); users],
        vec![ServerProfile::paper_default(); servers],
        OfdmaConfig::new(Hertz::from_mega(20.0), subs).unwrap(),
        gains,
        Watts::new(1e-13),
    )
    .unwrap()
}

fn random_assignment(scenario: &Scenario, seed: u64) -> Assignment {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Assignment::all_local(scenario);
    for u in scenario.user_ids() {
        if rng.gen_bool(0.6) {
            let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
            if let Some(j) = x.free_subchannel(s) {
                x.assign(u, s, j).unwrap();
            }
        }
    }
    x
}

/// A random valid MoveDesc against `x`, mimicking the kernel's shapes
/// (toggle, evicting relocation, swap, plain relocation).
fn random_move(scenario: &Scenario, x: &Assignment, rng: &mut StdRng) -> MoveDesc {
    let u = UserId::new(rng.gen_range(0..scenario.num_users()));
    match rng.gen_range(0..4) {
        0 => MoveDesc::relocate(x, u, None),
        1 => {
            let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
            let j = SubchannelId::new(rng.gen_range(0..scenario.num_subchannels()));
            MoveDesc::relocate_evicting(x, u, s, j)
        }
        2 => {
            let v = UserId::new(rng.gen_range(0..scenario.num_users()));
            MoveDesc::swap(x, u, v)
        }
        _ => {
            let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
            match x.free_subchannel(s) {
                Some(j) if !x.is_offloaded(u) => MoveDesc::relocate(x, u, Some((s, j))),
                _ => MoveDesc::relocate(x, u, None),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The speculative score is the apply-path objective, bit for bit,
    /// and scoring leaves the state untouched.
    #[test]
    fn score_is_bit_exact_against_apply(
        seed in 0u64..1_000_000,
        users in 2usize..16,
        servers in 1usize..9,
        subs in 1usize..5,
    ) {
        let sc = random_scenario(seed, users, servers, subs);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let mut inc =
            IncrementalObjective::new(&sc, random_assignment(&sc, seed.wrapping_add(3))).unwrap();
        for step in 0..200 {
            let mv = random_move(&sc, inc.assignment(), &mut rng);
            let before_bits = inc.current().to_bits();
            let x_before = inc.assignment().clone();
            let speculative = inc.score(&mv);
            // Scoring is pure: nothing observable moved.
            prop_assert_eq!(inc.current().to_bits(), before_bits);
            prop_assert_eq!(inc.assignment(), &x_before);
            let delta = inc.apply(&mv);
            let applied = inc.current();
            prop_assert_eq!(
                speculative.to_bits(),
                applied.to_bits(),
                "step {}: score {} vs apply {}",
                step,
                speculative,
                applied
            );
            // The apply delta is consistent with the speculative view.
            if applied.is_finite() && f64::from_bits(before_bits).is_finite() {
                prop_assert_eq!(
                    delta.to_bits(),
                    (applied - f64::from_bits(before_bits)).to_bits()
                );
            }
            if rng.gen_bool(0.5) {
                inc.commit();
            } else {
                inc.undo();
                prop_assert_eq!(inc.current().to_bits(), before_bits);
            }
        }
    }

    /// Undo after apply restores the objective and decision bit-exactly,
    /// with interleaved speculative scores thrown in (they must not
    /// disturb the pending-move machinery).
    #[test]
    fn undo_stays_bit_exact_with_interleaved_scores(
        seed in 0u64..1_000_000,
        users in 2usize..12,
        servers in 1usize..7,
        subs in 1usize..4,
    ) {
        let sc = random_scenario(seed, users, servers, subs);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut inc =
            IncrementalObjective::new(&sc, random_assignment(&sc, seed.wrapping_add(9))).unwrap();
        for _ in 0..150 {
            let probe = random_move(&sc, inc.assignment(), &mut rng);
            let _ = inc.score(&probe);
            let before = inc.current().to_bits();
            let x_before = inc.assignment().clone();
            let mv = random_move(&sc, inc.assignment(), &mut rng);
            inc.apply(&mv);
            inc.undo();
            prop_assert_eq!(inc.current().to_bits(), before);
            prop_assert_eq!(inc.assignment(), &x_before);
        }
    }

    /// Long committed walks stay within the documented 1e-9 relative
    /// drift bound of the reference evaluator, on every geometry the
    /// padded layout can take (including non-lane-multiple server
    /// counts).
    #[test]
    fn committed_walks_track_the_reference(
        seed in 0u64..1_000_000,
        users in 2usize..14,
        servers in 1usize..9,
        subs in 1usize..4,
    ) {
        let sc = random_scenario(seed, users, servers, subs);
        let ev = Evaluator::new(&sc);
        let mut scratch = EvalScratch::default();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let mut inc =
            IncrementalObjective::new(&sc, random_assignment(&sc, seed.wrapping_add(1))).unwrap();
        for _ in 0..150 {
            let mv = random_move(&sc, inc.assignment(), &mut rng);
            // Accept via the score-then-apply fast path, as the engines do.
            let speculative = inc.score(&mv);
            if speculative >= inc.current() {
                inc.apply(&mv);
                inc.commit();
            }
        }
        let reference = ev.objective_with(inc.assignment(), &mut scratch);
        let current = inc.current();
        if current.is_finite() || reference.is_finite() {
            prop_assert!(
                (current - reference).abs() <= 1e-9 * reference.abs().max(1.0),
                "incremental {} vs reference {}",
                current,
                reference
            );
        }
    }

    /// The chunked row kernels are bit-identical to scalar sweeps for any
    /// lane-padded row contents.
    #[test]
    fn chunked_kernels_match_scalar_bit_exact(
        rows in prop::collection::vec(-1.0e-9f64..1.0e-9, 4..64),
    ) {
        let n = simd::padded_len(rows.len());
        let mut src = rows.clone();
        src.resize(n, 0.0);
        let mut chunked = vec![1.0e-12; n];
        let mut scalar = chunked.clone();
        simd::add_assign_rows(&mut chunked, &src);
        for (d, s) in scalar.iter_mut().zip(&src) {
            *d += s;
        }
        prop_assert_eq!(
            chunked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        simd::sub_assign_rows(&mut chunked, &src);
        for (d, s) in scalar.iter_mut().zip(&src) {
            *d -= s;
        }
        prop_assert_eq!(
            chunked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
