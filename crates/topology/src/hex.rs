//! Hexagonal grid coordinates and spiral cell enumeration.
//!
//! Base stations sit on a triangular lattice so that adjacent stations are
//! exactly one inter-site distance apart and each station's hexagonal cell
//! tiles the plane. We use axial coordinates `(q, r)` (pointy-top
//! orientation) and enumerate cells center-out in concentric rings, so the
//! "first S cells" always form a compact cluster like the paper's figures.

use crate::point::Point2;
use mec_types::Meters;
use serde::{Deserialize, Serialize};

/// Axial hex-grid coordinates `(q, r)` (pointy-top orientation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct HexCoord {
    /// Axial column.
    pub q: i32,
    /// Axial row.
    pub r: i32,
}

/// The six axial neighbor directions, in the ring-walk order used by
/// [`spiral`].
const DIRECTIONS: [(i32, i32); 6] = [(1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1)];

impl HexCoord {
    /// The central cell.
    pub const CENTER: Self = Self { q: 0, r: 0 };

    /// Creates a coordinate.
    pub const fn new(q: i32, r: i32) -> Self {
        Self { q, r }
    }

    /// Hex lattice distance (number of steps between cells).
    pub fn grid_distance(self, other: Self) -> u32 {
        let dq = self.q - other.q;
        let dr = self.r - other.r;
        ((dq.abs() + dr.abs() + (dq + dr).abs()) / 2) as u32
    }

    /// The neighbor in direction `dir ∈ 0..6`.
    ///
    /// # Panics
    ///
    /// Panics if `dir >= 6`.
    pub fn neighbor(self, dir: usize) -> Self {
        let (dq, dr) = DIRECTIONS[dir];
        Self::new(self.q + dq, self.r + dr)
    }

    /// Converts to plane coordinates for an inter-site distance `isd`
    /// (pointy-top: `x = isd·(q + r/2)`, `y = isd·(√3/2)·r`).
    pub fn to_point(self, isd: Meters) -> Point2 {
        let d = isd.as_meters();
        Point2::new(
            d * (self.q as f64 + self.r as f64 / 2.0),
            d * (3.0_f64.sqrt() / 2.0) * self.r as f64,
        )
    }
}

/// Enumerates hex cells in spiral (center-out, ring-by-ring) order,
/// yielding exactly `count` coordinates.
pub fn spiral(count: usize) -> Vec<HexCoord> {
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return out;
    }
    out.push(HexCoord::CENTER);
    let mut ring = 1i32;
    while out.len() < count {
        // Start each ring at direction-4 offset scaled by the ring index
        // (the red-blob-games ring walk), then take `ring` steps in each of
        // the six directions.
        let mut cur = HexCoord::new(DIRECTIONS[4].0 * ring, DIRECTIONS[4].1 * ring);
        for dir in 0..6 {
            for _ in 0..ring {
                if out.len() == count {
                    return out;
                }
                out.push(cur);
                cur = cur.neighbor(dir);
            }
        }
        ring += 1;
    }
    out
}

/// Base-station positions for `count` cells at inter-site distance `isd`,
/// in spiral order (center first).
pub fn hex_centers(count: usize, isd: Meters) -> Vec<Point2> {
    spiral(count).into_iter().map(|h| h.to_point(isd)).collect()
}

/// Circumradius of a hexagonal cell whose neighbors are `isd` apart:
/// `R = isd / √3`.
pub fn cell_circumradius(isd: Meters) -> Meters {
    Meters::new(isd.as_meters() / 3.0_f64.sqrt())
}

/// Tests whether `point` lies inside the pointy-top hexagon of circumradius
/// `radius` centered at `center` (boundary counts as inside).
pub fn hex_contains(center: Point2, radius: Meters, point: Point2) -> bool {
    let r = radius.as_meters();
    let dx = (point.x - center.x).abs();
    let dy = (point.y - center.y).abs();
    let s3 = 3.0_f64.sqrt();
    // Pointy-top hexagon: flat sides left/right at x = ±(√3/2)R, slanted
    // sides satisfying √3·|dy| + |dx| ≤ √3·R.
    dx <= s3 / 2.0 * r + 1e-9 && s3 * dy + dx <= s3 * r + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const ISD: Meters = Meters::new(1000.0);

    #[test]
    fn spiral_counts_and_uniqueness() {
        for count in [0, 1, 2, 7, 9, 19, 37] {
            let cells = spiral(count);
            assert_eq!(cells.len(), count);
            let set: HashSet<_> = cells.iter().copied().collect();
            assert_eq!(set.len(), count, "spiral must not repeat cells");
        }
    }

    #[test]
    fn spiral_is_center_out() {
        let cells = spiral(19);
        assert_eq!(cells[0], HexCoord::CENTER);
        // Cells 1..=6 form ring 1, cells 7..=18 ring 2.
        for c in &cells[1..7] {
            assert_eq!(c.grid_distance(HexCoord::CENTER), 1);
        }
        for c in &cells[7..19] {
            assert_eq!(c.grid_distance(HexCoord::CENTER), 2);
        }
    }

    #[test]
    fn adjacent_centers_are_one_isd_apart() {
        let centers = hex_centers(7, ISD);
        // The six ring-1 stations are all exactly 1 ISD from the center.
        for p in &centers[1..7] {
            assert!((centers[0].distance(*p).as_meters() - 1000.0).abs() < 1e-6);
        }
    }

    #[test]
    fn all_pairwise_distances_at_least_isd() {
        let centers = hex_centers(19, ISD);
        for (i, a) in centers.iter().enumerate() {
            for b in centers.iter().skip(i + 1) {
                assert!(a.distance(*b).as_meters() >= 1000.0 - 1e-6);
            }
        }
    }

    #[test]
    fn circumradius_matches_geometry() {
        let r = cell_circumradius(ISD);
        assert!((r.as_meters() - 1000.0 / 3.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn hex_contains_center_and_rejects_far_points() {
        let r = cell_circumradius(ISD);
        assert!(hex_contains(Point2::ORIGIN, r, Point2::ORIGIN));
        // The top vertex (pointy-top) is at (0, R) — on the boundary.
        assert!(hex_contains(
            Point2::ORIGIN,
            r,
            Point2::new(0.0, r.as_meters())
        ));
        // Just beyond the flat side at x = √3/2·R.
        let side = 3.0_f64.sqrt() / 2.0 * r.as_meters();
        assert!(!hex_contains(
            Point2::ORIGIN,
            r,
            Point2::new(side + 1.0, 0.0)
        ));
        assert!(!hex_contains(
            Point2::ORIGIN,
            r,
            Point2::new(0.0, r.as_meters() + 1.0)
        ));
    }

    #[test]
    fn neighboring_hexagons_tile_without_overlap() {
        // The midpoint between two adjacent centers sits on the shared edge;
        // points slightly to either side belong to exactly one hexagon
        // interior.
        let centers = hex_centers(2, ISD);
        let r = cell_circumradius(ISD);
        let mid = Point2::new(
            (centers[0].x + centers[1].x) / 2.0,
            (centers[0].y + centers[1].y) / 2.0,
        );
        // Step a couple of meters along the center-to-center axis, which is
        // perpendicular to the shared edge.
        let len = centers[0].distance(centers[1]).as_meters();
        let ux = (centers[0].x - centers[1].x) / len;
        let uy = (centers[0].y - centers[1].y) / len;
        let toward_0 = Point2::new(mid.x + 2.0 * ux, mid.y + 2.0 * uy);
        let toward_1 = Point2::new(mid.x - 2.0 * ux, mid.y - 2.0 * uy);
        assert!(hex_contains(centers[0], r, toward_0));
        assert!(!hex_contains(centers[1], r, toward_0));
        assert!(hex_contains(centers[1], r, toward_1));
        assert!(!hex_contains(centers[0], r, toward_1));
    }

    #[test]
    #[should_panic]
    fn neighbor_panics_on_bad_direction() {
        let _ = HexCoord::CENTER.neighbor(6);
    }
}
