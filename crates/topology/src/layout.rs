//! The multi-cell network layout.

use crate::hex::{cell_circumradius, hex_centers, hex_contains};
use crate::point::Point2;
use mec_types::{Error, Meters, ServerId};
use serde::{Deserialize, Serialize};

/// A multi-cell network: base-station positions plus the cell geometry.
///
/// The paper's evaluation uses hexagonal cells with a 1 km inter-site
/// distance ([`NetworkLayout::hexagonal`]); arbitrary station positions are
/// supported through [`NetworkLayout::from_stations`] for custom scenarios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkLayout {
    stations: Vec<Point2>,
    cell_radius: Meters,
}

impl NetworkLayout {
    /// Builds the paper's hexagonal layout: `count` cells in spiral order
    /// at inter-site distance `isd`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `count` is zero or `isd` is
    /// non-positive.
    pub fn hexagonal(count: usize, isd: Meters) -> Result<Self, Error> {
        if count == 0 {
            return Err(Error::invalid("S", "network needs at least one cell"));
        }
        if !isd.is_finite() || isd.as_meters() <= 0.0 {
            return Err(Error::invalid(
                "isd",
                "inter-site distance must be positive",
            ));
        }
        Ok(Self {
            stations: hex_centers(count, isd),
            cell_radius: cell_circumradius(isd),
        })
    }

    /// Builds a layout from explicit station positions and a cell
    /// circumradius.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `stations` is empty or the
    /// radius is non-positive.
    pub fn from_stations(stations: Vec<Point2>, cell_radius: Meters) -> Result<Self, Error> {
        if stations.is_empty() {
            return Err(Error::invalid(
                "stations",
                "network needs at least one station",
            ));
        }
        if !cell_radius.is_finite() || cell_radius.as_meters() <= 0.0 {
            return Err(Error::invalid("cell_radius", "must be positive"));
        }
        Ok(Self {
            stations,
            cell_radius,
        })
    }

    /// Number of base stations / cells.
    #[inline]
    pub fn num_stations(&self) -> usize {
        self.stations.len()
    }

    /// All station positions, in [`ServerId`] order.
    #[inline]
    pub fn stations(&self) -> &[Point2] {
        &self.stations
    }

    /// Position of one station.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownEntity`] if the id is out of range.
    pub fn station(&self, id: ServerId) -> Result<Point2, Error> {
        self.stations
            .get(id.index())
            .copied()
            .ok_or(Error::UnknownEntity {
                kind: "server",
                index: id.index(),
                count: self.stations.len(),
            })
    }

    /// The hexagonal cell circumradius.
    #[inline]
    pub fn cell_radius(&self) -> Meters {
        self.cell_radius
    }

    /// Distance from `point` to the given station.
    pub fn distance_to(&self, id: ServerId, point: Point2) -> Result<Meters, Error> {
        Ok(self.station(id)?.distance(point))
    }

    /// The station nearest to `point` (ties broken by lowest id).
    pub fn nearest_station(&self, point: Point2) -> ServerId {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, s) in self.stations.iter().enumerate() {
            let d = s.distance_sq(point);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        ServerId::new(best)
    }

    /// Whether `point` lies inside any cell's hexagon (i.e. inside the
    /// network coverage area).
    pub fn contains(&self, point: Point2) -> bool {
        self.stations
            .iter()
            .any(|c| hex_contains(*c, self.cell_radius, point))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nine_cells() -> NetworkLayout {
        NetworkLayout::hexagonal(9, Meters::new(1000.0)).unwrap()
    }

    #[test]
    fn hexagonal_rejects_degenerate_inputs() {
        assert!(NetworkLayout::hexagonal(0, Meters::new(1000.0)).is_err());
        assert!(NetworkLayout::hexagonal(9, Meters::new(0.0)).is_err());
        assert!(NetworkLayout::hexagonal(9, Meters::new(-5.0)).is_err());
    }

    #[test]
    fn from_stations_rejects_degenerate_inputs() {
        assert!(NetworkLayout::from_stations(vec![], Meters::new(100.0)).is_err());
        assert!(NetworkLayout::from_stations(vec![Point2::ORIGIN], Meters::new(0.0)).is_err());
    }

    #[test]
    fn station_lookup_and_bounds() {
        let l = nine_cells();
        assert_eq!(l.num_stations(), 9);
        assert_eq!(l.station(ServerId::new(0)).unwrap(), Point2::ORIGIN);
        assert!(matches!(
            l.station(ServerId::new(9)),
            Err(Error::UnknownEntity {
                index: 9,
                count: 9,
                ..
            })
        ));
    }

    #[test]
    fn nearest_station_is_own_center() {
        let l = nine_cells();
        for (i, s) in l.stations().iter().enumerate() {
            assert_eq!(l.nearest_station(*s), ServerId::new(i));
        }
    }

    #[test]
    fn coverage_contains_centers_but_not_far_field() {
        let l = nine_cells();
        for s in l.stations() {
            assert!(l.contains(*s));
        }
        assert!(!l.contains(Point2::new(1.0e6, 1.0e6)));
    }

    #[test]
    fn distance_to_matches_point_distance() {
        let l = nine_cells();
        let p = Point2::new(123.0, -456.0);
        let d = l.distance_to(ServerId::new(3), p).unwrap();
        assert_eq!(d, l.station(ServerId::new(3)).unwrap().distance(p));
        assert!(l.distance_to(ServerId::new(99), p).is_err());
    }

    #[test]
    fn single_cell_layout_works() {
        let l = NetworkLayout::hexagonal(1, Meters::new(500.0)).unwrap();
        assert_eq!(l.num_stations(), 1);
        assert!(l.contains(Point2::ORIGIN));
        assert_eq!(l.nearest_station(Point2::new(10.0, 10.0)), ServerId::new(0));
    }
}
