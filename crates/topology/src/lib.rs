//! # mec-topology
//!
//! Geometric substrate for the TSAJS reproduction: the hexagonal multi-cell
//! layout used by the paper's evaluation (§V — hexagonal cells centered on
//! base stations, 1 km inter-site distance) and uniform user placement over
//! the network's coverage area.
//!
//! ## Example
//!
//! ```
//! use mec_topology::{NetworkLayout, place_users_uniform};
//! use mec_types::constants::INTER_SITE_DISTANCE;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), mec_types::Error> {
//! // The paper's default 9-cell hexagonal network.
//! let layout = NetworkLayout::hexagonal(9, INTER_SITE_DISTANCE)?;
//! assert_eq!(layout.num_stations(), 9);
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let users = place_users_uniform(&layout, 30, &mut rng);
//! assert_eq!(users.len(), 30);
//! // Every user lands inside some cell of the network.
//! assert!(users.iter().all(|p| layout.contains(*p)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hex;
pub mod layout;
pub mod placement;
pub mod point;

pub use hex::{hex_centers, HexCoord};
pub use layout::NetworkLayout;
pub use placement::{place_users_hotspots, place_users_uniform, sample_point_in_cell};
pub use point::Point2;
