//! Random user placement over the network coverage area.

use crate::hex::hex_contains;
use crate::layout::NetworkLayout;
use crate::point::Point2;
use mec_types::ServerId;
use rand::Rng;

/// Samples one point uniformly inside the hexagonal cell of station `cell`.
///
/// Uses rejection sampling from the cell's bounding box (acceptance
/// probability ≈ 0.83 for a regular hexagon, so this terminates quickly).
///
/// # Panics
///
/// Panics if `cell` is out of range for the layout.
pub fn sample_point_in_cell<R: Rng + ?Sized>(
    layout: &NetworkLayout,
    cell: ServerId,
    rng: &mut R,
) -> Point2 {
    let center = layout
        .station(cell)
        .expect("cell id must be valid for the layout");
    let r = layout.cell_radius().as_meters();
    let half_width = 3.0_f64.sqrt() / 2.0 * r;
    loop {
        let candidate = Point2::new(
            center.x + rng.gen_range(-half_width..=half_width),
            center.y + rng.gen_range(-r..=r),
        );
        if hex_contains(center, layout.cell_radius(), candidate) {
            return candidate;
        }
    }
}

/// Places `count` users uniformly at random over the network's coverage
/// area (the paper's "users are randomly and uniformly distributed across
/// the network's coverage area").
///
/// Since all cells are congruent hexagons, uniform-over-coverage is
/// equivalent to picking a cell uniformly and then a uniform point within
/// it.
pub fn place_users_uniform<R: Rng + ?Sized>(
    layout: &NetworkLayout,
    count: usize,
    rng: &mut R,
) -> Vec<Point2> {
    (0..count)
        .map(|_| {
            let cell = ServerId::new(rng.gen_range(0..layout.num_stations()));
            sample_point_in_cell(layout, cell, rng)
        })
        .collect()
}

/// Places `count` users in `hotspots` clusters: cluster centers are drawn
/// uniformly over the coverage area, then users scatter around a center
/// with a Gaussian of standard deviation `spread` meters (re-sampled until
/// inside coverage). A standard "Matérn-like" hotspot model for stressing
/// schedulers beyond the paper's uniform placement: load concentrates on
/// a few cells while others idle.
///
/// # Panics
///
/// Panics if `hotspots` is zero (with `count > 0`) or `spread` is
/// negative/non-finite.
pub fn place_users_hotspots<R: Rng + ?Sized>(
    layout: &NetworkLayout,
    count: usize,
    hotspots: usize,
    spread: f64,
    rng: &mut R,
) -> Vec<Point2> {
    assert!(
        spread.is_finite() && spread >= 0.0,
        "spread must be non-negative"
    );
    if count == 0 {
        return Vec::new();
    }
    assert!(hotspots > 0, "need at least one hotspot");
    let centers = place_users_uniform(layout, hotspots, rng);
    let mut normal_spare: Option<f64> = None;
    let mut sample_normal = |rng: &mut R| -> f64 {
        // Box–Muller, local to keep mec-topology free of a radio dep.
        if let Some(z) = normal_spare.take() {
            return z;
        }
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let t = 2.0 * std::f64::consts::PI * u2;
        normal_spare = Some(r * t.sin());
        r * t.cos()
    };
    (0..count)
        .map(|i| {
            let center = centers[i % hotspots];
            loop {
                let candidate = Point2::new(
                    center.x + spread * sample_normal(rng),
                    center.y + spread * sample_normal(rng),
                );
                if layout.contains(candidate) {
                    return candidate;
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_types::Meters;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layout() -> NetworkLayout {
        NetworkLayout::hexagonal(9, Meters::new(1000.0)).unwrap()
    }

    #[test]
    fn sampled_points_stay_in_their_cell() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(1);
        for s in 0..l.num_stations() {
            let cell = ServerId::new(s);
            let center = l.station(cell).unwrap();
            for _ in 0..100 {
                let p = sample_point_in_cell(&l, cell, &mut rng);
                assert!(hex_contains(center, l.cell_radius(), p));
            }
        }
    }

    #[test]
    fn uniform_placement_covers_all_cells_eventually() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(2);
        let users = place_users_uniform(&l, 2000, &mut rng);
        assert_eq!(users.len(), 2000);
        let mut seen = vec![0usize; l.num_stations()];
        for u in &users {
            assert!(l.contains(*u));
            seen[l.nearest_station(*u).index()] += 1;
        }
        // With 2000 uniform samples over 9 congruent cells, every cell gets
        // plenty of users (expected ≈ 222 each).
        for (i, n) in seen.iter().enumerate() {
            assert!(*n > 100, "cell {i} received only {n} users");
        }
    }

    #[test]
    fn placement_is_deterministic_under_a_seed() {
        let l = layout();
        let a = place_users_uniform(&l, 50, &mut StdRng::seed_from_u64(42));
        let b = place_users_uniform(&l, 50, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let c = place_users_uniform(&l, 50, &mut StdRng::seed_from_u64(43));
        assert_ne!(a, c);
    }

    #[test]
    fn zero_users_is_fine() {
        let l = layout();
        let users = place_users_uniform(&l, 0, &mut StdRng::seed_from_u64(3));
        assert!(users.is_empty());
    }

    #[test]
    fn hotspot_placement_clusters_users() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(5);
        let users = place_users_hotspots(&l, 60, 2, 80.0, &mut rng);
        assert_eq!(users.len(), 60);
        for u in &users {
            assert!(l.contains(*u));
        }
        // Users concentrate on at most a few cells: the busiest two cells
        // hold the large majority.
        let mut per_cell = vec![0usize; l.num_stations()];
        for u in &users {
            per_cell[l.nearest_station(*u).index()] += 1;
        }
        per_cell.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            per_cell[0] + per_cell[1] >= 45,
            "expected concentration, got {per_cell:?}"
        );
    }

    #[test]
    fn hotspot_degenerate_cases() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(place_users_hotspots(&l, 0, 3, 50.0, &mut rng).is_empty());
        // Zero spread puts everyone exactly on the hotspot centers.
        let users = place_users_hotspots(&l, 8, 2, 0.0, &mut rng);
        let unique: std::collections::HashSet<(i64, i64)> = users
            .iter()
            .map(|p| ((p.x * 1e6) as i64, (p.y * 1e6) as i64))
            .collect();
        assert!(unique.len() <= 2);
    }

    #[test]
    #[should_panic(expected = "hotspot")]
    fn zero_hotspots_panics() {
        let l = layout();
        let mut rng = StdRng::seed_from_u64(7);
        let _ = place_users_hotspots(&l, 5, 0, 50.0, &mut rng);
    }

    #[test]
    fn samples_fill_the_cell_not_just_the_middle() {
        // The empirical spread of samples should approach the hexagon's
        // extent: max |x - cx| close to √3/2·R, max |y - cy| close to R.
        let l = layout();
        let mut rng = StdRng::seed_from_u64(4);
        let cell = ServerId::new(0);
        let c = l.station(cell).unwrap();
        let r = l.cell_radius().as_meters();
        let mut max_dx = 0.0f64;
        let mut max_dy = 0.0f64;
        for _ in 0..5000 {
            let p = sample_point_in_cell(&l, cell, &mut rng);
            max_dx = max_dx.max((p.x - c.x).abs());
            max_dy = max_dy.max((p.y - c.y).abs());
        }
        assert!(max_dx > 0.9 * 3.0_f64.sqrt() / 2.0 * r);
        assert!(max_dy > 0.9 * r);
    }
}
