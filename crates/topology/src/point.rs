//! 2-D points in the network plane (meters).

use mec_types::Meters;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A point in the horizontal plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// East-west coordinate in meters.
    pub x: f64,
    /// North-south coordinate in meters.
    pub y: f64,
}

impl Point2 {
    /// The origin.
    pub const ORIGIN: Self = Self { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates in meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Self) -> Meters {
        Meters::new(((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt())
    }

    /// Squared Euclidean distance (avoids the square root for comparisons).
    pub fn distance_sq(self, other: Self) -> f64 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }
}

impl Add for Point2 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1} m, {:.1} m)", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(b).as_meters(), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point2::new(-2.5, 7.0);
        let b = Point2::new(10.0, -1.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a).as_meters(), 0.0);
    }

    #[test]
    fn add_sub_are_componentwise() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, -4.0);
        assert_eq!(a + b, Point2::new(4.0, -2.0));
        assert_eq!(a - b, Point2::new(-2.0, 6.0));
        assert_eq!(Point2::ORIGIN, Point2::default());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Point2::new(1.0, -2.0).to_string(), "(1.0 m, -2.0 m)");
    }
}
