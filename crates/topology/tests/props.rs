//! Property tests for the hexagonal geometry.

use mec_topology::hex::{cell_circumradius, hex_contains, spiral};
use mec_topology::{hex_centers, place_users_uniform, HexCoord, NetworkLayout, Point2};
use mec_types::Meters;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

proptest! {
    #[test]
    fn grid_distance_is_a_metric(
        a in (-50i32..50, -50i32..50),
        b in (-50i32..50, -50i32..50),
        c in (-50i32..50, -50i32..50),
    ) {
        let (a, b, c) = (
            HexCoord::new(a.0, a.1),
            HexCoord::new(b.0, b.1),
            HexCoord::new(c.0, c.1),
        );
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(a.grid_distance(a), 0);
        prop_assert_eq!(a.grid_distance(b), b.grid_distance(a));
        prop_assert!(a.grid_distance(c) <= a.grid_distance(b) + b.grid_distance(c));
    }

    #[test]
    fn grid_distance_matches_plane_distance_for_neighbors(
        q in -20i32..20, r in -20i32..20, dir in 0usize..6,
    ) {
        let isd = Meters::new(1000.0);
        let a = HexCoord::new(q, r);
        let b = a.neighbor(dir);
        prop_assert_eq!(a.grid_distance(b), 1);
        let d = a.to_point(isd).distance(b.to_point(isd));
        prop_assert!((d.as_meters() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn spiral_is_unique_and_ring_ordered(count in 1usize..200) {
        let cells = spiral(count);
        prop_assert_eq!(cells.len(), count);
        let unique: HashSet<_> = cells.iter().copied().collect();
        prop_assert_eq!(unique.len(), count);
        // Ring index never decreases along the spiral.
        let mut prev_ring = 0;
        for c in &cells {
            let ring = c.grid_distance(HexCoord::CENTER);
            prop_assert!(ring >= prev_ring);
            prop_assert!(ring <= prev_ring + 1);
            prev_ring = ring;
        }
    }

    #[test]
    fn stations_are_at_least_one_isd_apart(count in 2usize..40, isd_m in 100.0f64..5000.0) {
        let isd = Meters::new(isd_m);
        let centers = hex_centers(count, isd);
        for (i, a) in centers.iter().enumerate() {
            for b in centers.iter().skip(i + 1) {
                prop_assert!(a.distance(*b).as_meters() >= isd_m - 1e-6);
            }
        }
    }

    #[test]
    fn placed_users_are_in_coverage_and_near_their_cell(
        num_cells in 1usize..15,
        num_users in 1usize..60,
        seed in 0u64..1000,
    ) {
        let layout = NetworkLayout::hexagonal(num_cells, Meters::new(1000.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let users = place_users_uniform(&layout, num_users, &mut rng);
        let r = layout.cell_radius();
        for p in &users {
            prop_assert!(layout.contains(*p));
            // The nearest station is within the cell circumradius (plus
            // epsilon): points in a hexagon are within R of its center.
            let nearest = layout.nearest_station(*p);
            let d = layout.distance_to(nearest, *p).unwrap();
            prop_assert!(d.as_meters() <= r.as_meters() + 1e-6);
        }
    }

    #[test]
    fn hexagon_contains_its_center_and_inradius_disc(
        cx in -1e4f64..1e4, cy in -1e4f64..1e4,
        angle in 0.0f64..std::f64::consts::TAU,
        frac in 0.0f64..0.99,
    ) {
        let center = Point2::new(cx, cy);
        let r = cell_circumradius(Meters::new(1000.0));
        // Any point within the inradius (√3/2·R) is inside.
        let inradius = 3.0f64.sqrt() / 2.0 * r.as_meters();
        let p = Point2::new(
            cx + frac * inradius * angle.cos(),
            cy + frac * inradius * angle.sin(),
        );
        prop_assert!(hex_contains(center, r, p));
        // Any point beyond the circumradius is outside.
        let q = Point2::new(
            cx + 1.01 * r.as_meters() * angle.cos(),
            cy + 1.01 * r.as_meters() * angle.sin(),
        );
        prop_assert!(!hex_contains(center, r, q));
    }
}
