//! Default simulation parameters from the paper's evaluation (§V).
//!
//! These are the values the experiments use "unless specified otherwise";
//! they are collected here so every figure driver and example references a
//! single source of truth.

use crate::units::{Bits, DbMilliwatts, Hertz, Meters};

/// Number of hexagonal cells `S` in the default network.
pub const DEFAULT_NUM_SERVERS: usize = 9;

/// Default number of OFDMA subchannels `N`.
pub const DEFAULT_NUM_SUBCHANNELS: usize = 3;

/// Inter-site distance between adjacent base stations (1 km).
pub const INTER_SITE_DISTANCE: Meters = Meters::new(1_000.0);

/// User uplink transmit power `P_u` = 10 dBm.
pub const DEFAULT_TX_POWER: DbMilliwatts = DbMilliwatts::new(10.0);

/// Total uplink system bandwidth `B` = 20 MHz.
pub const DEFAULT_BANDWIDTH: Hertz = Hertz::new(20.0e6);

/// Background noise variance `σ²` = −100 dBm.
pub const DEFAULT_NOISE: DbMilliwatts = DbMilliwatts::new(-100.0);

/// MEC server computing capacity `f_s` = 20 GHz.
pub const DEFAULT_SERVER_CPU: Hertz = Hertz::new(20.0e9);

/// User device computing capacity `f_u` = 1 GHz.
pub const DEFAULT_USER_CPU: Hertz = Hertz::new(1.0e9);

/// Chip energy-efficiency coefficient `κ` = 5·10⁻²⁷ (in the `ε = κ f²`
/// per-cycle energy model).
pub const DEFAULT_KAPPA: f64 = 5.0e-27;

/// Default task input size `d_u` = 420 KB.
pub const DEFAULT_TASK_DATA: Bits = Bits::new(420.0 * 8.0 * 1024.0);

/// Path-loss model intercept: `L[dB] = 140.7 + 36.7 log10 d[km]`.
pub const PATHLOSS_INTERCEPT_DB: f64 = 140.7;

/// Path-loss model slope per decade of distance in km.
pub const PATHLOSS_SLOPE_DB: f64 = 36.7;

/// Lognormal shadowing standard deviation, 8 dB.
pub const SHADOWING_STDDEV_DB: f64 = 8.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_values() {
        assert_eq!(DEFAULT_NUM_SERVERS, 9);
        assert_eq!(DEFAULT_NUM_SUBCHANNELS, 3);
        assert_eq!(INTER_SITE_DISTANCE.as_kilometers(), 1.0);
        assert!((DEFAULT_TX_POWER.to_watts().as_watts() - 0.01).abs() < 1e-12);
        assert_eq!(DEFAULT_BANDWIDTH.as_mega(), 20.0);
        assert!((DEFAULT_NOISE.to_watts().as_watts() - 1e-13).abs() < 1e-25);
        assert_eq!(DEFAULT_SERVER_CPU.as_giga(), 20.0);
        assert_eq!(DEFAULT_USER_CPU.as_giga(), 1.0);
        assert_eq!(DEFAULT_KAPPA, 5.0e-27);
        assert!((DEFAULT_TASK_DATA.as_kilobytes() - 420.0).abs() < 1e-9);
    }

    #[test]
    fn pathloss_at_one_km_is_intercept() {
        // At d = 1 km the log term vanishes.
        let l = PATHLOSS_INTERCEPT_DB + PATHLOSS_SLOPE_DB * 1.0f64.log10();
        assert_eq!(l, 140.7);
    }
}
