//! Mobile device hardware profiles.

use crate::constants;
use crate::error::Error;
use crate::units::{Cycles, DbMilliwatts, Hertz, Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Hardware characteristics of a mobile user device.
///
/// Captures everything the model needs about the handset: local CPU speed
/// `f_u^local`, the chip energy coefficient `κ` from the `ε = κ f²`
/// per-cycle energy model, and the fixed uplink transmit power `p_u`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    cpu: Hertz,
    kappa: f64,
    tx_power: DbMilliwatts,
}

/// The time and energy cost of running a task locally (Eq. 1 and the
/// `t_local` definition in §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalCost {
    /// Local completion time `t_u^local = w_u / f_u^local`.
    pub time: Seconds,
    /// Local energy `E_u^local = κ (f_u^local)² w_u`.
    pub energy: Joules,
}

impl DeviceProfile {
    /// Creates a device profile.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the CPU speed or `κ` is
    /// non-positive/non-finite, or if the transmit power is non-finite.
    pub fn new(cpu: Hertz, kappa: f64, tx_power: DbMilliwatts) -> Result<Self, Error> {
        if !cpu.is_finite() || cpu.as_hz() <= 0.0 {
            return Err(Error::invalid(
                "f_u_local",
                "device CPU speed must be positive",
            ));
        }
        if !kappa.is_finite() || kappa <= 0.0 {
            return Err(Error::invalid(
                "kappa",
                "energy coefficient must be positive",
            ));
        }
        if !tx_power.is_finite() {
            return Err(Error::invalid("p_u", "transmit power must be finite"));
        }
        Ok(Self {
            cpu,
            kappa,
            tx_power,
        })
    }

    /// The paper's default handset: 1 GHz CPU, κ = 5·10⁻²⁷, 10 dBm uplink.
    pub fn paper_default() -> Self {
        Self {
            cpu: constants::DEFAULT_USER_CPU,
            kappa: constants::DEFAULT_KAPPA,
            tx_power: constants::DEFAULT_TX_POWER,
        }
    }

    /// Local CPU speed `f_u^local`.
    #[inline]
    pub fn cpu(&self) -> Hertz {
        self.cpu
    }

    /// Chip energy coefficient `κ`.
    #[inline]
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// Uplink transmit power `p_u` (dBm).
    #[inline]
    pub fn tx_power(&self) -> DbMilliwatts {
        self.tx_power
    }

    /// Uplink transmit power in linear watts.
    #[inline]
    pub fn tx_power_watts(&self) -> Watts {
        self.tx_power.to_watts()
    }

    /// Returns a copy of this profile with a different transmit power.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the power is non-finite.
    pub fn with_tx_power(mut self, tx_power: DbMilliwatts) -> Result<Self, Error> {
        if !tx_power.is_finite() {
            return Err(Error::invalid("p_u", "transmit power must be finite"));
        }
        self.tx_power = tx_power;
        Ok(self)
    }

    /// The local execution cost for a task of the given workload.
    pub fn local_cost(&self, workload: Cycles) -> LocalCost {
        let time = workload / self.cpu;
        let energy = Joules::new(self.kappa * self.cpu.as_hz().powi(2) * workload.as_cycles());
        LocalCost { time, energy }
    }
}

impl Default for DeviceProfile {
    /// Defaults to [`DeviceProfile::paper_default`].
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_constants() {
        let d = DeviceProfile::paper_default();
        assert_eq!(d.cpu().as_giga(), 1.0);
        assert_eq!(d.kappa(), 5.0e-27);
        assert_eq!(d.tx_power().as_dbm(), 10.0);
        assert!((d.tx_power_watts().as_watts() - 0.01).abs() < 1e-12);
        assert_eq!(DeviceProfile::default(), d);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(DeviceProfile::new(Hertz::new(0.0), 1e-27, DbMilliwatts::new(10.0)).is_err());
        assert!(DeviceProfile::new(Hertz::from_giga(1.0), 0.0, DbMilliwatts::new(10.0)).is_err());
        assert!(DeviceProfile::new(Hertz::from_giga(1.0), -1.0, DbMilliwatts::new(10.0)).is_err());
        assert!(
            DeviceProfile::new(Hertz::from_giga(1.0), 1e-27, DbMilliwatts::new(f64::NAN)).is_err()
        );
    }

    #[test]
    fn with_tx_power_replaces_only_the_power() {
        let d = DeviceProfile::paper_default();
        let boosted = d.with_tx_power(DbMilliwatts::new(20.0)).unwrap();
        assert_eq!(boosted.tx_power().as_dbm(), 20.0);
        assert_eq!(boosted.cpu(), d.cpu());
        assert_eq!(boosted.kappa(), d.kappa());
        assert!(d.with_tx_power(DbMilliwatts::new(f64::NAN)).is_err());
    }

    #[test]
    fn local_cost_energy_is_quadratic_in_cpu() {
        let w = Cycles::from_mega(1000.0);
        let slow =
            DeviceProfile::new(Hertz::from_giga(1.0), 5e-27, DbMilliwatts::new(10.0)).unwrap();
        let fast =
            DeviceProfile::new(Hertz::from_giga(2.0), 5e-27, DbMilliwatts::new(10.0)).unwrap();
        let e_slow = slow.local_cost(w).energy.as_joules();
        let e_fast = fast.local_cost(w).energy.as_joules();
        assert!((e_fast / e_slow - 4.0).abs() < 1e-12, "E ∝ f²");
        // ...while time halves.
        let t_slow = slow.local_cost(w).time.as_secs();
        let t_fast = fast.local_cost(w).time.as_secs();
        assert!((t_slow / t_fast - 2.0).abs() < 1e-12);
    }
}
