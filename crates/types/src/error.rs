//! The shared error type for the TSAJS workspace.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced while constructing or validating MEC model objects.
///
/// Every public fallible function in the workspace returns this type, so it
/// deliberately covers problem-construction, feasibility and solver-input
/// failure modes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A scalar parameter was outside its valid domain.
    InvalidParameter {
        /// The parameter name as it appears in the paper/API.
        name: &'static str,
        /// Human-readable description of the violated requirement.
        reason: String,
    },
    /// Two containers that must describe the same population disagree in
    /// length (e.g. a task list and a preference list).
    DimensionMismatch {
        /// What was being matched up.
        what: &'static str,
        /// The expected length.
        expected: usize,
        /// The actual length.
        actual: usize,
    },
    /// An entity identifier was out of range for the scenario.
    UnknownEntity {
        /// The entity kind ("user", "server", "subchannel").
        kind: &'static str,
        /// The offending index.
        index: usize,
        /// The number of entities of that kind in the scenario.
        count: usize,
    },
    /// An offloading decision violates one of the JTORA constraints
    /// (12b)–(12d).
    InfeasibleAssignment(String),
    /// A resource allocation violates constraint (12e) or (12f).
    InfeasibleAllocation(String),
    /// A solver was asked to run on a scenario it cannot handle
    /// (e.g. exhaustive search beyond its configured size limit).
    UnsupportedScenario(String),
}

impl Error {
    /// Convenience constructor for [`Error::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        Error::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Error::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch for {what}: expected {expected}, got {actual}"
            ),
            Error::UnknownEntity { kind, index, count } => {
                write!(f, "unknown {kind} index {index} (scenario has {count})")
            }
            Error::InfeasibleAssignment(msg) => write!(f, "infeasible assignment: {msg}"),
            Error::InfeasibleAllocation(msg) => write!(f, "infeasible allocation: {msg}"),
            Error::UnsupportedScenario(msg) => write!(f, "unsupported scenario: {msg}"),
        }
    }
}

impl StdError for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = Error::invalid("beta_time", "must lie in [0, 1]");
        assert_eq!(
            e.to_string(),
            "invalid parameter `beta_time`: must lie in [0, 1]"
        );

        let e = Error::DimensionMismatch {
            what: "tasks vs preferences",
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("expected 4, got 3"));

        let e = Error::UnknownEntity {
            kind: "server",
            index: 9,
            count: 4,
        };
        assert_eq!(e.to_string(), "unknown server index 9 (scenario has 4)");
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_good_err<E: StdError + Send + Sync + 'static>() {}
        assert_good_err::<Error>();
    }

    #[test]
    fn errors_compare_equal_structurally() {
        assert_eq!(Error::invalid("x", "bad"), Error::invalid("x", "bad"));
        assert_ne!(Error::invalid("x", "bad"), Error::invalid("y", "bad"));
    }
}
