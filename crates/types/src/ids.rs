//! Entity identifiers.
//!
//! Users, servers and OFDMA subchannels are all indexed densely from zero,
//! but carrying them as distinct newtypes prevents a user index from being
//! used to index a server table and vice versa.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(usize);

        impl $name {
            /// Creates an identifier from a dense zero-based index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// The dense zero-based index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }

            /// Iterates over the first `count` identifiers: `0..count`.
            pub fn all(count: usize) -> impl Iterator<Item = Self> + Clone {
                (0..count).map(Self)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

id!(
    /// Identifies a mobile user `u ∈ U`.
    UserId,
    "u"
);

id!(
    /// Identifies a base station / MEC server `s ∈ S` (used
    /// interchangeably, as in the paper).
    ServerId,
    "s"
);

id!(
    /// Identifies an OFDMA uplink subchannel `j ∈ N`.
    SubchannelId,
    "j"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn index_roundtrip() {
        let u = UserId::new(7);
        assert_eq!(u.index(), 7);
        assert_eq!(usize::from(u), 7);
        assert_eq!(UserId::from(7usize), u);
    }

    #[test]
    fn all_enumerates_dense_range() {
        let ids: Vec<ServerId> = ServerId::all(3).collect();
        assert_eq!(
            ids,
            vec![ServerId::new(0), ServerId::new(1), ServerId::new(2)]
        );
        assert_eq!(SubchannelId::all(0).count(), 0);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(UserId::new(3).to_string(), "u3");
        assert_eq!(ServerId::new(1).to_string(), "s1");
        assert_eq!(SubchannelId::new(0).to_string(), "j0");
    }

    #[test]
    fn usable_as_hash_keys() {
        let set: HashSet<UserId> = UserId::all(10).collect();
        assert_eq!(set.len(), 10);
        assert!(set.contains(&UserId::new(9)));
    }

    #[test]
    fn ordering_matches_index() {
        assert!(UserId::new(1) < UserId::new(2));
        let mut v = vec![ServerId::new(2), ServerId::new(0), ServerId::new(1)];
        v.sort();
        assert_eq!(
            v,
            vec![ServerId::new(0), ServerId::new(1), ServerId::new(2)]
        );
    }
}
