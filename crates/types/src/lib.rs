//! # mec-types
//!
//! Domain vocabulary for the TSAJS reproduction: strongly-typed physical
//! units, entity identifiers, task descriptions, device/server profiles,
//! user and provider preferences, and the crate-wide error type.
//!
//! Everything downstream (`mec-radio`, `mec-system`, `tsajs`, …) builds on
//! these types, so they are deliberately small, `Copy` where cheap, and
//! eagerly implement the common std traits plus Serde.
//!
//! ## Example
//!
//! ```
//! use mec_types::{Task, Bits, Cycles, DeviceProfile, UserPreferences};
//!
//! # fn main() -> Result<(), mec_types::Error> {
//! // A task moving 420 KB of state that needs 1000 Megacycles of compute.
//! let task = Task::new(Bits::from_kilobytes(420.0), Cycles::from_mega(1000.0))?;
//! let device = DeviceProfile::paper_default();
//! let prefs = UserPreferences::balanced();
//!
//! let local = task.local_cost(&device);
//! assert!(local.time.as_secs() > 0.0);
//! assert!(local.energy.as_joules() > 0.0);
//! assert_eq!(prefs.beta_time() + prefs.beta_energy(), 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constants;
pub mod device;
pub mod error;
pub mod ids;
pub mod preferences;
pub mod server;
pub mod task;
pub mod threads;
pub mod units;

pub use device::{DeviceProfile, LocalCost};
pub use error::Error;
pub use ids::{ServerId, SubchannelId, UserId};
pub use preferences::{ProviderPreference, UserPreferences};
pub use server::ServerProfile;
pub use task::Task;
pub use threads::effective_parallelism;
pub use units::{
    Bits, BitsPerSecond, Cycles, DbMilliwatts, Decibels, Hertz, Joules, Meters, Seconds, Watts,
};

/// Crate-wide result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;
