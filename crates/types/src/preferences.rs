//! User and service-provider preferences.

use crate::error::Error;
use serde::{Deserialize, Serialize};

/// A user's weighting between time savings and energy savings in the
/// offloading benefit `J_u` (Eq. 10).
///
/// Invariants enforced at construction: `β_time, β_energy ∈ [0, 1]` and
/// `β_time + β_energy = 1`.
///
/// # Example
///
/// ```
/// use mec_types::UserPreferences;
///
/// # fn main() -> Result<(), mec_types::Error> {
/// // A user with a low battery leans toward energy conservation.
/// let prefs = UserPreferences::new(0.2)?;
/// assert_eq!(prefs.beta_time(), 0.2);
/// assert_eq!(prefs.beta_energy(), 0.8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserPreferences {
    beta_time: f64,
}

impl UserPreferences {
    /// Creates preferences from the time weight `β_time`; the energy weight
    /// is implied as `1 − β_time`, which makes the sum-to-one invariant
    /// unrepresentable to violate.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `β_time ∉ [0, 1]` or is not
    /// finite.
    pub fn new(beta_time: f64) -> Result<Self, Error> {
        if !beta_time.is_finite() || !(0.0..=1.0).contains(&beta_time) {
            return Err(Error::invalid("beta_time", "must lie in [0, 1]"));
        }
        Ok(Self { beta_time })
    }

    /// The paper's default: `β_time = β_energy = 0.5`.
    pub fn balanced() -> Self {
        Self { beta_time: 0.5 }
    }

    /// The time-savings weight `β_u^time`.
    #[inline]
    pub fn beta_time(&self) -> f64 {
        self.beta_time
    }

    /// The energy-savings weight `β_u^energy = 1 − β_u^time`.
    #[inline]
    pub fn beta_energy(&self) -> f64 {
        1.0 - self.beta_time
    }
}

impl Default for UserPreferences {
    /// Defaults to [`UserPreferences::balanced`].
    fn default() -> Self {
        Self::balanced()
    }
}

/// The service provider's priority weight `λ_u ∈ (0, 1]` for a user
/// (Eq. 11) — e.g. raised for first responders or premium subscribers.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ProviderPreference(f64);

impl ProviderPreference {
    /// Creates a provider preference.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `λ ∈ (0, 1]`.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !lambda.is_finite() || lambda <= 0.0 || lambda > 1.0 {
            return Err(Error::invalid("lambda_u", "must lie in (0, 1]"));
        }
        Ok(Self(lambda))
    }

    /// The maximum priority, `λ = 1` (the paper's default for all users).
    pub const MAX: Self = Self(1.0);

    /// The raw weight value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Default for ProviderPreference {
    /// Defaults to the paper's `λ_u = 1`.
    fn default() -> Self {
        Self::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_always_sum_to_one() {
        for bt in [0.0, 0.05, 0.5, 0.95, 1.0] {
            let p = UserPreferences::new(bt).unwrap();
            assert_eq!(p.beta_time() + p.beta_energy(), 1.0);
        }
    }

    #[test]
    fn balanced_is_half_half() {
        let p = UserPreferences::balanced();
        assert_eq!(p.beta_time(), 0.5);
        assert_eq!(p.beta_energy(), 0.5);
        assert_eq!(UserPreferences::default(), p);
    }

    #[test]
    fn rejects_out_of_range_beta() {
        assert!(UserPreferences::new(-0.01).is_err());
        assert!(UserPreferences::new(1.01).is_err());
        assert!(UserPreferences::new(f64::NAN).is_err());
    }

    #[test]
    fn provider_preference_domain_is_half_open() {
        assert!(ProviderPreference::new(0.0).is_err());
        assert!(ProviderPreference::new(-0.5).is_err());
        assert!(ProviderPreference::new(1.0).is_ok());
        assert!(ProviderPreference::new(1.5).is_err());
        assert!(ProviderPreference::new(f64::INFINITY).is_err());
        assert_eq!(ProviderPreference::default(), ProviderPreference::MAX);
        assert_eq!(ProviderPreference::MAX.value(), 1.0);
    }
}
