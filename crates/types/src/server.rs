//! MEC server (base station) profiles.

use crate::constants;
use crate::error::Error;
use crate::units::Hertz;
use serde::{Deserialize, Serialize};

/// Computing characteristics of an MEC server co-located with a base
/// station.
///
/// The model only needs the aggregate computation rate `f_s` the server can
/// split among its offloaded users (constraint 12f).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerProfile {
    capacity: Hertz,
}

impl ServerProfile {
    /// Creates a server profile from its total computing capacity `f_s`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the capacity is non-positive
    /// or non-finite.
    pub fn new(capacity: Hertz) -> Result<Self, Error> {
        if !capacity.is_finite() || capacity.as_hz() <= 0.0 {
            return Err(Error::invalid("f_s", "server capacity must be positive"));
        }
        Ok(Self { capacity })
    }

    /// The paper's default server: `f_s` = 20 GHz.
    pub fn paper_default() -> Self {
        Self {
            capacity: constants::DEFAULT_SERVER_CPU,
        }
    }

    /// Total computing capacity `f_s`.
    #[inline]
    pub fn capacity(&self) -> Hertz {
        self.capacity
    }
}

impl Default for ServerProfile {
    /// Defaults to [`ServerProfile::paper_default`].
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_20_ghz() {
        assert_eq!(ServerProfile::paper_default().capacity().as_giga(), 20.0);
        assert_eq!(ServerProfile::default(), ServerProfile::paper_default());
    }

    #[test]
    fn rejects_nonpositive_capacity() {
        assert!(ServerProfile::new(Hertz::new(0.0)).is_err());
        assert!(ServerProfile::new(Hertz::new(-1.0)).is_err());
        assert!(ServerProfile::new(Hertz::new(f64::NAN)).is_err());
        assert!(ServerProfile::new(Hertz::from_giga(20.0)).is_ok());
    }
}
