//! User computation tasks.

use crate::device::{DeviceProfile, LocalCost};
use crate::error::Error;
use crate::units::{Bits, Cycles};
use serde::{Deserialize, Serialize};

/// An atomic (non-divisible) computation task `T_u = ⟨d_u, w_u⟩`.
///
/// * `data` (`d_u`) is the volume of state that must be shipped uplink to
///   relocate execution (program, settings, inputs).
/// * `workload` (`w_u`) is the CPU work needed to complete the task.
///
/// # Example
///
/// ```
/// use mec_types::{Task, Bits, Cycles, DeviceProfile};
///
/// # fn main() -> Result<(), mec_types::Error> {
/// let task = Task::new(Bits::from_kilobytes(420.0), Cycles::from_mega(1000.0))?;
/// let cost = task.local_cost(&DeviceProfile::paper_default());
/// // 1000 Megacycles on a 1 GHz CPU takes exactly one second.
/// assert!((cost.time.as_secs() - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    data: Bits,
    workload: Cycles,
    #[serde(default = "Bits::default")]
    output: Bits,
}

impl Task {
    /// Creates a task from its input size and computational load. The
    /// result size is zero (the paper's default — downlink transfer is
    /// ignored because results are small); use [`Task::with_output`] when
    /// modeling the downlink.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if either quantity is
    /// non-positive or non-finite — a task with no data or no work is not
    /// meaningful in the offloading model (its local/offload cost ratios
    /// would divide by zero).
    pub fn new(data: Bits, workload: Cycles) -> Result<Self, Error> {
        if !data.is_finite() || data.as_bits() <= 0.0 {
            return Err(Error::invalid(
                "d_u",
                "task data size must be positive and finite",
            ));
        }
        if !workload.is_finite() || workload.as_cycles() <= 0.0 {
            return Err(Error::invalid(
                "w_u",
                "task workload must be positive and finite",
            ));
        }
        Ok(Self {
            data,
            workload,
            output: Bits::ZERO,
        })
    }

    /// Creates a task that also returns `output` bits of results over the
    /// downlink (§III-A.2's extension: "if the downlink latency becomes
    /// significant, our algorithm can still adapt by taking into account
    /// the actual downlink rate and the output data size").
    ///
    /// # Errors
    ///
    /// As [`Task::new`]; additionally rejects a negative or non-finite
    /// output size (zero is allowed).
    pub fn with_output(data: Bits, workload: Cycles, output: Bits) -> Result<Self, Error> {
        if !output.is_finite() || output.as_bits() < 0.0 {
            return Err(Error::invalid(
                "d_out",
                "task output size must be non-negative and finite",
            ));
        }
        let mut task = Self::new(data, workload)?;
        task.output = output;
        Ok(task)
    }

    /// The uplink data volume `d_u`.
    #[inline]
    pub fn data(&self) -> Bits {
        self.data
    }

    /// The computational load `w_u`.
    #[inline]
    pub fn workload(&self) -> Cycles {
        self.workload
    }

    /// The result size returned over the downlink (zero unless the task
    /// was built with [`Task::with_output`]).
    #[inline]
    pub fn output(&self) -> Bits {
        self.output
    }

    /// Computes the cost of executing this task locally on `device`:
    /// `t_local = w_u / f_local` and `E_local = κ f_local² w_u` (Eq. 1).
    pub fn local_cost(&self, device: &DeviceProfile) -> LocalCost {
        device.local_cost(self.workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Hertz;

    fn task() -> Task {
        Task::new(Bits::from_kilobytes(420.0), Cycles::from_mega(1000.0)).unwrap()
    }

    #[test]
    fn accessors_return_inputs() {
        let t = task();
        assert!((t.data().as_kilobytes() - 420.0).abs() < 1e-9);
        assert_eq!(t.workload().as_mega(), 1000.0);
    }

    #[test]
    fn rejects_nonpositive_data() {
        assert!(Task::new(Bits::new(0.0), Cycles::from_mega(1.0)).is_err());
        assert!(Task::new(Bits::new(-1.0), Cycles::from_mega(1.0)).is_err());
        assert!(Task::new(Bits::new(f64::NAN), Cycles::from_mega(1.0)).is_err());
    }

    #[test]
    fn rejects_nonpositive_workload() {
        assert!(Task::new(Bits::new(1.0), Cycles::new(0.0)).is_err());
        assert!(Task::new(Bits::new(1.0), Cycles::new(f64::INFINITY)).is_err());
    }

    #[test]
    fn local_cost_matches_paper_formulas() {
        let t = task();
        let d = DeviceProfile::paper_default();
        let cost = t.local_cost(&d);
        // t_local = w / f = 1e9 / 1e9 = 1 s.
        assert!((cost.time.as_secs() - 1.0).abs() < 1e-12);
        // E_local = κ f² w = 5e-27 * (1e9)^2 * 1e9 = 5e-27 * 1e27 = 5 J... no:
        // 5e-27 * 1e18 * 1e9 = 5e0 = 5 J.
        assert!((cost.energy.as_joules() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn output_defaults_to_zero_and_validates() {
        assert_eq!(task().output(), Bits::ZERO);
        let t = Task::with_output(
            Bits::from_kilobytes(420.0),
            Cycles::from_mega(1000.0),
            Bits::from_kilobytes(50.0),
        )
        .unwrap();
        assert!((t.output().as_kilobytes() - 50.0).abs() < 1e-9);
        // Zero output is fine; negative or NaN is not.
        assert!(Task::with_output(Bits::new(1.0), Cycles::new(1.0), Bits::ZERO).is_ok());
        assert!(Task::with_output(Bits::new(1.0), Cycles::new(1.0), Bits::new(-1.0)).is_err());
        assert!(Task::with_output(Bits::new(1.0), Cycles::new(1.0), Bits::new(f64::NAN)).is_err());
    }

    #[test]
    fn local_time_scales_inversely_with_cpu() {
        let t = task();
        let slow = DeviceProfile::new(
            Hertz::from_giga(0.5),
            5.0e-27,
            crate::constants::DEFAULT_TX_POWER,
        )
        .unwrap();
        assert!((t.local_cost(&slow).time.as_secs() - 2.0).abs() < 1e-12);
    }
}
