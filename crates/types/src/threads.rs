//! Worker-thread budgeting shared by every parallel component.
//!
//! All fan-out in the workspace (multi-start chains, the tempering worker
//! pool, the exhaustive solver, the workload runner) resolves its thread
//! count through [`effective_parallelism`] instead of calling
//! [`std::thread::available_parallelism`] directly, so a single CLI flag
//! (`--threads`) or environment variable (`TSAJS_THREADS`) caps the whole
//! process.
//!
//! Resolution order:
//!
//! 1. an explicit, per-call override (e.g. from `--threads N`), when `> 0`;
//! 2. the `TSAJS_THREADS` environment variable, when it parses to `> 0`;
//! 3. [`std::thread::available_parallelism`], falling back to 1.
//!
//! The result is always at least 1. Note that worker count never affects
//! *results* anywhere in the workspace — every parallel component is
//! deterministic by construction — only wall-clock time.

/// Environment variable consulted when no explicit thread override is given.
pub const THREADS_ENV_VAR: &str = "TSAJS_THREADS";

/// Resolve the number of worker threads a parallel component should use.
///
/// `explicit` is an optional per-call override (typically wired to a
/// `--threads` CLI flag); zero is treated as "not set". See the module
/// docs for the full resolution order.
///
/// ## Example
///
/// ```
/// use mec_types::threads::effective_parallelism;
///
/// // An explicit override always wins.
/// assert_eq!(effective_parallelism(Some(3)), 3);
/// // Without one, the result is still at least one worker.
/// assert!(effective_parallelism(None) >= 1);
/// ```
#[must_use]
pub fn effective_parallelism(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        if n > 0 {
            return n;
        }
    }
    if let Ok(raw) = std::env::var(THREADS_ENV_VAR) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_override_wins_and_zero_is_ignored() {
        assert_eq!(effective_parallelism(Some(7)), 7);
        assert_eq!(effective_parallelism(Some(1)), 1);
        // Zero falls through to the environment / hardware default.
        assert!(effective_parallelism(Some(0)) >= 1);
    }

    #[test]
    fn default_is_at_least_one_worker() {
        assert!(effective_parallelism(None) >= 1);
    }
}
