//! Strongly-typed physical units.
//!
//! All units wrap `f64` and are zero-cost. Arithmetic is only provided where
//! it is dimensionally meaningful (e.g. [`Bits`] ÷ [`BitsPerSecond`] =
//! [`Seconds`]), which turns a whole class of unit-confusion bugs into
//! compile errors.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Declares an `f64`-backed unit newtype with the shared boilerplate.
macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $raw_getter:ident, $display:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw `f64` value in this unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The zero value of this unit.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw value.
            #[inline]
            pub const fn $raw_getter(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the maximum of `self` and `other`.
            ///
            /// NaN values are ignored in favour of the other operand,
            /// matching [`f64::max`].
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the minimum of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{}", " ", $display), self.0)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two quantities of the same unit (dimensionless).
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }
    };
}

unit!(
    /// A quantity of data in bits (task input size `d_u`).
    Bits,
    as_bits,
    "bit"
);

unit!(
    /// A quantity of computation in CPU cycles (task workload `w_u`).
    Cycles,
    as_cycles,
    "cycles"
);

unit!(
    /// A frequency / rate in hertz. Used both for radio bandwidth and for
    /// CPU speed (cycles per second).
    Hertz,
    as_hz,
    "Hz"
);

unit!(
    /// A data rate in bits per second (uplink rate `R_us`).
    BitsPerSecond,
    as_bps,
    "bit/s"
);

unit!(
    /// A duration in seconds.
    Seconds,
    as_secs,
    "s"
);

unit!(
    /// An energy in joules.
    Joules,
    as_joules,
    "J"
);

unit!(
    /// A power in watts (linear scale).
    Watts,
    as_watts,
    "W"
);

unit!(
    /// A distance in meters.
    Meters,
    as_meters,
    "m"
);

unit!(
    /// A dimensionless ratio expressed in decibels.
    Decibels,
    as_db,
    "dB"
);

unit!(
    /// A power level referenced to one milliwatt, in dBm.
    DbMilliwatts,
    as_dbm,
    "dBm"
);

impl Bits {
    /// Constructs from kilobytes (1 KB = 8192 bits, binary kilobyte as used
    /// by the paper's "420 KB" input size).
    pub fn from_kilobytes(kb: f64) -> Self {
        Self::new(kb * 8.0 * 1024.0)
    }

    /// Constructs from megabits (1 Mb = 10^6 bits).
    pub fn from_megabits(mb: f64) -> Self {
        Self::new(mb * 1.0e6)
    }

    /// The value in kilobytes.
    pub fn as_kilobytes(self) -> f64 {
        self.as_bits() / (8.0 * 1024.0)
    }
}

impl Cycles {
    /// Constructs from megacycles (10^6 cycles), the unit used throughout
    /// the paper's evaluation (`w_u` in Megacycles).
    pub fn from_mega(mega: f64) -> Self {
        Self::new(mega * 1.0e6)
    }

    /// Constructs from gigacycles (10^9 cycles).
    pub fn from_giga(giga: f64) -> Self {
        Self::new(giga * 1.0e9)
    }

    /// The value in megacycles.
    pub fn as_mega(self) -> f64 {
        self.as_cycles() / 1.0e6
    }
}

impl Hertz {
    /// Constructs from megahertz.
    pub fn from_mega(mhz: f64) -> Self {
        Self::new(mhz * 1.0e6)
    }

    /// Constructs from gigahertz.
    pub fn from_giga(ghz: f64) -> Self {
        Self::new(ghz * 1.0e9)
    }

    /// The value in megahertz.
    pub fn as_mega(self) -> f64 {
        self.as_hz() / 1.0e6
    }

    /// The value in gigahertz.
    pub fn as_giga(self) -> f64 {
        self.as_hz() / 1.0e9
    }
}

impl Seconds {
    /// Constructs from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms / 1.0e3)
    }

    /// The value in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.as_secs() * 1.0e3
    }
}

impl Joules {
    /// The value in millijoules.
    pub fn as_millijoules(self) -> f64 {
        self.as_joules() * 1.0e3
    }
}

impl Meters {
    /// Constructs from kilometers.
    pub fn from_kilometers(km: f64) -> Self {
        Self::new(km * 1.0e3)
    }

    /// The value in kilometers.
    pub fn as_kilometers(self) -> f64 {
        self.as_meters() / 1.0e3
    }
}

impl Watts {
    /// Converts a linear power to dBm.
    ///
    /// Returns negative infinity for zero power.
    pub fn to_dbm(self) -> DbMilliwatts {
        DbMilliwatts::new(10.0 * (self.as_watts() * 1.0e3).log10())
    }
}

impl DbMilliwatts {
    /// Converts this dBm level to linear watts.
    pub fn to_watts(self) -> Watts {
        Watts::new(10.0_f64.powf(self.as_dbm() / 10.0) / 1.0e3)
    }
}

impl Decibels {
    /// Converts a decibel ratio to its linear equivalent.
    pub fn to_linear(self) -> f64 {
        10.0_f64.powf(self.as_db() / 10.0)
    }

    /// Converts a linear ratio to decibels.
    pub fn from_linear(linear: f64) -> Self {
        Self::new(10.0 * linear.log10())
    }
}

// Dimensioned arithmetic -----------------------------------------------------

impl Div<BitsPerSecond> for Bits {
    type Output = Seconds;
    /// Transmission time: data volume divided by link rate.
    #[inline]
    fn div(self, rate: BitsPerSecond) -> Seconds {
        Seconds::new(self.as_bits() / rate.as_bps())
    }
}

impl Div<Hertz> for Cycles {
    type Output = Seconds;
    /// Execution time: workload divided by CPU speed.
    #[inline]
    fn div(self, speed: Hertz) -> Seconds {
        Seconds::new(self.as_cycles() / speed.as_hz())
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Energy: power integrated over time.
    #[inline]
    fn mul(self, time: Seconds) -> Joules {
        Joules::new(self.as_watts() * time.as_secs())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, power: Watts) -> Joules {
        power * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kilobytes_roundtrip() {
        let b = Bits::from_kilobytes(420.0);
        assert!((b.as_kilobytes() - 420.0).abs() < 1e-9);
        assert!((b.as_bits() - 420.0 * 8192.0).abs() < 1e-6);
    }

    #[test]
    fn megacycles_roundtrip() {
        let c = Cycles::from_mega(1000.0);
        assert_eq!(c.as_cycles(), 1.0e9);
        assert_eq!(c.as_mega(), 1000.0);
        assert_eq!(Cycles::from_giga(1.0), c);
    }

    #[test]
    fn hertz_constructors() {
        assert_eq!(Hertz::from_giga(20.0).as_hz(), 20.0e9);
        assert_eq!(Hertz::from_mega(20.0).as_mega(), 20.0);
        assert!((Hertz::from_giga(1.5).as_giga() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn dbm_to_watts_reference_points() {
        // 10 dBm = 10 mW, -100 dBm = 1e-13 W (the paper's P_u and sigma^2).
        assert!((DbMilliwatts::new(10.0).to_watts().as_watts() - 0.01).abs() < 1e-12);
        assert!((DbMilliwatts::new(-100.0).to_watts().as_watts() - 1e-13).abs() < 1e-25);
        assert!((DbMilliwatts::new(0.0).to_watts().as_watts() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn watts_dbm_roundtrip() {
        for dbm in [-120.0, -30.0, 0.0, 10.0, 46.0] {
            let w = DbMilliwatts::new(dbm).to_watts();
            assert!((w.to_dbm().as_dbm() - dbm).abs() < 1e-9, "dbm={dbm}");
        }
    }

    #[test]
    fn decibel_linear_roundtrip() {
        for db in [-140.7, -36.7, 0.0, 3.0, 30.0] {
            let lin = Decibels::new(db).to_linear();
            assert!((Decibels::from_linear(lin).as_db() - db).abs() < 1e-9);
        }
        assert!((Decibels::new(3.0103).to_linear() - 2.0).abs() < 1e-3);
    }

    #[test]
    fn dimensioned_division_gives_time() {
        let t = Bits::new(1.0e6) / BitsPerSecond::new(2.0e6);
        assert_eq!(t, Seconds::new(0.5));
        let e = Cycles::from_mega(1000.0) / Hertz::from_giga(1.0);
        assert_eq!(e, Seconds::new(1.0));
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(0.01) * Seconds::new(3.0);
        assert_eq!(e, Joules::new(0.03));
        assert_eq!(Seconds::new(3.0) * Watts::new(0.01), e);
        assert!((e.as_millijoules() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Seconds::new(1.0) + Seconds::new(2.0);
        assert_eq!(a, Seconds::new(3.0));
        assert_eq!(a - Seconds::new(1.0), Seconds::new(2.0));
        assert_eq!(a * 2.0, Seconds::new(6.0));
        assert_eq!(2.0 * a, Seconds::new(6.0));
        assert_eq!(a / 3.0, Seconds::new(1.0));
        assert_eq!(a / Seconds::new(1.5), 2.0);
        assert!(Seconds::new(1.0) < Seconds::new(2.0));
        let mut acc = Seconds::ZERO;
        acc += Seconds::new(0.5);
        assert_eq!(acc, Seconds::new(0.5));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Joules = (1..=4).map(|i| Joules::new(i as f64)).sum();
        assert_eq!(total, Joules::new(10.0));
    }

    #[test]
    fn display_includes_unit_suffix() {
        assert_eq!(format!("{}", Seconds::new(1.5)), "1.5 s");
        assert_eq!(format!("{}", Watts::new(0.01)), "0.01 W");
        assert_eq!(format!("{}", DbMilliwatts::new(10.0)), "10 dBm");
    }

    #[test]
    fn min_max_and_finite() {
        assert_eq!(Seconds::new(1.0).max(Seconds::new(2.0)), Seconds::new(2.0));
        assert_eq!(Seconds::new(1.0).min(Seconds::new(2.0)), Seconds::new(1.0));
        assert!(Seconds::new(1.0).is_finite());
        assert!(!Seconds::new(f64::NAN).is_finite());
        assert!(!Seconds::new(f64::INFINITY).is_finite());
    }

    #[test]
    fn zero_constant_and_default_agree() {
        assert_eq!(Bits::ZERO, Bits::default());
        assert_eq!(Bits::ZERO.as_bits(), 0.0);
    }

    #[test]
    fn serde_transparent_roundtrip() {
        // Unit newtypes serialize as bare numbers (transparent).
        let s = serde_json_like(Seconds::new(2.5));
        assert_eq!(s, "2.5");
    }

    /// Minimal serde check without pulling serde_json: uses serde's
    /// `Serialize` into a tiny custom serializer would be overkill — instead
    /// round-trip through bincode-like manual check via `serde::Serialize`
    /// is not available offline, so we assert the transparent attribute by
    /// type-level construction.
    fn serde_json_like(v: Seconds) -> String {
        // `#[serde(transparent)]` guarantees the in-memory layout mirrors a
        // bare f64; format it the way serde_json would.
        format!("{}", v.as_secs())
    }
}
