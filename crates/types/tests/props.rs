//! Property tests for the unit system.

use mec_types::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn dbm_watts_roundtrip(dbm in -150.0f64..60.0) {
        let w = DbMilliwatts::new(dbm).to_watts();
        prop_assert!(w.as_watts() > 0.0);
        prop_assert!((w.to_dbm().as_dbm() - dbm).abs() < 1e-9);
    }

    #[test]
    fn db_linear_roundtrip(db in -200.0f64..100.0) {
        let lin = Decibels::new(db).to_linear();
        prop_assert!(lin > 0.0);
        prop_assert!((Decibels::from_linear(lin).as_db() - db).abs() < 1e-9);
    }

    #[test]
    fn transmission_time_scales_correctly(
        bits in 1.0f64..1e12,
        rate in 1.0f64..1e12,
    ) {
        let t = Bits::new(bits) / BitsPerSecond::new(rate);
        prop_assert!((t.as_secs() - bits / rate).abs() <= 1e-12 * (bits / rate));
        // Doubling the rate halves the time.
        let t2 = Bits::new(bits) / BitsPerSecond::new(2.0 * rate);
        prop_assert!((t.as_secs() / t2.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn energy_is_bilinear(power in 1e-6f64..100.0, time in 1e-6f64..1e4) {
        let e = Watts::new(power) * Seconds::new(time);
        prop_assert!((e.as_joules() - power * time).abs() <= 1e-12 * power * time);
        let e2 = Watts::new(2.0 * power) * Seconds::new(time);
        prop_assert!((e2.as_joules() / e.as_joules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unit_addition_is_commutative_and_associative(
        a in -1e9f64..1e9, b in -1e9f64..1e9, c in -1e9f64..1e9,
    ) {
        let (x, y, z) = (Seconds::new(a), Seconds::new(b), Seconds::new(c));
        prop_assert_eq!(x + y, y + x);
        let left = (x + y) + z;
        let right = x + (y + z);
        prop_assert!((left.as_secs() - right.as_secs()).abs() <= 1e-6 * left.as_secs().abs().max(1.0));
    }

    #[test]
    fn conversions_roundtrip(kb in 0.001f64..1e6, mega in 0.001f64..1e6) {
        prop_assert!((Bits::from_kilobytes(kb).as_kilobytes() - kb).abs() < 1e-9 * kb.max(1.0));
        prop_assert!((Cycles::from_mega(mega).as_mega() - mega).abs() < 1e-9 * mega.max(1.0));
        prop_assert!((Hertz::from_giga(mega).as_giga() - mega).abs() < 1e-9 * mega.max(1.0));
        prop_assert!(
            (Meters::from_kilometers(kb).as_kilometers() - kb).abs() < 1e-9 * kb.max(1.0)
        );
    }

    #[test]
    fn local_cost_scales_with_workload(
        mega in 1.0f64..1e5,
        factor in 1.01f64..100.0,
    ) {
        let device = DeviceProfile::paper_default();
        let small = device.local_cost(Cycles::from_mega(mega));
        let large = device.local_cost(Cycles::from_mega(mega * factor));
        // Both time and energy are linear in the workload.
        prop_assert!((large.time.as_secs() / small.time.as_secs() - factor).abs() < 1e-9 * factor);
        prop_assert!(
            (large.energy.as_joules() / small.energy.as_joules() - factor).abs() < 1e-9 * factor
        );
    }

    #[test]
    fn preferences_always_sum_to_one(beta in 0.0f64..=1.0) {
        let p = UserPreferences::new(beta).unwrap();
        prop_assert_eq!(p.beta_time() + p.beta_energy(), 1.0);
    }

    #[test]
    fn task_validation_accepts_positive_rejects_nonpositive(
        data in 1.0f64..1e12,
        work in 1.0f64..1e15,
    ) {
        prop_assert!(Task::new(Bits::new(data), Cycles::new(work)).is_ok());
        prop_assert!(Task::new(Bits::new(-data), Cycles::new(work)).is_err());
        prop_assert!(Task::new(Bits::new(data), Cycles::new(-work)).is_err());
    }
}
