//! Minimal SVG line charts for experiment curves (convergence traces,
//! utility-vs-parameter sweeps) — no plotting dependencies.

use std::fmt::Write as _;

/// One named data series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points; rendered in the given order.
    pub points: Vec<(f64, f64)>,
}

/// A line chart with labeled axes and a legend.
///
/// # Example
///
/// ```
/// use mec_viz::{LineChart, Series};
///
/// let chart = LineChart::new("demo", "x", "y")
///     .with_series(Series {
///         label: "curve".into(),
///         points: vec![(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)],
///     });
/// let svg = chart.render();
/// assert!(svg.contains("<polyline"));
/// assert!(svg.contains("curve"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    width: f64,
    height: f64,
}

/// Default series colors (cycled).
const COLORS: [&str; 6] = [
    "#1d3557", "#2a9d8f", "#e76f51", "#7b2cbf", "#e9c46a", "#457b9d",
];

impl LineChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            width: 720.0,
            height: 420.0,
        }
    }

    /// Adds a series.
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Sets the pixel size.
    ///
    /// # Panics
    ///
    /// `render` panics on non-positive dimensions.
    pub fn with_size(mut self, width: f64, height: f64) -> Self {
        self.width = width;
        self.height = height;
        self
    }

    /// Renders the chart to an SVG document string.
    ///
    /// # Panics
    ///
    /// Panics if no series has any point, if any coordinate is
    /// non-finite, or if the size is non-positive.
    pub fn render(&self) -> String {
        assert!(
            self.width > 0.0 && self.height > 0.0,
            "size must be positive"
        );
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        assert!(!all.is_empty(), "chart needs at least one data point");
        assert!(
            all.iter().all(|(x, y)| x.is_finite() && y.is_finite()),
            "chart data must be finite"
        );

        let (mut x0, mut x1, mut y0, mut y1) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for (x, y) in &all {
            x0 = x0.min(*x);
            x1 = x1.max(*x);
            y0 = y0.min(*y);
            y1 = y1.max(*y);
        }
        if x0 == x1 {
            x1 = x0 + 1.0;
        }
        if y0 == y1 {
            y1 = y0 + 1.0;
        }

        // Plot area with margins for labels.
        let (ml, mr, mt, mb) = (64.0, 16.0, 36.0, 48.0);
        let pw = self.width - ml - mr;
        let ph = self.height - mt - mb;
        let tx = |x: f64| ml + (x - x0) / (x1 - x0) * pw;
        let ty = |y: f64| mt + (1.0 - (y - y0) / (y1 - y0)) * ph;

        let mut svg = String::new();
        let _ = write!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
             viewBox=\"0 0 {:.0} {:.0}\" font-family=\"sans-serif\">",
            self.width, self.height, self.width, self.height
        );
        // Frame, title, axis labels.
        let _ = write!(
            svg,
            "<rect x=\"{ml}\" y=\"{mt}\" width=\"{pw:.1}\" height=\"{ph:.1}\" \
             fill=\"none\" stroke=\"#444\" stroke-width=\"1\"/>\
             <text x=\"{:.1}\" y=\"22\" font-size=\"15\" text-anchor=\"middle\">{}</text>\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\">{}</text>\
             <text x=\"16\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\" \
             transform=\"rotate(-90 16 {:.1})\">{}</text>",
            ml + pw / 2.0,
            self.title,
            ml + pw / 2.0,
            self.height - 12.0,
            self.x_label,
            mt + ph / 2.0,
            mt + ph / 2.0,
            self.y_label
        );
        // Axis extreme ticks.
        let _ = write!(
            svg,
            "<text x=\"{ml}\" y=\"{:.1}\" font-size=\"10\">{x0:.3}</text>\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"end\">{x1:.3}</text>\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"end\">{y0:.3}</text>\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"end\">{y1:.3}</text>",
            mt + ph + 14.0,
            ml + pw,
            mt + ph + 14.0,
            ml - 4.0,
            mt + ph,
            ml - 4.0,
            mt + 10.0,
        );
        // Series polylines + legend.
        for (i, series) in self.series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let mut points = String::new();
            for (x, y) in &series.points {
                let _ = write!(points, "{:.1},{:.1} ", tx(*x), ty(*y));
            }
            let _ = write!(
                svg,
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.6\"/>",
                points.trim_end()
            );
            let ly = mt + 14.0 + 16.0 * i as f64;
            let _ = write!(
                svg,
                "<line x1=\"{:.1}\" y1=\"{ly:.1}\" x2=\"{:.1}\" y2=\"{ly:.1}\" \
                 stroke=\"{color}\" stroke-width=\"2\"/>\
                 <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\">{}</text>",
                ml + pw - 140.0,
                ml + pw - 120.0,
                ml + pw - 114.0,
                ly + 4.0,
                series.label
            );
        }
        svg.push_str("</svg>");
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> LineChart {
        LineChart::new("t", "x", "y")
            .with_series(Series {
                label: "a".into(),
                points: vec![(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)],
            })
            .with_series(Series {
                label: "b".into(),
                points: vec![(0.0, 1.0), (2.0, 3.0)],
            })
    }

    #[test]
    fn renders_one_polyline_per_series_plus_legend() {
        let svg = chart().render();
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn axis_extremes_appear() {
        let svg = chart().render();
        assert!(svg.contains("0.000"));
        assert!(svg.contains("3.000"));
    }

    #[test]
    fn degenerate_ranges_are_padded() {
        // A single point must not divide by zero.
        let svg = LineChart::new("p", "x", "y")
            .with_series(Series {
                label: "dot".into(),
                points: vec![(5.0, 5.0)],
            })
            .render();
        assert!(svg.contains("<polyline"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(chart().render(), chart().render());
    }

    #[test]
    #[should_panic(expected = "data point")]
    fn empty_chart_panics() {
        let _ = LineChart::new("e", "x", "y").render();
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_data_panics() {
        let _ = LineChart::new("n", "x", "y")
            .with_series(Series {
                label: "bad".into(),
                points: vec![(0.0, f64::NAN)],
            })
            .render();
    }
}
