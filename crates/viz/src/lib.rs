//! # mec-viz
//!
//! Dependency-free SVG rendering of MEC networks and offloading
//! decisions: hexagonal cells, base stations, users colored by decision,
//! and links from each offloaded user to its serving station. Useful for
//! README figures, debugging schedules, and eyeballing mobility runs.
//!
//! ## Example
//!
//! ```
//! use mec_topology::{NetworkLayout, Point2};
//! use mec_viz::SvgScene;
//! use mec_types::constants;
//!
//! # fn main() -> Result<(), mec_types::Error> {
//! let layout = NetworkLayout::hexagonal(9, constants::INTER_SITE_DISTANCE)?;
//! let svg = SvgScene::new(&layout)
//!     .with_users(&[Point2::new(100.0, 50.0)])
//!     .render();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.ends_with("</svg>"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;

pub use chart::{LineChart, Series};

use mec_system::Assignment;
use mec_topology::{NetworkLayout, Point2};
use mec_types::UserId;
use std::fmt::Write as _;

/// Palette used by the renderer (hex color strings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Palette {
    /// Cell fill.
    pub cell_fill: &'static str,
    /// Cell border.
    pub cell_stroke: &'static str,
    /// Base-station marker.
    pub station: &'static str,
    /// Offloaded-user dot.
    pub offloaded: &'static str,
    /// Local-user dot.
    pub local: &'static str,
    /// User→station link.
    pub link: &'static str,
}

impl Default for Palette {
    fn default() -> Self {
        Self {
            cell_fill: "#f3f6fb",
            cell_stroke: "#8aa0c2",
            station: "#1d3557",
            offloaded: "#2a9d8f",
            local: "#e76f51",
            link: "#2a9d8f",
        }
    }
}

/// A renderable scene: layout plus optional users and decision.
#[derive(Debug, Clone)]
pub struct SvgScene<'a> {
    layout: &'a NetworkLayout,
    users: &'a [Point2],
    assignment: Option<&'a Assignment>,
    palette: Palette,
    width_px: f64,
}

impl<'a> SvgScene<'a> {
    /// Starts a scene from a network layout.
    pub fn new(layout: &'a NetworkLayout) -> Self {
        Self {
            layout,
            users: &[],
            assignment: None,
            palette: Palette::default(),
            width_px: 720.0,
        }
    }

    /// Adds user positions (required for [`with_assignment`]).
    ///
    /// [`with_assignment`]: Self::with_assignment
    pub fn with_users(mut self, users: &'a [Point2]) -> Self {
        self.users = users;
        self
    }

    /// Adds an offloading decision; offloaded users are linked to their
    /// serving station and colored differently from local users.
    ///
    /// # Panics
    ///
    /// `render` panics if the decision's user count does not match the
    /// provided positions.
    pub fn with_assignment(mut self, assignment: &'a Assignment) -> Self {
        self.assignment = Some(assignment);
        self
    }

    /// Overrides the color palette.
    pub fn with_palette(mut self, palette: Palette) -> Self {
        self.palette = palette;
        self
    }

    /// Sets the output width in pixels (height follows the aspect ratio).
    ///
    /// # Panics
    ///
    /// `render` panics if the width is not strictly positive.
    pub fn with_width(mut self, width_px: f64) -> Self {
        self.width_px = width_px;
        self
    }

    /// Renders the scene to an SVG document string.
    ///
    /// # Panics
    ///
    /// Panics if an attached assignment disagrees with the user count or
    /// the configured width is not positive.
    pub fn render(&self) -> String {
        assert!(self.width_px > 0.0, "width must be positive");
        if let Some(a) = self.assignment {
            assert_eq!(
                a.num_users(),
                self.users.len(),
                "assignment user count must match positions"
            );
        }
        let r = self.layout.cell_radius().as_meters();
        // World-space bounding box over cells and users.
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for p in self.layout.stations().iter().chain(self.users) {
            min_x = min_x.min(p.x - r);
            max_x = max_x.max(p.x + r);
            min_y = min_y.min(p.y - r);
            max_y = max_y.max(p.y + r);
        }
        let world_w = (max_x - min_x).max(1.0);
        let world_h = (max_y - min_y).max(1.0);
        let scale = self.width_px / world_w;
        let height_px = world_h * scale;
        // Flip y so north is up.
        let tx = |p: &Point2| -> (f64, f64) { ((p.x - min_x) * scale, (max_y - p.y) * scale) };

        let mut svg = String::new();
        let _ = write!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
             viewBox=\"0 0 {:.0} {:.0}\">",
            self.width_px, height_px, self.width_px, height_px
        );

        // Cells (pointy-top hexagons) and stations.
        for (i, station) in self.layout.stations().iter().enumerate() {
            let mut points = String::new();
            for k in 0..6 {
                let angle = std::f64::consts::FRAC_PI_6 + k as f64 * std::f64::consts::FRAC_PI_3;
                let vertex = Point2::new(station.x + r * angle.cos(), station.y + r * angle.sin());
                let (x, y) = tx(&vertex);
                let _ = write!(points, "{x:.1},{y:.1} ");
            }
            let _ = write!(
                svg,
                "<polygon points=\"{}\" fill=\"{}\" stroke=\"{}\" stroke-width=\"1\"/>",
                points.trim_end(),
                self.palette.cell_fill,
                self.palette.cell_stroke
            );
            let (x, y) = tx(station);
            let _ = write!(
                svg,
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"{}\"/>\
                 <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" fill=\"{}\">s{}</text>",
                x - 5.0,
                y - 5.0,
                self.palette.station,
                x + 7.0,
                y - 7.0,
                self.palette.station,
                i
            );
        }

        // Links first (under the dots).
        if let Some(assignment) = self.assignment {
            for (i, p) in self.users.iter().enumerate() {
                if let Some((s, _)) = assignment.slot(UserId::new(i)) {
                    let station = self
                        .layout
                        .station(s)
                        .expect("assignment servers fit the layout");
                    let (x1, y1) = tx(p);
                    let (x2, y2) = tx(&station);
                    let _ = write!(
                        svg,
                        "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" \
                         stroke=\"{}\" stroke-width=\"0.8\" opacity=\"0.6\"/>",
                        self.palette.link
                    );
                }
            }
        }

        // Users.
        for (i, p) in self.users.iter().enumerate() {
            let offloaded = self
                .assignment
                .map(|a| a.is_offloaded(UserId::new(i)))
                .unwrap_or(false);
            let color = if offloaded {
                self.palette.offloaded
            } else {
                self.palette.local
            };
            let (x, y) = tx(p);
            let _ = write!(
                svg,
                "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"4\" fill=\"{color}\"/>"
            );
        }

        svg.push_str("</svg>");
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_types::{Meters, ServerId, SubchannelId};

    fn layout() -> NetworkLayout {
        NetworkLayout::hexagonal(4, Meters::new(1000.0)).unwrap()
    }

    fn count(haystack: &str, needle: &str) -> usize {
        haystack.matches(needle).count()
    }

    #[test]
    fn renders_one_polygon_per_cell_and_one_circle_per_user() {
        let l = layout();
        let users = vec![Point2::new(0.0, 0.0), Point2::new(200.0, 100.0)];
        let svg = SvgScene::new(&l).with_users(&users).render();
        assert_eq!(count(&svg, "<polygon"), 4);
        assert_eq!(count(&svg, "<circle"), 2);
        assert_eq!(count(&svg, "<rect"), 4, "one station marker per cell");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn assignment_draws_links_and_colors() {
        let l = layout();
        let users = vec![Point2::new(0.0, 0.0), Point2::new(300.0, 0.0)];
        let mut x = Assignment::with_dims(2, 4, 2);
        x.assign(UserId::new(0), ServerId::new(1), SubchannelId::new(0))
            .unwrap();
        let svg = SvgScene::new(&l)
            .with_users(&users)
            .with_assignment(&x)
            .render();
        assert_eq!(count(&svg, "<line"), 1, "one offloaded user, one link");
        let palette = Palette::default();
        assert!(svg.contains(palette.offloaded));
        assert!(svg.contains(palette.local));
    }

    #[test]
    fn tags_are_balanced() {
        let l = layout();
        let users = vec![Point2::new(0.0, 0.0)];
        let svg = SvgScene::new(&l).with_users(&users).render();
        // All emitted elements are self-closing except <svg> and <text>.
        assert_eq!(count(&svg, "<svg"), 1);
        assert_eq!(count(&svg, "</svg>"), 1);
        assert_eq!(count(&svg, "<text"), count(&svg, "</text>"));
        // No stray unescaped ampersands etc. (we never emit them).
        assert!(!svg.contains('&'));
    }

    #[test]
    fn rendering_is_deterministic() {
        let l = layout();
        let users = vec![Point2::new(10.0, 20.0), Point2::new(-300.0, 40.0)];
        let a = SvgScene::new(&l).with_users(&users).render();
        let b = SvgScene::new(&l).with_users(&users).render();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "match positions")]
    fn mismatched_assignment_panics() {
        let l = layout();
        let users = vec![Point2::new(0.0, 0.0)];
        let x = Assignment::with_dims(3, 4, 2);
        let _ = SvgScene::new(&l)
            .with_users(&users)
            .with_assignment(&x)
            .render();
    }

    #[test]
    #[should_panic(expected = "width")]
    fn nonpositive_width_panics() {
        let l = layout();
        let _ = SvgScene::new(&l).with_width(0.0).render();
    }
}
