//! Seeded user-churn traces: Poisson arrivals, exponential sojourns.
//!
//! The online engine consumes [`ChurnEvent`]s; this module generates them
//! from the classic M/M/∞ population model. With arrival rate `λ` and
//! mean sojourn `E[W]`, the steady-state population is `λ·E[W]` users —
//! calibrate both to hit a target population and churn fraction.

use mec_types::{Error, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What happens to a user at one instant of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEventKind {
    /// The user enters the system and requests scheduling.
    Arrival,
    /// The user leaves the system; its slot (if any) is freed.
    Departure,
}

/// One arrival or departure, stamped with the user's stable id.
///
/// Ids are stable across the whole trace: the departure of user `k`
/// refers to the same `k` that arrived earlier, regardless of how many
/// other users came and went in between.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Simulated time of the event.
    pub at: Seconds,
    /// Stable user id.
    pub user: u64,
    /// Arrival or departure.
    pub kind: ChurnEventKind,
}

/// A time-ordered churn trace.
///
/// Arrivals all fall within the generation horizon; departures of users
/// that arrived in time may land past it (such users simply never leave
/// during a shorter run). Ties are ordered by user id, arrivals before
/// departures, so a trace is totally ordered and replay is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnTrace {
    events: Vec<ChurnEvent>,
}

impl ChurnTrace {
    /// Builds a trace from raw events (sorted into canonical order).
    pub fn from_events(mut events: Vec<ChurnEvent>) -> Self {
        events.sort_by(|a, b| {
            a.at.as_secs()
                .partial_cmp(&b.at.as_secs())
                .expect("event times are finite")
                .then(a.user.cmp(&b.user))
                .then_with(|| match (a.kind, b.kind) {
                    (ChurnEventKind::Arrival, ChurnEventKind::Departure) => {
                        std::cmp::Ordering::Less
                    }
                    (ChurnEventKind::Departure, ChurnEventKind::Arrival) => {
                        std::cmp::Ordering::Greater
                    }
                    _ => std::cmp::Ordering::Equal,
                })
        });
        Self { events }
    }

    /// The events in time order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Consumes the trace into its events.
    pub fn into_events(self) -> Vec<ChurnEvent> {
        self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The M/M/∞ churn model: `initial_users` present at `t = 0`, new users
/// arriving as a Poisson process of rate `arrival_rate_hz`, every user
/// (initial ones included) staying for an independent exponential sojourn
/// with mean `mean_sojourn`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonChurn {
    initial_users: usize,
    arrival_rate_hz: f64,
    mean_sojourn: Seconds,
}

impl PoissonChurn {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a negative or non-finite
    /// arrival rate or a non-positive mean sojourn.
    pub fn new(
        initial_users: usize,
        arrival_rate_hz: f64,
        mean_sojourn: Seconds,
    ) -> Result<Self, Error> {
        if !arrival_rate_hz.is_finite() || arrival_rate_hz < 0.0 {
            return Err(Error::invalid("arrival_rate", "must be finite and >= 0"));
        }
        if !mean_sojourn.as_secs().is_finite() || mean_sojourn.as_secs() <= 0.0 {
            return Err(Error::invalid("mean_sojourn", "must be positive"));
        }
        Ok(Self {
            initial_users,
            arrival_rate_hz,
            mean_sojourn,
        })
    }

    /// The model's steady-state population `λ·E[W]` (Little's law).
    pub fn steady_state_users(&self) -> f64 {
        self.arrival_rate_hz * self.mean_sojourn.as_secs()
    }

    /// Generates the seeded trace over `[0, horizon]`: bit-identical for
    /// equal seeds, independent across seeds.
    pub fn trace(&self, horizon: Seconds, seed: u64) -> ChurnTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut next_id: u64 = 0;
        let mut push_user = |events: &mut Vec<ChurnEvent>, at: f64, rng: &mut StdRng| {
            let id = next_id;
            next_id += 1;
            events.push(ChurnEvent {
                at: Seconds::new(at),
                user: id,
                kind: ChurnEventKind::Arrival,
            });
            let sojourn = sample_exponential(self.mean_sojourn.as_secs(), rng);
            events.push(ChurnEvent {
                at: Seconds::new(at + sojourn),
                user: id,
                kind: ChurnEventKind::Departure,
            });
        };
        for _ in 0..self.initial_users {
            push_user(&mut events, 0.0, &mut rng);
        }
        if self.arrival_rate_hz > 0.0 {
            let mean_gap = 1.0 / self.arrival_rate_hz;
            let mut t = sample_exponential(mean_gap, &mut rng);
            while t <= horizon.as_secs() {
                push_user(&mut events, t, &mut rng);
                t += sample_exponential(mean_gap, &mut rng);
            }
        }
        ChurnTrace::from_events(events)
    }
}

/// Inverse-CDF exponential sample with the given mean (strictly positive).
fn sample_exponential<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen(); // in [0, 1), so 1 - u is in (0, 1]
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let model = PoissonChurn::new(10, 0.5, Seconds::new(60.0)).unwrap();
        let a = model.trace(Seconds::new(200.0), 7);
        let b = model.trace(Seconds::new(200.0), 7);
        let c = model.trace(Seconds::new(200.0), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn events_are_ordered_and_balanced() {
        let model = PoissonChurn::new(5, 1.0, Seconds::new(30.0)).unwrap();
        let trace = model.trace(Seconds::new(100.0), 3);
        assert!(!trace.is_empty());
        let events = trace.events();
        for pair in events.windows(2) {
            assert!(pair[0].at.as_secs() <= pair[1].at.as_secs());
        }
        // Every arrival has exactly one departure, strictly later.
        let arrivals: Vec<_> = events
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Arrival)
            .collect();
        let departures: Vec<_> = events
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Departure)
            .collect();
        assert_eq!(arrivals.len(), departures.len());
        for a in &arrivals {
            let d = departures
                .iter()
                .find(|d| d.user == a.user)
                .expect("departure exists");
            assert!(d.at.as_secs() > a.at.as_secs());
        }
        // Arrivals all fall inside the horizon.
        assert!(arrivals.iter().all(|a| a.at.as_secs() <= 100.0));
    }

    #[test]
    fn steady_state_population_is_approached() {
        // λ = 0.9/s, E[W] = 100 s ⇒ ~90 users in steady state.
        let model = PoissonChurn::new(90, 0.9, Seconds::new(100.0)).unwrap();
        assert!((model.steady_state_users() - 90.0).abs() < 1e-12);
        let trace = model.trace(Seconds::new(300.0), 11);
        // Replay: population at t = 300 should be near 90.
        let mut population: i64 = 0;
        for e in trace.events() {
            if e.at.as_secs() <= 300.0 {
                match e.kind {
                    ChurnEventKind::Arrival => population += 1,
                    ChurnEventKind::Departure => population -= 1,
                }
            }
        }
        assert!(
            (50..=130).contains(&population),
            "population drifted to {population}"
        );
    }

    #[test]
    fn zero_rate_model_only_has_initial_users() {
        let model = PoissonChurn::new(4, 0.0, Seconds::new(10.0)).unwrap();
        let trace = model.trace(Seconds::new(1000.0), 0);
        let arrivals = trace
            .events()
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Arrival)
            .count();
        assert_eq!(arrivals, 4);
        assert!(trace
            .events()
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Arrival)
            .all(|e| e.at.as_secs() == 0.0));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(PoissonChurn::new(1, -1.0, Seconds::new(10.0)).is_err());
        assert!(PoissonChurn::new(1, f64::NAN, Seconds::new(10.0)).is_err());
        assert!(PoissonChurn::new(1, 1.0, Seconds::new(0.0)).is_err());
    }

    #[test]
    fn from_events_sorts_into_canonical_order() {
        let e = |at: f64, user: u64, kind| ChurnEvent {
            at: Seconds::new(at),
            user,
            kind,
        };
        let trace = ChurnTrace::from_events(vec![
            e(5.0, 1, ChurnEventKind::Departure),
            e(0.0, 1, ChurnEventKind::Arrival),
            e(5.0, 0, ChurnEventKind::Departure),
            e(5.0, 2, ChurnEventKind::Arrival),
            e(0.0, 0, ChurnEventKind::Arrival),
        ]);
        let order: Vec<(f64, u64)> = trace
            .events()
            .iter()
            .map(|ev| (ev.at.as_secs(), ev.user))
            .collect();
        assert_eq!(
            order,
            vec![(0.0, 0), (0.0, 1), (5.0, 0), (5.0, 1), (5.0, 2)]
        );
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.clone().into_events().len(), 5);
    }
}
