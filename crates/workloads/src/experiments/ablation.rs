//! Ablations of TSAJS's design choices (not paper figures; evidence for
//! DESIGN.md):
//!
//! 1. threshold-triggered vs plain geometric cooling,
//! 2. KKT vs equal-share computing allocation on identical decisions,
//! 3. the paper's 55/25/15/5 move mix vs a uniform mix.

use crate::params::{ExperimentParams, Preset};
use crate::report::Table;
use crate::runner::run_trials;
use crate::stats::SampleStats;
use crate::ScenarioGenerator;
use mec_system::{equal_share_allocation, kkt_allocation, Evaluator, Solver};
use mec_types::{Cycles, Error};
use tsajs::{Cooling, MoveMix, TsajsSolver, TtsaConfig};

/// Ablation experiment configuration.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Network parameters. Heterogeneous preferences (`beta_time_spread`)
    /// and a crowded network make the ablated choices observable.
    pub params: ExperimentParams,
    /// Monte-Carlo trials per variant.
    pub trials: usize,
    /// TTSA termination temperature.
    pub min_temperature: f64,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl AblationConfig {
    /// The default ablation scenario: 45 users on the 9-cell network with
    /// `β_time ~ U[0.1, 0.9]` and 2000-Mcycle tasks.
    pub fn paper(preset: Preset) -> Self {
        Self {
            params: ExperimentParams::paper_default()
                .with_users(45)
                .with_workload(Cycles::from_mega(2000.0))
                .with_beta_time_spread(0.4),
            trials: preset.trials,
            min_temperature: preset.ttsa_min_temperature,
            base_seed: 500,
        }
    }
}

fn utility_stats(
    generator: &ScenarioGenerator,
    trials: usize,
    base_seed: u64,
    make: impl Fn(u64) -> Box<dyn Solver> + Sync,
) -> Result<SampleStats, Error> {
    let outcomes = run_trials(generator, trials, base_seed, make)?;
    Ok(SampleStats::from_sample(
        &outcomes.iter().map(|o| o.utility).collect::<Vec<_>>(),
    ))
}

/// Cooling-schedule ablation: utility and epoch count per schedule.
///
/// # Errors
///
/// Propagates scenario-generation and solver errors.
pub fn cooling(config: &AblationConfig) -> Result<Table, Error> {
    let generator = ScenarioGenerator::new(config.params);
    let mut table = Table::new(
        "Ablation: threshold-triggered vs geometric cooling (avg utility)",
        vec!["schedule".into(), "avg utility".into(), "epochs".into()],
    );
    let schedules: Vec<(&str, Cooling)> = vec![
        (
            "threshold-triggered (paper)",
            Cooling::ThresholdTriggered {
                alpha_slow: 0.97,
                alpha_fast: 0.90,
                max_count_factor: 1.75,
            },
        ),
        ("geometric alpha=0.97", Cooling::Geometric { alpha: 0.97 }),
        ("geometric alpha=0.90", Cooling::Geometric { alpha: 0.90 }),
    ];
    for (name, schedule) in schedules {
        let stats = utility_stats(&generator, config.trials, config.base_seed, |seed| {
            Box::new(TsajsSolver::new(
                TtsaConfig::paper_default()
                    .with_cooling(schedule)
                    .with_min_temperature(config.min_temperature)
                    .with_seed(seed),
            ))
        })?;
        // Epoch count from one representative traced run.
        let scenario = generator.generate(config.base_seed)?;
        let mut probe = TsajsSolver::new(
            TtsaConfig::paper_default()
                .with_cooling(schedule)
                .with_min_temperature(config.min_temperature)
                .with_seed(config.base_seed)
                .with_trace(),
        );
        probe.solve(&scenario)?;
        let epochs = probe.last_trace().map(|t| t.len()).unwrap_or(0);
        table.push_row(vec![name.into(), stats.display(3), epochs.to_string()]);
    }
    Ok(table)
}

/// Allocation ablation: the utility of TSAJS decisions re-scored under an
/// equal split instead of the KKT rule.
///
/// # Errors
///
/// Propagates scenario-generation and solver errors.
pub fn allocation(config: &AblationConfig) -> Result<Table, Error> {
    let generator = ScenarioGenerator::new(config.params);
    let mut table = Table::new(
        "Ablation: KKT vs equal-share computing allocation (avg utility on TSAJS decisions)",
        vec!["allocation".into(), "avg utility".into()],
    );
    let mut kkt_samples = Vec::with_capacity(config.trials);
    let mut equal_samples = Vec::with_capacity(config.trials);
    for i in 0..config.trials as u64 {
        let seed = config.base_seed + 100 + i;
        let scenario = generator.generate(seed)?;
        let mut solver = TsajsSolver::new(
            TtsaConfig::paper_default()
                .with_min_temperature(config.min_temperature)
                .with_seed(seed),
        );
        let solution = solver.solve(&scenario)?;
        kkt_samples.push(solution.utility);

        // Same decision, equal split: only the execution-time terms move.
        let x = &solution.assignment;
        let eval = Evaluator::new(&scenario).evaluate(x)?;
        let kkt = kkt_allocation(&scenario, x);
        let equal = equal_share_allocation(&scenario, x);
        let mut equal_utility = eval.system_utility;
        for (m, u) in eval.users.iter().zip(scenario.user_ids()) {
            if m.offloaded {
                let spec = scenario.user(u);
                let w = spec.task.workload().as_cycles();
                let t_local = scenario.local_cost(u).time.as_secs();
                let dt = w / equal.share(u).as_hz() - w / kkt.share(u).as_hz();
                equal_utility -= spec.lambda.value() * spec.preferences.beta_time() * dt / t_local;
            }
        }
        equal_samples.push(equal_utility);
    }
    table.push_row(vec![
        "KKT closed form (paper)".into(),
        SampleStats::from_sample(&kkt_samples).display(3),
    ]);
    table.push_row(vec![
        "equal share".into(),
        SampleStats::from_sample(&equal_samples).display(3),
    ]);
    Ok(table)
}

/// Move-mix ablation: the paper's 55/25/15/5 split vs a uniform mix.
///
/// # Errors
///
/// Propagates scenario-generation and solver errors.
pub fn move_mix(config: &AblationConfig) -> Result<Table, Error> {
    let generator = ScenarioGenerator::new(config.params);
    let mut table = Table::new(
        "Ablation: neighborhood move mix (avg utility)",
        vec!["mix".into(), "avg utility".into()],
    );
    for (name, mix) in [
        ("paper 55/25/15/5", MoveMix::paper_default()),
        ("uniform 25/25/25/25", MoveMix::uniform()),
    ] {
        let stats = utility_stats(&generator, config.trials, config.base_seed, |seed| {
            Box::new(
                TsajsSolver::new(
                    TtsaConfig::paper_default()
                        .with_min_temperature(config.min_temperature)
                        .with_seed(seed),
                )
                .with_move_mix(mix),
            )
        })?;
        table.push_row(vec![name.into(), stats.display(3)]);
    }
    Ok(table)
}

/// Runs all three ablations.
///
/// # Errors
///
/// Propagates scenario-generation and solver errors.
pub fn run(config: &AblationConfig) -> Result<Vec<Table>, Error> {
    Ok(vec![
        cooling(config)?,
        allocation(config)?,
        move_mix(config)?,
    ])
}

/// Runs the default ablation scenario at the given preset.
///
/// # Errors
///
/// See [`run`].
pub fn paper(preset: Preset) -> Result<Vec<Table>, Error> {
    run(&AblationConfig::paper(preset))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> AblationConfig {
        AblationConfig {
            params: ExperimentParams::paper_default()
                .with_users(8)
                .with_servers(3)
                .with_beta_time_spread(0.4),
            trials: 2,
            min_temperature: 1e-2,
            base_seed: 0,
        }
    }

    #[test]
    fn all_three_ablations_produce_tables() {
        let tables = run(&quick()).unwrap();
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].rows.len(), 3, "three schedules");
        assert_eq!(tables[1].rows.len(), 2, "KKT vs equal");
        assert_eq!(tables[2].rows.len(), 2, "two mixes");
    }

    #[test]
    fn kkt_never_loses_to_equal_share() {
        let table = allocation(&quick()).unwrap();
        let parse =
            |cell: &str| -> f64 { cell.split('±').next().unwrap().trim().parse().unwrap() };
        let kkt = parse(&table.rows[0][1]);
        let equal = parse(&table.rows[1][1]);
        assert!(
            kkt >= equal - 1e-9,
            "equal share beat the KKT optimum: {kkt} vs {equal}"
        );
    }
}
