//! Certified quality at scale: TSAJS vs the interference-free matching
//! upper bound.
//!
//! Exhaustive verification (Fig. 3) stops at toy sizes; the
//! [`mec_baselines::upper_bound()`] matching bound certifies the optimum
//! from *above* at any scale, so `utility / bound` is a provable quality
//! floor. Not a paper figure — it is the missing quantitative leg of the
//! paper's "near-optimal at scale" claim.

use super::{run_cell, Scheme};
use crate::params::{ExperimentParams, Preset};
use crate::report::Table;
use crate::stats::SampleStats;
use crate::ScenarioGenerator;
use mec_baselines::upper_bound;
use mec_types::Error;

/// Bound-gap experiment configuration.
#[derive(Debug, Clone)]
pub struct BoundGapConfig {
    /// User counts to certify at.
    pub user_counts: Vec<usize>,
    /// Monte-Carlo trials per scale.
    pub trials: usize,
    /// Effort preset.
    pub preset: Preset,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Network parameters.
    pub params: ExperimentParams,
}

impl BoundGapConfig {
    /// Default sweep over the paper's scales.
    pub fn paper(preset: Preset) -> Self {
        Self {
            user_counts: vec![10, 30, 50, 70, 90],
            trials: preset.trials,
            preset,
            base_seed: 11_000,
            params: ExperimentParams::paper_default(),
        }
    }
}

/// Runs the bound-gap experiment: TSAJS utility, the matching bound, and
/// the certified quality floor per scale.
///
/// # Errors
///
/// Propagates scenario-generation and solver errors.
pub fn run(config: &BoundGapConfig) -> Result<Vec<Table>, Error> {
    let mut table = Table::new(
        "Bound gap: TSAJS vs the interference-free matching upper bound",
        vec![
            "U".into(),
            "TSAJS utility".into(),
            "upper bound".into(),
            "certified quality".into(),
        ],
    );
    for users in &config.user_counts {
        let params = config.params.with_users(*users);
        let generator = ScenarioGenerator::new(params);
        let cell = run_cell(
            &generator,
            Scheme::TSAJS,
            config.preset,
            config.trials,
            config.base_seed,
        )?;
        let mut bounds = Vec::with_capacity(config.trials);
        let mut qualities = Vec::with_capacity(config.trials);
        for outcome in &cell.outcomes {
            let scenario = generator.generate(outcome.seed)?;
            let bound = upper_bound(&scenario);
            bounds.push(bound.assignment_bound);
            qualities.push(bound.quality(outcome.utility));
        }
        table.push_row(vec![
            users.to_string(),
            cell.utility().display(3),
            SampleStats::from_sample(&bounds).display(3),
            SampleStats::from_sample(&qualities).display(3),
        ]);
    }
    Ok(vec![table])
}

/// Runs the default sweep at the given preset.
///
/// # Errors
///
/// See [`run`].
pub fn paper(preset: Preset) -> Result<Vec<Table>, Error> {
    run(&BoundGapConfig::paper(preset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_dominates_tsajs_at_every_scale() {
        let config = BoundGapConfig {
            user_counts: vec![4, 8],
            trials: 2,
            preset: Preset::Quick,
            base_seed: 0,
            params: ExperimentParams::paper_default().with_servers(3),
        };
        let tables = run(&config).unwrap();
        assert_eq!(tables.len(), 1);
        for row in &tables[0].rows {
            let parse = |c: &str| -> f64 { c.split('±').next().unwrap().trim().parse().unwrap() };
            let utility = parse(&row[1]);
            let bound = parse(&row[2]);
            let quality = parse(&row[3]);
            assert!(bound >= utility - 1e-9, "bound below achieved utility");
            assert!((0.0..=1.0).contains(&quality));
        }
    }
}
