//! Convergence curves: best objective vs epoch for different cooling
//! schedules.
//!
//! Not a figure in the paper, but the data that justifies its central
//! design choice: the threshold trigger reaches the quality of slow
//! geometric cooling in fewer epochs. One table row per sampled epoch,
//! one column per schedule; curves are padded with their final value so
//! shorter runs stay comparable.

use crate::params::{ExperimentParams, Preset};
use crate::report::Table;
use crate::ScenarioGenerator;
use mec_system::Solver;
use mec_types::Error;
use tsajs::{Cooling, TsajsSolver, TtsaConfig};

/// Convergence experiment configuration.
#[derive(Debug, Clone)]
pub struct ConvergenceConfig {
    /// Network parameters.
    pub params: ExperimentParams,
    /// Scenario / solver seed.
    pub seed: u64,
    /// Schedules to compare, with display names.
    pub schedules: Vec<(String, Cooling)>,
    /// Termination temperature.
    pub min_temperature: f64,
    /// Record every k-th epoch in the table (1 = all).
    pub sample_every: usize,
}

impl ConvergenceConfig {
    /// The default comparison: the paper's threshold-triggered schedule
    /// against plain geometric cooling at both of its rates.
    pub fn default_comparison() -> Self {
        Self {
            params: ExperimentParams::paper_default().with_users(40),
            seed: 0,
            schedules: vec![
                (
                    "threshold-triggered".into(),
                    Cooling::ThresholdTriggered {
                        alpha_slow: 0.97,
                        alpha_fast: 0.90,
                        max_count_factor: 1.75,
                    },
                ),
                ("geometric-0.97".into(), Cooling::Geometric { alpha: 0.97 }),
                ("geometric-0.90".into(), Cooling::Geometric { alpha: 0.90 }),
            ],
            min_temperature: 1e-6,
            sample_every: 10,
        }
    }
}

/// Runs the convergence experiment: one table of best-objective curves.
///
/// # Errors
///
/// Propagates scenario-generation and solver errors; errors if
/// `sample_every` is zero or no schedules are given.
pub fn run(config: &ConvergenceConfig) -> Result<Vec<Table>, Error> {
    if config.sample_every == 0 {
        return Err(Error::invalid("sample_every", "must be at least 1"));
    }
    if config.schedules.is_empty() {
        return Err(Error::invalid("schedules", "need at least one schedule"));
    }
    let scenario = ScenarioGenerator::new(config.params).generate(config.seed)?;

    let mut curves: Vec<Vec<f64>> = Vec::new();
    for (_, cooling) in &config.schedules {
        let mut solver = TsajsSolver::new(
            TtsaConfig::paper_default()
                .with_cooling(*cooling)
                .with_min_temperature(config.min_temperature)
                .with_seed(config.seed)
                .with_trace(),
        );
        solver.solve(&scenario)?;
        let trace = solver.last_trace().expect("trace was requested");
        curves.push(trace.epochs.iter().map(|e| e.best_objective).collect());
    }

    let mut headers = vec!["epoch".to_string()];
    headers.extend(config.schedules.iter().map(|(name, _)| name.clone()));
    let mut table = Table::new(
        format!(
            "Convergence: best J vs epoch (U={}, seed={})",
            config.params.num_users, config.seed
        ),
        headers,
    );
    let longest = curves.iter().map(Vec::len).max().unwrap_or(0);
    for epoch in (0..longest).step_by(config.sample_every) {
        let mut row = vec![epoch.to_string()];
        for curve in &curves {
            // Pad finished runs with their final best.
            let v = curve
                .get(epoch)
                .or(curve.last())
                .copied()
                .unwrap_or(f64::NAN);
            row.push(format!("{v:.4}"));
        }
        table.push_row(row);
    }
    Ok(vec![table])
}

/// Runs the default comparison; the preset only controls the schedule
/// depth (`Quick` truncates at 1e-3 for smoke runs).
///
/// # Errors
///
/// See [`run`].
pub fn paper(preset: Preset) -> Result<Vec<Table>, Error> {
    let mut config = ConvergenceConfig::default_comparison();
    config.min_temperature = if preset.is_full() { 1e-6 } else { 1e-3 };
    run(&config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ConvergenceConfig {
        let mut c = ConvergenceConfig::default_comparison();
        c.params = ExperimentParams::paper_default()
            .with_users(6)
            .with_servers(3);
        c.min_temperature = 1e-2;
        c.sample_every = 5;
        c
    }

    #[test]
    fn produces_one_column_per_schedule() {
        let tables = run(&quick_config()).unwrap();
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.headers.len(), 4, "epoch + 3 schedules");
        assert!(!t.rows.is_empty());
    }

    #[test]
    fn best_objective_is_nondecreasing_down_each_column() {
        let tables = run(&quick_config()).unwrap();
        let t = &tables[0];
        for col in 1..t.headers.len() {
            let mut prev = f64::NEG_INFINITY;
            for row in &t.rows {
                let v: f64 = row[col].parse().unwrap();
                assert!(v >= prev - 1e-9, "column {col} decreased: {prev} -> {v}");
                prev = v;
            }
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        let mut c = quick_config();
        c.sample_every = 0;
        assert!(run(&c).is_err());
        let mut c = quick_config();
        c.schedules.clear();
        assert!(run(&c).is_err());
    }
}
