//! Fig. 3 — suboptimality of TSAJS against the exhaustive optimum.
//!
//! The paper's confined network (`U=6, S=4, N=2`) swept over task
//! workloads `w_u ∈ {1000, 2000, 3000, 4000}` Mcycles; five schemes with
//! 95 % confidence intervals. Expected shape: TSAJS ≈ Exhaustive, then
//! hJTORA, LocalSearch, Greedy; utility grows with workload.

use super::{run_cell, CellResult, Scheme};
use crate::params::{ExperimentParams, Preset};
use crate::report::Table;
use crate::stats::{paired_difference, SampleStats};
use crate::ScenarioGenerator;
use mec_types::{Cycles, Error};

/// Fig. 3 sweep configuration.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Task workloads in Megacycles (x-axis).
    pub workloads_mcycles: Vec<f64>,
    /// Schemes compared (columns).
    pub schemes: Vec<Scheme>,
    /// Monte-Carlo trials per cell.
    pub trials: usize,
    /// Effort preset (TSAJS schedule).
    pub preset: Preset,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Network parameters (defaults to the confined `U=6, S=4, N=2`).
    pub params: ExperimentParams,
}

impl Fig3Config {
    /// The paper's exact sweep.
    pub fn paper(preset: Preset) -> Self {
        Self {
            workloads_mcycles: vec![1000.0, 2000.0, 3000.0, 4000.0],
            schemes: vec![
                Scheme::Exhaustive,
                Scheme::TSAJS,
                Scheme::HJtora,
                Scheme::LocalSearch,
                Scheme::Greedy,
            ],
            trials: preset.trials,
            preset,
            base_seed: 3_000,
            params: ExperimentParams::small_network(),
        }
    }
}

/// Runs the Fig. 3 experiment. Returns the utility table plus a paired
/// TSAJS-vs-baseline significance table (every scheme sees the same
/// scenario realizations, so paired differences cancel the instance
/// noise that dominates the raw confidence intervals — this is the
/// rigorous form of the paper's "+0.9 % / +1.49 % / +4.14 %" claims).
///
/// # Errors
///
/// Propagates scenario-generation and solver errors (e.g. the exhaustive
/// guard on an oversized `params`).
pub fn run(config: &Fig3Config) -> Result<Vec<Table>, Error> {
    let mut headers = vec!["w_u (Mcycles)".to_string()];
    headers.extend(config.schemes.iter().map(|s| s.name()));
    let mut table = Table::new(
        "Fig. 3: average system utility vs task workload (U=6, S=4, N=2, 95% CI)",
        headers,
    );

    // Pool per-trial utilities per scheme across the whole sweep for the
    // paired comparison.
    let mut pooled: Vec<Vec<f64>> = vec![Vec::new(); config.schemes.len()];
    for w in &config.workloads_mcycles {
        let params = config.params.with_workload(Cycles::from_mega(*w));
        let generator = ScenarioGenerator::new(params);
        let mut row = vec![format!("{w:.0}")];
        for (i, scheme) in config.schemes.iter().enumerate() {
            let cell: CellResult = run_cell(
                &generator,
                *scheme,
                config.preset,
                config.trials,
                config.base_seed,
            )?;
            pooled[i].extend(cell.outcomes.iter().map(|o| o.utility));
            row.push(cell.utility().display(3));
        }
        table.push_row(row);
    }

    let mut tables = vec![table];
    if let Some(tsajs_idx) = config
        .schemes
        .iter()
        .position(|s| matches!(s, Scheme::Tsajs { .. }))
    {
        let mut diff_table = Table::new(
            "Fig. 3 (paired): TSAJS minus baseline, per-instance differences",
            vec![
                "baseline".into(),
                "mean diff".into(),
                "significant@95%".into(),
            ],
        );
        for (i, scheme) in config.schemes.iter().enumerate() {
            if i == tsajs_idx {
                continue;
            }
            let diff: SampleStats = paired_difference(&pooled[tsajs_idx], &pooled[i]);
            diff_table.push_row(vec![
                scheme.name(),
                diff.display(4),
                if diff.significantly_nonzero() {
                    "yes"
                } else {
                    "no"
                }
                .into(),
            ]);
        }
        tables.push(diff_table);
    }
    Ok(tables)
}

/// Runs Fig. 3 with the paper's sweep at the given preset.
///
/// # Errors
///
/// See [`run`].
pub fn paper(preset: Preset) -> Result<Vec<Table>, Error> {
    run(&Fig3Config::paper(preset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_fig3_produces_the_expected_table_shape() {
        let config = Fig3Config {
            workloads_mcycles: vec![2000.0],
            schemes: vec![Scheme::Exhaustive, Scheme::TSAJS, Scheme::Greedy],
            trials: 2,
            preset: Preset::Quick,
            base_seed: 1,
            params: ExperimentParams::small_network().with_users(4),
        };
        let tables = run(&config).unwrap();
        assert_eq!(tables.len(), 2, "utility table + paired table");
        let t = &tables[0];
        assert_eq!(t.headers.len(), 4);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0][0], "2000");
        // The paired table compares TSAJS against the two other schemes.
        let d = &tables[1];
        assert_eq!(d.rows.len(), 2);
        // TSAJS can never lose to Exhaustive: the diff vs Exhaustive is <= 0.
        let exhaustive_row = d.rows.iter().find(|r| r[0] == "Exhaustive").unwrap();
        let mean: f64 = exhaustive_row[1]
            .split('±')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(mean <= 1e-9);
    }

    #[test]
    fn tsajs_stays_at_or_below_the_exhaustive_optimum() {
        // Run cells directly so we can compare numbers, not strings.
        let params = ExperimentParams::small_network().with_users(4);
        let generator = ScenarioGenerator::new(params);
        let opt = run_cell(&generator, Scheme::Exhaustive, Preset::Quick, 3, 10).unwrap();
        let tsajs = run_cell(&generator, Scheme::TSAJS, Preset::Quick, 3, 10).unwrap();
        for (o, t) in opt.outcomes.iter().zip(&tsajs.outcomes) {
            assert!(t.utility <= o.utility + 1e-9, "heuristic beat the optimum");
        }
        // And the averages are close (near-optimality claim, loose bound
        // for the quick preset).
        assert!(tsajs.utility().mean >= 0.8 * opt.utility().mean);
    }
}
