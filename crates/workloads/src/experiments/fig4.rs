//! Fig. 4 — system utility vs number of users.
//!
//! Six panels: workloads `w ∈ {1000, 2000, 3000}` Mcycles × TSAJS epoch
//! lengths `L ∈ {10, 30}`, each sweeping the user count on the default
//! 9-cell network. Expected shape: utility rises with users, then
//! saturates/declines as contention for subchannels and compute bites;
//! TSAJS (especially `L=30`) degrades last.

use super::{run_cell, Scheme};
use crate::params::{ExperimentParams, Preset};
use crate::report::Table;
use crate::ScenarioGenerator;
use mec_types::{Cycles, Error};

/// Fig. 4 sweep configuration.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// User counts (x-axis).
    pub user_counts: Vec<usize>,
    /// Panel workloads in Megacycles.
    pub workloads_mcycles: Vec<f64>,
    /// Panel TSAJS epoch lengths.
    pub inner_iterations: Vec<usize>,
    /// Monte-Carlo trials per cell.
    pub trials: usize,
    /// Effort preset.
    pub preset: Preset,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Network parameters (user count is overridden by the sweep).
    pub params: ExperimentParams,
}

impl Fig4Config {
    /// The paper's six panels on the default network.
    pub fn paper(preset: Preset) -> Self {
        Self {
            user_counts: vec![10, 30, 50, 70, 90],
            workloads_mcycles: vec![1000.0, 2000.0, 3000.0],
            inner_iterations: vec![10, 30],
            trials: preset.trials,
            preset,
            base_seed: 4_000,
            params: ExperimentParams::paper_default(),
        }
    }
}

/// Runs the Fig. 4 experiment: one table per (workload, L) panel.
///
/// # Errors
///
/// Propagates scenario-generation and solver errors.
pub fn run(config: &Fig4Config) -> Result<Vec<Table>, Error> {
    let mut tables = Vec::new();
    for w in &config.workloads_mcycles {
        for l in &config.inner_iterations {
            let schemes = Scheme::lineup(*l);
            let mut headers = vec!["U".to_string()];
            headers.extend(schemes.iter().map(|s| s.name()));
            let mut table = Table::new(
                format!("Fig. 4: avg system utility vs users (w={w:.0} Mcycles, L={l})"),
                headers,
            );
            for users in &config.user_counts {
                let params = config
                    .params
                    .with_users(*users)
                    .with_workload(Cycles::from_mega(*w));
                let generator = ScenarioGenerator::new(params);
                let mut row = vec![users.to_string()];
                for scheme in &schemes {
                    let cell = run_cell(
                        &generator,
                        *scheme,
                        config.preset,
                        config.trials,
                        config.base_seed,
                    )?;
                    row.push(cell.utility().display(3));
                }
                table.push_row(row);
            }
            tables.push(table);
        }
    }
    Ok(tables)
}

/// Runs Fig. 4 with the paper's sweep at the given preset.
///
/// # Errors
///
/// See [`run`].
pub fn paper(preset: Preset) -> Result<Vec<Table>, Error> {
    run(&Fig4Config::paper(preset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_fig4_emits_one_table_per_panel() {
        let config = Fig4Config {
            user_counts: vec![4, 8],
            workloads_mcycles: vec![2000.0],
            inner_iterations: vec![10, 30],
            trials: 2,
            preset: Preset::Quick,
            base_seed: 0,
            params: ExperimentParams::paper_default().with_servers(3),
        };
        let tables = run(&config).unwrap();
        assert_eq!(tables.len(), 2, "1 workload × 2 L values");
        for t in &tables {
            assert_eq!(t.rows.len(), 2);
            assert_eq!(t.headers.len(), 5, "U + 4 schemes");
        }
        assert!(tables[0].title.contains("L=10"));
        assert!(tables[1].title.contains("L=30"));
    }
}
