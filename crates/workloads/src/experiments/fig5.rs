//! Fig. 5 — system utility vs task input size.
//!
//! Sweeps `d_u` on the default network. Expected shape: utility decreases
//! as the input grows (more uplink time/energy per unit of benefit); the
//! ordering TSAJS ≥ hJTORA ≥ LocalSearch ≥ Greedy is preserved throughout.

use super::{run_cell, Scheme};
use crate::params::{ExperimentParams, Preset};
use crate::report::Table;
use crate::ScenarioGenerator;
use mec_types::{Bits, Error};

/// Fig. 5 sweep configuration.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Task input sizes in KB (x-axis).
    pub data_sizes_kb: Vec<f64>,
    /// Schemes compared.
    pub schemes: Vec<Scheme>,
    /// Monte-Carlo trials per cell.
    pub trials: usize,
    /// Effort preset.
    pub preset: Preset,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Network parameters (task data size is overridden by the sweep).
    pub params: ExperimentParams,
}

impl Fig5Config {
    /// The paper-style sweep around the 420 KB default.
    pub fn paper(preset: Preset) -> Self {
        Self {
            data_sizes_kb: vec![105.0, 210.0, 420.0, 840.0, 1680.0],
            schemes: Scheme::lineup(30),
            trials: preset.trials,
            preset,
            base_seed: 5_000,
            params: ExperimentParams::paper_default().with_users(30),
        }
    }
}

/// Runs the Fig. 5 experiment.
///
/// # Errors
///
/// Propagates scenario-generation and solver errors.
pub fn run(config: &Fig5Config) -> Result<Vec<Table>, Error> {
    let mut headers = vec!["d_u (KB)".to_string()];
    headers.extend(config.schemes.iter().map(|s| s.name()));
    let mut table = Table::new("Fig. 5: average system utility vs task input size", headers);
    for kb in &config.data_sizes_kb {
        let params = config.params.with_task_data(Bits::from_kilobytes(*kb));
        let generator = ScenarioGenerator::new(params);
        let mut row = vec![format!("{kb:.0}")];
        for scheme in &config.schemes {
            let cell = run_cell(
                &generator,
                *scheme,
                config.preset,
                config.trials,
                config.base_seed,
            )?;
            row.push(cell.utility().display(3));
        }
        table.push_row(row);
    }
    Ok(vec![table])
}

/// Runs Fig. 5 with the paper's sweep at the given preset.
///
/// # Errors
///
/// See [`run`].
pub fn paper(preset: Preset) -> Result<Vec<Table>, Error> {
    run(&Fig5Config::paper(preset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_fig5_shape_and_trend() {
        let config = Fig5Config {
            data_sizes_kb: vec![105.0, 1680.0],
            schemes: vec![Scheme::Greedy],
            trials: 3,
            preset: Preset::Quick,
            base_seed: 0,
            params: ExperimentParams::paper_default()
                .with_users(8)
                .with_servers(3),
        };
        let tables = run(&config).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2);
    }

    #[test]
    fn larger_inputs_reduce_utility() {
        // Direct numeric check of the monotone trend Fig. 5 reports.
        let base = ExperimentParams::paper_default()
            .with_users(8)
            .with_servers(3);
        let small = ScenarioGenerator::new(base.with_task_data(Bits::from_kilobytes(105.0)));
        let large = ScenarioGenerator::new(base.with_task_data(Bits::from_kilobytes(1680.0)));
        let u_small = run_cell(&small, Scheme::Greedy, Preset::Quick, 5, 42)
            .unwrap()
            .utility()
            .mean;
        let u_large = run_cell(&large, Scheme::Greedy, Preset::Quick, 5, 42)
            .unwrap()
            .utility()
            .mean;
        assert!(
            u_small > u_large,
            "utility should fall with input size: {u_small} vs {u_large}"
        );
    }
}
