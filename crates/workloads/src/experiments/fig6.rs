//! Fig. 6 — system utility vs task workload at fixed user counts.
//!
//! Two panels (`U = 50` and `U = 90`) sweeping `w_u`. Expected shape:
//! utility increases with workload for every scheme (heavier tasks gain
//! more from offloading), with TSAJS on top.

use super::{run_cell, Scheme};
use crate::params::{ExperimentParams, Preset};
use crate::report::Table;
use crate::ScenarioGenerator;
use mec_types::{Cycles, Error};

/// Fig. 6 sweep configuration.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Task workloads in Megacycles (x-axis).
    pub workloads_mcycles: Vec<f64>,
    /// Panel user counts.
    pub user_counts: Vec<usize>,
    /// Schemes compared.
    pub schemes: Vec<Scheme>,
    /// Monte-Carlo trials per cell.
    pub trials: usize,
    /// Effort preset.
    pub preset: Preset,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Network parameters.
    pub params: ExperimentParams,
}

impl Fig6Config {
    /// The paper's two panels.
    pub fn paper(preset: Preset) -> Self {
        Self {
            workloads_mcycles: vec![1000.0, 2000.0, 3000.0, 4000.0],
            user_counts: vec![50, 90],
            schemes: Scheme::lineup(30),
            trials: preset.trials,
            preset,
            base_seed: 6_000,
            params: ExperimentParams::paper_default(),
        }
    }
}

/// Runs the Fig. 6 experiment: one table per user-count panel.
///
/// # Errors
///
/// Propagates scenario-generation and solver errors.
pub fn run(config: &Fig6Config) -> Result<Vec<Table>, Error> {
    let mut tables = Vec::new();
    for users in &config.user_counts {
        let mut headers = vec!["w_u (Mcycles)".to_string()];
        headers.extend(config.schemes.iter().map(|s| s.name()));
        let mut table = Table::new(
            format!("Fig. 6: avg system utility vs workload (U={users})"),
            headers,
        );
        for w in &config.workloads_mcycles {
            let params = config
                .params
                .with_users(*users)
                .with_workload(Cycles::from_mega(*w));
            let generator = ScenarioGenerator::new(params);
            let mut row = vec![format!("{w:.0}")];
            for scheme in &config.schemes {
                let cell = run_cell(
                    &generator,
                    *scheme,
                    config.preset,
                    config.trials,
                    config.base_seed,
                )?;
                row.push(cell.utility().display(3));
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    Ok(tables)
}

/// Runs Fig. 6 with the paper's sweep at the given preset.
///
/// # Errors
///
/// See [`run`].
pub fn paper(preset: Preset) -> Result<Vec<Table>, Error> {
    run(&Fig6Config::paper(preset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_fig6_emits_one_table_per_user_count() {
        let config = Fig6Config {
            workloads_mcycles: vec![1000.0, 4000.0],
            user_counts: vec![6, 10],
            schemes: vec![Scheme::Greedy],
            trials: 2,
            preset: Preset::Quick,
            base_seed: 0,
            params: ExperimentParams::paper_default().with_servers(3),
        };
        let tables = run(&config).unwrap();
        assert_eq!(tables.len(), 2);
        assert!(tables[0].title.contains("U=6"));
        assert!(tables[1].title.contains("U=10"));
    }

    #[test]
    fn heavier_workloads_increase_utility() {
        let base = ExperimentParams::paper_default()
            .with_users(8)
            .with_servers(3);
        let light = ScenarioGenerator::new(base.with_workload(Cycles::from_mega(1000.0)));
        let heavy = ScenarioGenerator::new(base.with_workload(Cycles::from_mega(4000.0)));
        let u_light = run_cell(&light, Scheme::Greedy, Preset::Quick, 5, 7)
            .unwrap()
            .utility()
            .mean;
        let u_heavy = run_cell(&heavy, Scheme::Greedy, Preset::Quick, 5, 7)
            .unwrap()
            .utility()
            .mean;
        assert!(
            u_heavy > u_light,
            "utility should rise with workload: {u_light} vs {u_heavy}"
        );
    }
}
