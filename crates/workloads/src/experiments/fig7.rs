//! Fig. 7 — system utility vs number of subchannels.
//!
//! Two panels (`L = 30` and `L = 50`) sweeping `N`. Expected shape:
//! utility first rises with `N` (the `S·N` offloading slots stop binding
//! and contention eases) then falls (each subchannel gets a sliver of
//! bandwidth and some stand idle), with TSAJS best around and past the
//! peak. The paper does not state the user count for this figure; we use
//! `U = 90` (its largest scale), where the capacity-limited regime at
//! small `N` produces the reported rise-then-fall.

use super::{run_cell, Scheme};
use crate::params::{ExperimentParams, Preset};
use crate::report::Table;
use crate::ScenarioGenerator;
use mec_types::Error;

/// Fig. 7 sweep configuration.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Subchannel counts (x-axis).
    pub subchannel_counts: Vec<usize>,
    /// Panel TSAJS epoch lengths.
    pub inner_iterations: Vec<usize>,
    /// Monte-Carlo trials per cell.
    pub trials: usize,
    /// Effort preset.
    pub preset: Preset,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Network parameters (subchannel count is overridden by the sweep).
    pub params: ExperimentParams,
}

impl Fig7Config {
    /// The paper's two panels.
    pub fn paper(preset: Preset) -> Self {
        Self {
            subchannel_counts: vec![1, 2, 3, 5, 10, 20, 30, 40, 50],
            inner_iterations: vec![30, 50],
            trials: preset.trials,
            preset,
            base_seed: 7_000,
            params: ExperimentParams::paper_default().with_users(90),
        }
    }
}

/// Runs the Fig. 7 experiment: one table per `L` panel.
///
/// # Errors
///
/// Propagates scenario-generation and solver errors.
pub fn run(config: &Fig7Config) -> Result<Vec<Table>, Error> {
    let mut tables = Vec::new();
    for l in &config.inner_iterations {
        let schemes = Scheme::lineup(*l);
        let mut headers = vec!["N".to_string()];
        headers.extend(schemes.iter().map(|s| s.name()));
        let mut table = Table::new(
            format!("Fig. 7: avg system utility vs sub-channels (L={l})"),
            headers,
        );
        for n in &config.subchannel_counts {
            let params = config.params.with_subchannels(*n);
            let generator = ScenarioGenerator::new(params);
            let mut row = vec![n.to_string()];
            for scheme in &schemes {
                let cell = run_cell(
                    &generator,
                    *scheme,
                    config.preset,
                    config.trials,
                    config.base_seed,
                )?;
                row.push(cell.utility().display(3));
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    Ok(tables)
}

/// Runs Fig. 7 with the paper's sweep at the given preset.
///
/// # Errors
///
/// See [`run`].
pub fn paper(preset: Preset) -> Result<Vec<Table>, Error> {
    run(&Fig7Config::paper(preset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_fig7_emits_one_table_per_l() {
        let config = Fig7Config {
            subchannel_counts: vec![2, 4],
            inner_iterations: vec![10],
            trials: 2,
            preset: Preset::Quick,
            base_seed: 0,
            params: ExperimentParams::paper_default()
                .with_users(6)
                .with_servers(3),
        };
        let tables = run(&config).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2);
        assert_eq!(tables[0].rows[0][0], "2");
    }
}
