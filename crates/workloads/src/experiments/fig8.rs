//! Fig. 8 — average computation time vs number of subchannels.
//!
//! Same sweep as Fig. 7 but measuring solver wall-clock time, for
//! `L ∈ {10, 50}`. Expected shape: every stochastic scheme slows as the
//! search space grows with `N`; hJTORA grows fastest (its improvement
//! rounds scan `O(U·S·N)` candidates), while Greedy and LocalSearch stay
//! nearly flat (fixed search procedure / fixed proposal budget).

use super::{run_cell, Scheme};
use crate::params::{ExperimentParams, Preset};
use crate::report::Table;
use crate::ScenarioGenerator;
use mec_types::Error;

/// Fig. 8 sweep configuration.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// Subchannel counts (x-axis).
    pub subchannel_counts: Vec<usize>,
    /// Panel TSAJS epoch lengths.
    pub inner_iterations: Vec<usize>,
    /// Monte-Carlo trials per cell.
    pub trials: usize,
    /// Effort preset.
    pub preset: Preset,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Network parameters (subchannel count is overridden by the sweep).
    pub params: ExperimentParams,
}

impl Fig8Config {
    /// The paper's two timing panels.
    pub fn paper(preset: Preset) -> Self {
        Self {
            subchannel_counts: vec![1, 2, 3, 5, 10, 20, 30, 40, 50],
            inner_iterations: vec![10, 50],
            trials: preset.trials,
            preset,
            base_seed: 8_000,
            params: ExperimentParams::paper_default().with_users(90),
        }
    }
}

/// Runs the Fig. 8 experiment: one table per `L` panel, cells are mean
/// solver time in milliseconds ± CI.
///
/// # Errors
///
/// Propagates scenario-generation and solver errors.
pub fn run(config: &Fig8Config) -> Result<Vec<Table>, Error> {
    let mut tables = Vec::new();
    for l in &config.inner_iterations {
        let schemes = Scheme::lineup(*l);
        let mut headers = vec!["N".to_string()];
        headers.extend(schemes.iter().map(|s| s.name()));
        let mut table = Table::new(
            format!("Fig. 8: avg computation time [ms] vs sub-channels (L={l})"),
            headers,
        );
        for n in &config.subchannel_counts {
            let params = config.params.with_subchannels(*n);
            let generator = ScenarioGenerator::new(params);
            let mut row = vec![n.to_string()];
            for scheme in &schemes {
                let cell = run_cell(
                    &generator,
                    *scheme,
                    config.preset,
                    config.trials,
                    config.base_seed,
                )?;
                row.push(cell.time_ms().display(2));
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    Ok(tables)
}

/// Runs Fig. 8 with the paper's sweep at the given preset.
///
/// # Errors
///
/// See [`run`].
pub fn paper(preset: Preset) -> Result<Vec<Table>, Error> {
    run(&Fig8Config::paper(preset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_fig8_reports_times() {
        let config = Fig8Config {
            subchannel_counts: vec![2],
            inner_iterations: vec![10],
            trials: 2,
            preset: Preset::Quick,
            base_seed: 0,
            params: ExperimentParams::paper_default()
                .with_users(5)
                .with_servers(3),
        };
        let tables = run(&config).unwrap();
        assert_eq!(tables.len(), 1);
        // Cells parse as "x.xx ± y.yy" with non-negative mean.
        for cell in &tables[0].rows[0][1..] {
            let mean: f64 = cell.split('±').next().unwrap().trim().parse().unwrap();
            assert!(mean >= 0.0);
        }
    }

    #[test]
    fn hjtora_work_grows_with_subchannels() {
        // The trend behind Fig. 8, asserted on evaluation counts (stable)
        // rather than wall-clock (noisy under test concurrency).
        let base = ExperimentParams::paper_default()
            .with_users(8)
            .with_servers(3);
        let small = ScenarioGenerator::new(base.with_subchannels(2));
        let large = ScenarioGenerator::new(base.with_subchannels(8));
        let a = run_cell(&small, Scheme::HJtora, Preset::Quick, 3, 0).unwrap();
        let b = run_cell(&large, Scheme::HJtora, Preset::Quick, 3, 0).unwrap();
        let evals = |c: &super::super::CellResult| -> f64 {
            c.outcomes
                .iter()
                .map(|o| o.objective_evaluations as f64)
                .sum::<f64>()
                / c.outcomes.len() as f64
        };
        assert!(evals(&b) > evals(&a));
    }
}
