//! Fig. 9 — the time/energy preference trade-off.
//!
//! Sweeps `β_time` from 0.05 to 0.95 (`β_energy = 1 − β_time`) for TSAJS
//! at three user scales, reporting the all-user average energy (panel a)
//! and average completion delay (panel b). Expected shape: as `β_time`
//! grows, average delay falls and average energy rises.

use super::{run_cell, Scheme};
use crate::params::{ExperimentParams, Preset};
use crate::report::Table;
use crate::ScenarioGenerator;
use mec_types::Error;

/// Fig. 9 sweep configuration.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Time-preference values `β_time` (x-axis).
    pub beta_times: Vec<f64>,
    /// User scales (one series per scale).
    pub user_counts: Vec<usize>,
    /// Monte-Carlo trials per cell.
    pub trials: usize,
    /// Effort preset.
    pub preset: Preset,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Network parameters.
    pub params: ExperimentParams,
}

impl Fig9Config {
    /// The paper's sweep: `β_time ∈ {0.05, 0.15, …, 0.95}` at three user
    /// scales.
    pub fn paper(preset: Preset) -> Self {
        Self {
            beta_times: (0..10).map(|i| 0.05 + 0.1 * i as f64).collect(),
            user_counts: vec![30, 60, 90],
            trials: preset.trials,
            preset,
            base_seed: 9_000,
            params: ExperimentParams::paper_default(),
        }
    }
}

/// Runs the Fig. 9 experiment: two tables (average energy, average delay),
/// rows = `β_time`, one column per user scale.
///
/// # Errors
///
/// Propagates scenario-generation and solver errors.
pub fn run(config: &Fig9Config) -> Result<Vec<Table>, Error> {
    let mut headers = vec!["beta_time".to_string()];
    headers.extend(config.user_counts.iter().map(|u| format!("U={u}")));
    let mut energy = Table::new(
        "Fig. 9(a): average energy consumption [J] vs beta_time",
        headers.clone(),
    );
    let mut delay = Table::new(
        "Fig. 9(b): average computation delay [s] vs beta_time",
        headers,
    );

    for beta in &config.beta_times {
        let mut energy_row = vec![format!("{beta:.2}")];
        let mut delay_row = vec![format!("{beta:.2}")];
        for users in &config.user_counts {
            let params = config.params.with_users(*users).with_beta_time(*beta);
            let generator = ScenarioGenerator::new(params);
            let cell = run_cell(
                &generator,
                Scheme::TSAJS,
                config.preset,
                config.trials,
                config.base_seed,
            )?;
            energy_row.push(cell.average_energy().display(3));
            delay_row.push(cell.average_delay().display(3));
        }
        energy.push_row(energy_row);
        delay.push_row(delay_row);
    }
    Ok(vec![energy, delay])
}

/// Runs Fig. 9 with the paper's sweep at the given preset.
///
/// # Errors
///
/// See [`run`].
pub fn paper(preset: Preset) -> Result<Vec<Table>, Error> {
    run(&Fig9Config::paper(preset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_fig9_emits_energy_and_delay_tables() {
        let config = Fig9Config {
            beta_times: vec![0.25, 0.75],
            user_counts: vec![5],
            trials: 2,
            preset: Preset::Quick,
            base_seed: 0,
            params: ExperimentParams::paper_default().with_servers(3),
        };
        let tables = run(&config).unwrap();
        assert_eq!(tables.len(), 2);
        assert!(tables[0].title.contains("energy"));
        assert!(tables[1].title.contains("delay"));
        assert_eq!(tables[0].rows.len(), 2);
        assert_eq!(tables[0].headers, vec!["beta_time", "U=5"]);
    }

    #[test]
    fn higher_beta_time_trades_energy_for_delay() {
        // The defining trade-off of Fig. 9, checked numerically with
        // deterministic channels to keep the quick test stable.
        let params = ExperimentParams::paper_default()
            .with_servers(3)
            .with_users(6)
            .without_shadowing();
        let energy_minded = ScenarioGenerator::new(params.with_beta_time(0.05));
        let time_minded = ScenarioGenerator::new(params.with_beta_time(0.95));
        let a = run_cell(&energy_minded, Scheme::TSAJS, Preset::Quick, 3, 11).unwrap();
        let b = run_cell(&time_minded, Scheme::TSAJS, Preset::Quick, 3, 11).unwrap();
        assert!(
            b.average_delay().mean <= a.average_delay().mean,
            "time-minded users should see lower delay: {} vs {}",
            b.average_delay().mean,
            a.average_delay().mean
        );
    }
}
