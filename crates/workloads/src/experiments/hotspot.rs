//! Hotspot sensitivity (extension): does the scheme ordering survive when
//! load concentrates on a few cells instead of the paper's uniform
//! placement?
//!
//! Under hotspots most users share one or two cells, so the subchannel
//! cap binds and inter-cell interference concentrates — the regime where
//! a search-based scheduler should earn its keep over greedy admission.

use super::{run_cell, Scheme};
use crate::params::{ExperimentParams, Preset};
use crate::report::Table;
use crate::ScenarioGenerator;
use mec_types::Error;

/// Hotspot-study configuration.
#[derive(Debug, Clone)]
pub struct HotspotConfig {
    /// `(label, params)` placement variants to compare.
    pub variants: Vec<(String, ExperimentParams)>,
    /// Schemes compared.
    pub schemes: Vec<Scheme>,
    /// Monte-Carlo trials per cell.
    pub trials: usize,
    /// Effort preset.
    pub preset: Preset,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl HotspotConfig {
    /// Default study: uniform vs 3 loose hotspots vs 1 tight hotspot, at
    /// U = 40 on the default network.
    pub fn paper(preset: Preset) -> Self {
        let base = ExperimentParams::paper_default()
            .with_users(40)
            .with_workload(mec_types::Cycles::from_mega(2000.0));
        Self {
            variants: vec![
                ("uniform (paper)".into(), base),
                ("3 hotspots, 200 m".into(), base.with_hotspots(3, 200.0)),
                ("1 hotspot, 100 m".into(), base.with_hotspots(1, 100.0)),
            ],
            schemes: Scheme::lineup(30),
            trials: preset.trials,
            preset,
            base_seed: 12_000,
        }
    }
}

/// Runs the hotspot study: one row per placement variant.
///
/// # Errors
///
/// Propagates scenario-generation and solver errors.
pub fn run(config: &HotspotConfig) -> Result<Vec<Table>, Error> {
    let mut headers = vec!["placement".to_string()];
    headers.extend(config.schemes.iter().map(|s| s.name()));
    let mut table = Table::new(
        "Hotspot sensitivity: avg system utility under load concentration (U=40)",
        headers,
    );
    for (label, params) in &config.variants {
        let generator = ScenarioGenerator::new(*params);
        let mut row = vec![label.clone()];
        for scheme in &config.schemes {
            let cell = run_cell(
                &generator,
                *scheme,
                config.preset,
                config.trials,
                config.base_seed,
            )?;
            row.push(cell.utility().display(3));
        }
        table.push_row(row);
    }
    Ok(vec![table])
}

/// Runs the default study at the given preset.
///
/// # Errors
///
/// See [`run`].
pub fn paper(preset: Preset) -> Result<Vec<Table>, Error> {
    run(&HotspotConfig::paper(preset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_variant() {
        let base = ExperimentParams::paper_default()
            .with_users(8)
            .with_servers(3);
        let config = HotspotConfig {
            variants: vec![
                ("uniform".into(), base),
                ("hotspot".into(), base.with_hotspots(1, 80.0)),
            ],
            schemes: vec![Scheme::Greedy, Scheme::LocalSearch],
            trials: 2,
            preset: Preset::Quick,
            base_seed: 0,
        };
        let tables = run(&config).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2);
        assert_eq!(tables[0].rows[0][0], "uniform");
        assert_eq!(tables[0].headers.len(), 3);
    }

    #[test]
    fn concentration_reduces_utility() {
        // A single tight hotspot starves most cells and saturates one:
        // total utility must fall versus uniform placement.
        let base = ExperimentParams::paper_default()
            .with_users(24)
            .with_servers(9);
        let uniform = ScenarioGenerator::new(base);
        let hotspot = ScenarioGenerator::new(base.with_hotspots(1, 80.0));
        let u = run_cell(&uniform, Scheme::Greedy, Preset::Quick, 4, 3)
            .unwrap()
            .utility()
            .mean;
        let h = run_cell(&hotspot, Scheme::Greedy, Preset::Quick, 4, 3)
            .unwrap()
            .utility()
            .mean;
        assert!(h < u, "hotspot {h} should trail uniform {u}");
    }
}
