//! Per-figure experiment drivers.
//!
//! Each `figN` module regenerates the data behind the corresponding figure
//! of the paper's evaluation. Every driver follows the same pattern: a
//! `*Config` struct holding the sweep values (defaulting to the paper's),
//! a `run(&config)` function returning [`Table`](crate::Table)s, and a `paper(preset)`
//! convenience wrapper.

pub mod ablation;
pub mod bound_gap;
pub mod convergence;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hotspot;
pub mod priority;

use crate::params::Preset;
use crate::runner::TrialOutcome;
use crate::stats::SampleStats;
use crate::{run_trials, ScenarioGenerator};
use mec_baselines::{ExhaustiveSolver, GreedySolver, HJtoraSolver, LocalSearchSolver};
use mec_system::Solver;
use mec_types::Error;
use tsajs::{TsajsSolver, TtsaConfig};

/// The schemes compared in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// TSAJS with a given epoch length `L` (the paper uses 10, 30, 50).
    Tsajs {
        /// Proposals per temperature epoch.
        inner_iterations: usize,
    },
    /// Exhaustive search (global optimum; small networks only).
    Exhaustive,
    /// The hJTORA-style heuristic.
    HJtora,
    /// First-improvement local search.
    LocalSearch,
    /// Strongest-signal greedy offloading.
    Greedy,
}

impl Scheme {
    /// TSAJS with the paper's default `L = 30`.
    pub const TSAJS: Scheme = Scheme::Tsajs {
        inner_iterations: 30,
    };

    /// The four-scheme lineup of Figs. 4–8 (TSAJS, hJTORA, LocalSearch,
    /// Greedy) with the given TSAJS epoch length.
    pub fn lineup(inner_iterations: usize) -> Vec<Scheme> {
        vec![
            Scheme::Tsajs { inner_iterations },
            Scheme::HJtora,
            Scheme::LocalSearch,
            Scheme::Greedy,
        ]
    }

    /// Display name used as a table column header.
    pub fn name(&self) -> String {
        match self {
            Scheme::Tsajs { .. } => "TSAJS".into(),
            Scheme::Exhaustive => "Exhaustive".into(),
            Scheme::HJtora => "hJTORA".into(),
            Scheme::LocalSearch => "LocalSearch".into(),
            Scheme::Greedy => "Greedy".into(),
        }
    }

    /// Builds a fresh solver instance for one trial.
    pub fn build(&self, preset: Preset, seed: u64) -> Box<dyn Solver> {
        match *self {
            Scheme::Tsajs { inner_iterations } => Box::new(TsajsSolver::new(
                TtsaConfig::paper_default()
                    .with_inner_iterations(inner_iterations)
                    .with_min_temperature(preset.ttsa_min_temperature)
                    .with_seed(seed),
            )),
            Scheme::Exhaustive => Box::new(ExhaustiveSolver::new()),
            Scheme::HJtora => Box::new(HJtoraSolver::new()),
            Scheme::LocalSearch => Box::new(LocalSearchSolver::with_seed(seed)),
            Scheme::Greedy => Box::new(GreedySolver::new()),
        }
    }
}

/// Aggregated results of one (scheme, configuration) cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Per-trial outcomes, in seed order.
    pub outcomes: Vec<TrialOutcome>,
}

impl CellResult {
    /// Mean ± CI of the achieved system utility.
    pub fn utility(&self) -> SampleStats {
        SampleStats::from_sample(&self.samples(|o| o.utility))
    }

    /// Mean ± CI of the solver wall-clock time in milliseconds.
    pub fn time_ms(&self) -> SampleStats {
        SampleStats::from_sample(&self.samples(|o| o.elapsed.as_secs_f64() * 1e3))
    }

    /// Mean ± CI of the all-user average energy (J).
    pub fn average_energy(&self) -> SampleStats {
        SampleStats::from_sample(&self.samples(|o| o.evaluation.average_energy().as_joules()))
    }

    /// Mean ± CI of the all-user average completion delay (s).
    pub fn average_delay(&self) -> SampleStats {
        SampleStats::from_sample(
            &self.samples(|o| o.evaluation.average_completion_time().as_secs()),
        )
    }

    /// Mean ± CI of the fraction of users that offload.
    pub fn offload_rate(&self) -> SampleStats {
        SampleStats::from_sample(&self.samples(|o| {
            o.evaluation.num_offloaded as f64 / o.evaluation.users.len().max(1) as f64
        }))
    }

    fn samples<F: Fn(&TrialOutcome) -> f64>(&self, f: F) -> Vec<f64> {
        self.outcomes.iter().map(f).collect()
    }
}

/// Runs `trials` Monte-Carlo trials of `scheme` on scenarios drawn from
/// `generator`, starting at `base_seed`.
///
/// # Errors
///
/// Propagates scenario-generation and solver errors.
pub fn run_cell(
    generator: &ScenarioGenerator,
    scheme: Scheme,
    preset: Preset,
    trials: usize,
    base_seed: u64,
) -> Result<CellResult, Error> {
    let outcomes = run_trials(generator, trials, base_seed, |seed| {
        scheme.build(preset, seed)
    })?;
    Ok(CellResult { outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ExperimentParams;

    #[test]
    fn scheme_names_match_the_paper() {
        assert_eq!(Scheme::TSAJS.name(), "TSAJS");
        assert_eq!(Scheme::Exhaustive.name(), "Exhaustive");
        assert_eq!(Scheme::HJtora.name(), "hJTORA");
        assert_eq!(Scheme::LocalSearch.name(), "LocalSearch");
        assert_eq!(Scheme::Greedy.name(), "Greedy");
    }

    #[test]
    fn lineup_is_the_four_figure_schemes() {
        let lineup = Scheme::lineup(10);
        assert_eq!(lineup.len(), 4);
        assert_eq!(
            lineup[0],
            Scheme::Tsajs {
                inner_iterations: 10
            }
        );
    }

    #[test]
    fn run_cell_aggregates_trials() {
        let generator = ScenarioGenerator::new(ExperimentParams::small_network());
        let cell = run_cell(&generator, Scheme::Greedy, Preset::Quick, 3, 0).unwrap();
        assert_eq!(cell.outcomes.len(), 3);
        let u = cell.utility();
        assert_eq!(u.n, 3);
        assert!(u.mean.is_finite());
        assert!(cell.time_ms().mean >= 0.0);
        assert!(cell.average_energy().mean > 0.0);
        assert!(cell.average_delay().mean > 0.0);
        let rate = cell.offload_rate();
        assert!((0.0..=1.0).contains(&rate.mean));
    }

    #[test]
    fn tsajs_scheme_builds_with_preset_schedule() {
        // Quick preset → truncated schedule; solver still produces valid
        // solutions on a small scenario.
        let generator = ScenarioGenerator::new(ExperimentParams::small_network());
        let cell = run_cell(&generator, Scheme::TSAJS, Preset::Quick, 2, 5).unwrap();
        for o in &cell.outcomes {
            assert!(o.utility >= 0.0);
        }
    }
}
