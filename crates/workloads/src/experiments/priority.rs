//! Provider-priority study (extension): does raising `λ_u` actually get
//! a user served under contention?
//!
//! §III-B motivates `λ_u` with first responders "whose tasks must be
//! given top priority", but no figure exercises the knob. Here a crowded
//! network (more users than offloading slots) carries a minority of
//! priority users (`λ = 1`) among standard users (`λ = λ_std < 1`); we
//! report the offload rate of each class under TSAJS. The weighted
//! objective should trade standard users away first.

use super::Scheme;
use crate::params::{ExperimentParams, Preset};
use crate::report::Table;
use crate::stats::SampleStats;
use crate::ScenarioGenerator;
use mec_radio::{ChannelGains, OfdmaConfig};
use mec_system::{Scenario, UserSpec};
use mec_types::{DbMilliwatts, Error, ProviderPreference, UserId};

/// Priority-study configuration.
#[derive(Debug, Clone)]
pub struct PriorityConfig {
    /// Standard users' provider weight `λ_std` (priority users get 1).
    pub lambda_standard: f64,
    /// Number of priority users (the first `k` user ids).
    pub num_priority: usize,
    /// Total users (should exceed `S·N` so the slots contend).
    pub num_users: usize,
    /// Monte-Carlo trials.
    pub trials: usize,
    /// Effort preset.
    pub preset: Preset,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Network parameters (user count overridden by `num_users`).
    pub params: ExperimentParams,
}

impl PriorityConfig {
    /// Default: 40 users contending for 9 slots (N = 1), 8 first
    /// responders. Slot-level scarcity is what makes `λ` decisive: with
    /// abundant slots the marginal offloader is chosen by channel quality
    /// and the weight barely matters.
    pub fn paper(preset: Preset) -> Self {
        Self {
            lambda_standard: 0.4,
            num_priority: 8,
            num_users: 40,
            trials: preset.trials,
            preset,
            base_seed: 13_000,
            params: ExperimentParams::paper_default()
                .with_subchannels(1)
                .with_workload(mec_types::Cycles::from_mega(2000.0)),
        }
    }
}

/// Builds the mixed-priority scenario for one seed: same radio as the
/// generator's draw, but the first `num_priority` users get `λ = 1` and
/// the rest `λ = lambda_standard`.
fn mixed_scenario(config: &PriorityConfig, seed: u64) -> Result<Scenario, Error> {
    let params = config.params.with_users(config.num_users);
    let base = ScenarioGenerator::new(params).generate(seed)?;
    let mut users: Vec<UserSpec> = base.users().to_vec();
    for (i, user) in users.iter_mut().enumerate() {
        user.lambda = if i < config.num_priority {
            ProviderPreference::MAX
        } else {
            ProviderPreference::new(config.lambda_standard)?
        };
    }
    // Rebuild with the same gains/noise but the new priorities.
    let rebuilt = Scenario::new(
        users,
        base.servers().to_vec(),
        OfdmaConfig::new(base.ofdma().bandwidth(), base.num_subchannels())?,
        ChannelGains::from_fn(
            base.num_users(),
            base.num_servers(),
            base.num_subchannels(),
            |u, s, j| base.gains().gain(u, s, j),
        )?,
        DbMilliwatts::new(base.noise().to_dbm().as_dbm()).to_watts(),
    )?;
    Ok(rebuilt)
}

/// Runs the priority study: offload rate per user class, for a couple of
/// `λ_std` settings.
///
/// # Errors
///
/// Propagates scenario-generation and solver errors.
pub fn run(config: &PriorityConfig) -> Result<Vec<Table>, Error> {
    let mut table = Table::new(
        format!(
            "Priority: offload rate by class (U={}, {} priority users, TSAJS)",
            config.num_users, config.num_priority
        ),
        vec![
            "lambda_std".into(),
            "priority offload rate".into(),
            "standard offload rate".into(),
        ],
    );
    for lambda_std in [1.0, config.lambda_standard] {
        let sub_config = PriorityConfig {
            lambda_standard: lambda_std,
            ..config.clone()
        };
        // run_trials wants a generator; we need per-seed custom scenarios,
        // so run the trials by hand (sequentially — TSAJS solves are the
        // cost, trials are few).
        let mut priority_rates = Vec::with_capacity(config.trials);
        let mut standard_rates = Vec::with_capacity(config.trials);
        for t in 0..config.trials as u64 {
            let seed = config.base_seed + t;
            let scenario = mixed_scenario(&sub_config, seed)?;
            let mut solver = Scheme::TSAJS.build(config.preset, seed);
            let solution = solver.solve(&scenario)?;
            let offloaded = |range: std::ops::Range<usize>| -> f64 {
                let total = range.len().max(1) as f64;
                range
                    .filter(|i| solution.assignment.is_offloaded(UserId::new(*i)))
                    .count() as f64
                    / total
            };
            priority_rates.push(offloaded(0..config.num_priority));
            standard_rates.push(offloaded(config.num_priority..config.num_users));
        }
        table.push_row(vec![
            format!("{lambda_std:.2}"),
            SampleStats::from_sample(&priority_rates).display(3),
            SampleStats::from_sample(&standard_rates).display(3),
        ]);
    }
    Ok(vec![table])
}

/// Runs the default study at the given preset.
///
/// # Errors
///
/// See [`run`].
pub fn paper(preset: Preset) -> Result<Vec<Table>, Error> {
    run(&PriorityConfig::paper(preset))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> PriorityConfig {
        PriorityConfig {
            lambda_standard: 0.3,
            num_priority: 3,
            num_users: 12,
            trials: 3,
            preset: Preset::Quick,
            base_seed: 2,
            params: ExperimentParams::paper_default()
                .with_servers(3)
                .with_subchannels(2)
                .with_workload(mec_types::Cycles::from_mega(2000.0)),
        }
    }

    #[test]
    fn produces_two_rows_with_rates_in_unit_interval() {
        let tables = run(&quick()).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2);
        for row in &tables[0].rows {
            for cell in &row[1..] {
                let rate: f64 = cell.split('±').next().unwrap().trim().parse().unwrap();
                assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
            }
        }
    }

    #[test]
    fn priority_users_win_under_contention() {
        // 12 users, 6 slots: with λ_std well below 1, priority users must
        // offload at a higher rate than standard users.
        let tables = run(&quick()).unwrap();
        let row = &tables[0].rows[1]; // the λ_std < 1 row
        let parse = |c: &str| -> f64 { c.split('±').next().unwrap().trim().parse().unwrap() };
        let priority = parse(&row[1]);
        let standard = parse(&row[2]);
        assert!(
            priority >= standard,
            "priority {priority} should be >= standard {standard}"
        );
    }
}
