//! Seeded scenario generation from [`ExperimentParams`].

use crate::params::{ExperimentParams, PlacementModel};
use mec_radio::{ChannelModel, OfdmaConfig};
use mec_system::{Scenario, UserSpec};
use mec_topology::{place_users_hotspots, place_users_uniform, NetworkLayout};
use mec_types::{
    DbMilliwatts, DeviceProfile, Error, ProviderPreference, ServerProfile, Task, UserPreferences,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Turns an [`ExperimentParams`] value into concrete [`Scenario`]s.
///
/// Each call to [`generate`](Self::generate) with a distinct seed draws a
/// fresh Monte-Carlo realization (user positions and shadowing); the same
/// seed always reproduces the same scenario bit-for-bit.
#[derive(Debug, Clone)]
pub struct ScenarioGenerator {
    params: ExperimentParams,
}

impl ScenarioGenerator {
    /// Creates a generator for the given parameters.
    pub fn new(params: ExperimentParams) -> Self {
        Self { params }
    }

    /// The parameters this generator draws from.
    pub fn params(&self) -> &ExperimentParams {
        &self.params
    }

    /// The network layout these parameters imply.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a degenerate geometry.
    pub fn layout(&self) -> Result<NetworkLayout, Error> {
        NetworkLayout::hexagonal(self.params.num_servers, self.params.inter_site_distance)
    }

    /// Generates the scenario realization for `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the parameters are invalid
    /// (zero users/servers/subchannels, non-positive physical quantities).
    pub fn generate(&self, seed: u64) -> Result<Scenario, Error> {
        self.generate_with_positions(seed)
            .map(|(scenario, _)| scenario)
    }

    /// As [`generate`](Self::generate), additionally returning the drawn
    /// user positions (for visualization and mobility tooling).
    ///
    /// # Errors
    ///
    /// See [`generate`](Self::generate).
    pub fn generate_with_positions(
        &self,
        seed: u64,
    ) -> Result<(Scenario, Vec<mec_topology::Point2>), Error> {
        let layout = self.layout()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let positions = match self.params.placement {
            PlacementModel::Uniform => {
                place_users_uniform(&layout, self.params.num_users, &mut rng)
            }
            PlacementModel::Hotspots { clusters, spread_m } => {
                place_users_hotspots(&layout, self.params.num_users, clusters, spread_m, &mut rng)
            }
        };
        // Decorrelate the shadowing stream from the placement stream (both
        // are derived from `seed`).
        let scenario = self.generate_at(&positions, seed ^ 0xD1B5_4A32_D192_ED03)?;
        Ok((scenario, positions))
    }

    /// Generates a scenario for *explicit* user positions (the mobility
    /// substrate moves users itself and regenerates channels per epoch).
    /// `seed` drives the shadowing realization only.
    ///
    /// # Errors
    ///
    /// As [`generate`](Self::generate); additionally
    /// [`Error::DimensionMismatch`] if `positions` does not match the
    /// configured user count.
    pub fn generate_at(
        &self,
        positions: &[mec_topology::Point2],
        seed: u64,
    ) -> Result<Scenario, Error> {
        let p = &self.params;
        if p.num_users == 0 {
            return Err(Error::invalid("U", "need at least one user"));
        }
        if positions.len() != p.num_users {
            return Err(Error::DimensionMismatch {
                what: "positions vs users",
                expected: p.num_users,
                actual: positions.len(),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);

        let layout = self.layout()?;
        let model = ChannelModel::paper_default().with_shadowing_db(p.shadowing_db);
        let gains = model.generate(&layout, positions, p.num_subchannels, &mut rng);

        let device = DeviceProfile::new(p.user_cpu, p.kappa, p.tx_power)?;
        let task = match p.task_output {
            Some(output) => Task::with_output(p.task_data, p.task_workload, output)?,
            None => Task::new(p.task_data, p.task_workload)?,
        };
        let mut users = Vec::with_capacity(p.num_users);
        for _ in 0..p.num_users {
            let beta = if p.beta_time_spread > 0.0 {
                use rand::Rng;
                let lo = (p.beta_time - p.beta_time_spread).max(0.0);
                let hi = (p.beta_time + p.beta_time_spread).min(1.0);
                rng.gen_range(lo..=hi)
            } else {
                p.beta_time
            };
            users.push(UserSpec {
                task,
                device,
                preferences: UserPreferences::new(beta)?,
                lambda: ProviderPreference::new(p.lambda)?,
            });
        }
        let servers = vec![ServerProfile::new(p.server_cpu)?; p.num_servers];
        let ofdma = OfdmaConfig::new(p.bandwidth, p.num_subchannels)?;

        let scenario = Scenario::new(
            users,
            servers,
            ofdma,
            gains,
            DbMilliwatts::new(p.noise.as_dbm()).to_watts(),
        )?;
        match p.downlink_rate {
            Some(rate) => scenario.with_downlink(rate),
            None => Ok(scenario),
        }
    }

    /// As [`generate_at`](Self::generate_at), but restricted to the
    /// servers whose `servers_up` flag is true (e.g. during an injected
    /// outage). The *full* channel tensor is always drawn first and then
    /// masked, so the surviving servers' gains are bit-identical to the
    /// unmasked realization of the same seed — an outage changes which
    /// servers exist, never the physics of the ones that remain. With
    /// every flag true this returns the unmasked scenario unchanged.
    ///
    /// # Errors
    ///
    /// As [`generate_at`](Self::generate_at); additionally
    /// [`Error::DimensionMismatch`] if `servers_up` does not match the
    /// configured server count and [`Error::InvalidParameter`] if every
    /// server is down.
    pub fn generate_at_subset(
        &self,
        positions: &[mec_topology::Point2],
        seed: u64,
        servers_up: &[bool],
    ) -> Result<Scenario, Error> {
        if servers_up.len() != self.params.num_servers {
            return Err(Error::DimensionMismatch {
                what: "servers_up vs servers",
                expected: self.params.num_servers,
                actual: servers_up.len(),
            });
        }
        let full = self.generate_at(positions, seed)?;
        if servers_up.iter().all(|&up| up) {
            return Ok(full);
        }
        let up: Vec<usize> = servers_up
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        if up.is_empty() {
            return Err(Error::invalid("servers_up", "need at least one server up"));
        }
        use mec_types::{ServerId, SubchannelId};
        let servers: Vec<ServerProfile> = up.iter().map(|&s| full.servers()[s]).collect();
        let gains = mec_radio::ChannelGains::from_fn(
            full.num_users(),
            up.len(),
            full.num_subchannels(),
            |u, s, j| {
                full.gains().gain(
                    u,
                    ServerId::new(up[s.index()]),
                    SubchannelId::new(j.index()),
                )
            },
        )?;
        let scenario = Scenario::new(
            full.users().to_vec(),
            servers,
            *full.ofdma(),
            gains,
            full.noise(),
        )?;
        match full.downlink() {
            Some(rate) => scenario.with_downlink(rate),
            None => Ok(scenario),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_system::Evaluator;

    #[test]
    fn generates_valid_paper_default_scenarios() {
        let generator = ScenarioGenerator::new(ExperimentParams::paper_default());
        let sc = generator.generate(0).unwrap();
        assert_eq!(sc.num_users(), 30);
        assert_eq!(sc.num_servers(), 9);
        assert_eq!(sc.num_subchannels(), 3);
        assert!((sc.noise().as_watts() - 1e-13).abs() < 1e-25);
        // Local cost of the default task: 1 Gcycle on 1 GHz = 1 s, 5 J.
        let lc = sc.local_cost(mec_types::UserId::new(0));
        assert!((lc.time.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_seed_reproduces_different_seed_varies() {
        let generator = ScenarioGenerator::new(ExperimentParams::small_network());
        let a = generator.generate(7).unwrap();
        let b = generator.generate(7).unwrap();
        let c = generator.generate(8).unwrap();
        assert_eq!(a.gains(), b.gains());
        assert_ne!(a.gains(), c.gains());
    }

    #[test]
    fn generated_scenarios_are_solvable() {
        let generator = ScenarioGenerator::new(ExperimentParams::small_network());
        let sc = generator.generate(1).unwrap();
        let x = mec_system::Assignment::all_local(&sc);
        assert_eq!(Evaluator::new(&sc).objective(&x), 0.0);
    }

    #[test]
    fn generate_with_positions_matches_generate() {
        let generator = ScenarioGenerator::new(ExperimentParams::small_network());
        let plain = generator.generate(9).unwrap();
        let (scenario, positions) = generator.generate_with_positions(9).unwrap();
        assert_eq!(scenario.gains(), plain.gains());
        assert_eq!(positions.len(), 6);
    }

    #[test]
    fn rejects_zero_users() {
        let generator = ScenarioGenerator::new(ExperimentParams::paper_default().with_users(0));
        assert!(generator.generate(0).is_err());
    }

    #[test]
    fn beta_spread_produces_heterogeneous_preferences() {
        let params = ExperimentParams::paper_default()
            .with_users(20)
            .with_beta_time(0.5)
            .with_beta_time_spread(0.4);
        let sc = ScenarioGenerator::new(params).generate(0).unwrap();
        let betas: Vec<f64> = sc
            .users()
            .iter()
            .map(|u| u.preferences.beta_time())
            .collect();
        let distinct = betas.iter().any(|b| (b - betas[0]).abs() > 1e-9);
        assert!(distinct, "spread should vary preferences");
        assert!(betas.iter().all(|b| (0.1..=0.9).contains(b)));
        // Zero spread stays homogeneous.
        let sc = ScenarioGenerator::new(params.with_beta_time_spread(0.0))
            .generate(0)
            .unwrap();
        assert!(sc.users().iter().all(|u| u.preferences.beta_time() == 0.5));
    }

    #[test]
    fn hotspot_placement_concentrates_load() {
        use mec_topology::NetworkLayout;
        let params = ExperimentParams::paper_default()
            .with_users(40)
            .with_hotspots(1, 60.0);
        let sc = ScenarioGenerator::new(params).generate(4).unwrap();
        // With one tight hotspot, one station dominates the best-server
        // choices.
        let layout =
            NetworkLayout::hexagonal(params.num_servers, params.inter_site_distance).unwrap();
        let _ = layout; // geometry checked implicitly via gains below
        let mut per_server = vec![0usize; sc.num_servers()];
        for u in sc.user_ids() {
            per_server[sc.gains().best_server(u).index()] += 1;
        }
        let max = per_server.iter().max().copied().unwrap();
        assert!(max >= 25, "expected a dominant cell, got {per_server:?}");
    }

    #[test]
    fn downlink_params_flow_into_the_scenario() {
        use mec_types::{Bits, BitsPerSecond};
        let params = ExperimentParams::paper_default()
            .with_users(4)
            .with_downlink(Bits::from_kilobytes(100.0), BitsPerSecond::new(50.0e6));
        let sc = ScenarioGenerator::new(params).generate(0).unwrap();
        assert_eq!(sc.downlink(), Some(BitsPerSecond::new(50.0e6)));
        assert!(sc.users().iter().all(|u| u.task.output().as_bits() > 0.0));
        // Coefficients carry a positive download cost.
        assert!(sc.coefficients(mec_types::UserId::new(0)).download_cost > 0.0);
    }

    #[test]
    fn subset_generation_masks_servers_and_keeps_survivor_gains() {
        use mec_types::{ServerId, SubchannelId, UserId};
        let generator = ScenarioGenerator::new(ExperimentParams::small_network());
        let (full, positions) = generator.generate_with_positions(11).unwrap();
        let shadow_seed = 11 ^ 0xD1B5_4A32_D192_ED03;

        // All-true mask: bit-identical to the unmasked path.
        let same = generator
            .generate_at_subset(&positions, shadow_seed, &[true; 4])
            .unwrap();
        assert_eq!(same.gains(), full.gains());

        // Drop server 1: survivors keep their exact gain rows.
        let masked = generator
            .generate_at_subset(&positions, shadow_seed, &[true, false, true, true])
            .unwrap();
        assert_eq!(masked.num_servers(), 3);
        assert_eq!(masked.num_users(), full.num_users());
        let survivors = [0usize, 2, 3];
        for u in 0..full.num_users() {
            for (s_new, &s_full) in survivors.iter().enumerate() {
                for j in 0..full.num_subchannels() {
                    let a = masked.gains().gain(
                        UserId::new(u),
                        ServerId::new(s_new),
                        SubchannelId::new(j),
                    );
                    let b = full.gains().gain(
                        UserId::new(u),
                        ServerId::new(s_full),
                        SubchannelId::new(j),
                    );
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }

        // Degenerate masks are rejected.
        assert!(generator
            .generate_at_subset(&positions, shadow_seed, &[false; 4])
            .is_err());
        assert!(generator
            .generate_at_subset(&positions, shadow_seed, &[true; 3])
            .is_err());
    }

    #[test]
    fn shadowing_toggle_changes_gains() {
        let with = ScenarioGenerator::new(ExperimentParams::small_network())
            .generate(3)
            .unwrap();
        let without = ScenarioGenerator::new(ExperimentParams::small_network().without_shadowing())
            .generate(3)
            .unwrap();
        assert_ne!(with.gains(), without.gains());
    }
}
