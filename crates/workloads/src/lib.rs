//! # mec-workloads
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§V):
//!
//! * [`params`] — the paper's default simulation parameters as a
//!   composable [`ExperimentParams`] value,
//! * [`generator`] — seeded scenario generation (hex layout → uniform user
//!   placement → shadowed channels → [`mec_system::Scenario`]),
//! * [`runner`] — multi-trial, thread-parallel solver execution,
//! * [`stats`] — mean / standard deviation / 95 % confidence intervals,
//! * [`report`] — markdown and CSV rendering of result tables,
//! * [`experiments`] — one driver per figure (`fig3` … `fig9`), each
//!   returning the rows the corresponding plot is drawn from.
//!
//! ## Example: a miniature Fig. 3 row
//!
//! ```
//! use mec_workloads::{ExperimentParams, ScenarioGenerator};
//! use mec_baselines::GreedySolver;
//! use mec_system::Solver;
//!
//! # fn main() -> Result<(), mec_types::Error> {
//! let params = ExperimentParams::small_network(); // U=6, S=4, N=2
//! let scenario = ScenarioGenerator::new(params).generate(42)?;
//! let solution = GreedySolver::new().solve(&scenario)?;
//! assert!(solution.utility.is_finite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod experiments;
pub mod generator;
pub mod params;
pub mod report;
pub mod runner;
pub mod stats;

pub use churn::{ChurnEvent, ChurnEventKind, ChurnTrace, PoissonChurn};
pub use generator::ScenarioGenerator;
pub use params::{ExperimentParams, PlacementModel, Preset};
pub use report::Table;
pub use runner::{run_trials, TrialOutcome};
pub use stats::{paired_difference, SampleStats};
