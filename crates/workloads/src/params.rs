//! Experiment parameter sets (§V defaults plus per-figure overrides).

use mec_types::{constants, Bits, BitsPerSecond, Cycles, DbMilliwatts, Hertz, Meters};
use serde::{Deserialize, Serialize};

/// How much compute an experiment run should spend.
///
/// Historically a closed `Quick`/`Full` enum; now an open effort record so
/// scenario specs and CLI flags can define their own levels. The old
/// variant syntax keeps compiling through the [`Preset::Quick`] /
/// [`Preset::Full`] associated constants, and the old accessor methods
/// remain as deprecated shims over the now-public fields. Named presets
/// also point at their corpus spec under `scenarios/`, so
/// `--preset quick` and `--scenario scenarios/preset_quick.toml` describe
/// the same run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Preset {
    /// Stable lookup name (`"quick"`, `"full"`, or `"custom"`).
    pub name: &'static str,
    /// Number of Monte-Carlo trials per configuration.
    pub trials: usize,
    /// TTSA termination temperature (`T_min`). The paper's `10⁻⁹` needs
    /// ≈ 700 epochs; quick-scale runs stop orders of magnitude earlier.
    pub ttsa_min_temperature: f64,
}

impl Preset {
    /// Few trials, truncated annealing schedule — for smoke tests.
    #[allow(non_upper_case_globals)]
    pub const Quick: Preset = Preset {
        name: "quick",
        trials: 3,
        ttsa_min_temperature: 1e-3,
    };

    /// Paper-faithful trial counts and schedules.
    #[allow(non_upper_case_globals)]
    pub const Full: Preset = Preset {
        name: "full",
        trials: 15,
        ttsa_min_temperature: 1e-9,
    };

    /// Looks up a named preset, case-insensitively.
    pub fn resolve(name: &str) -> Option<Preset> {
        if name.eq_ignore_ascii_case("quick") {
            Some(Preset::Quick)
        } else if name.eq_ignore_ascii_case("full") {
            Some(Preset::Full)
        } else {
            None
        }
    }

    /// Builds an ad-hoc effort level (shows up as `"custom"` in reports).
    pub fn from_effort(trials: usize, ttsa_min_temperature: f64) -> Preset {
        Preset {
            name: "custom",
            trials,
            ttsa_min_temperature,
        }
    }

    /// Whether this is the paper-faithful effort level (or deeper).
    pub fn is_full(&self) -> bool {
        self.trials >= Preset::Full.trials
            && self.ttsa_min_temperature <= Preset::Full.ttsa_min_temperature
    }

    /// The equivalent corpus spec under `scenarios/`, for named presets.
    pub fn scenario_file(&self) -> Option<&'static str> {
        match self.name {
            "quick" => Some("scenarios/preset_quick.toml"),
            "full" => Some("scenarios/preset_full.toml"),
            _ => None,
        }
    }

    /// Number of Monte-Carlo trials per configuration.
    #[deprecated(note = "read the `trials` field directly")]
    pub fn trials(self) -> usize {
        self.trials
    }

    /// TTSA termination temperature (`T_min`).
    #[deprecated(note = "read the `ttsa_min_temperature` field directly")]
    pub fn ttsa_min_temperature(self) -> f64 {
        self.ttsa_min_temperature
    }
}

// The legacy enum serialized its unit variants as `"Quick"` / `"Full"`
// strings; keep that wire format (named presets capitalize, custom levels
// serialize their name verbatim and round-trip through `resolve`).
impl Serialize for Preset {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let label = match self.name {
            "quick" => "Quick".to_string(),
            "full" => "Full".to_string(),
            other => other.to_string(),
        };
        serializer.serialize_content(serde::Content::Str(label))
    }
}

impl<'de> Deserialize<'de> for Preset {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error;
        match deserializer.deserialize_content()? {
            serde::Content::Str(s) => {
                Preset::resolve(&s).ok_or_else(|| D::Error::custom(format!("unknown preset `{s}`")))
            }
            other => Err(D::Error::custom(format!(
                "expected a preset name string, found {other:?}"
            ))),
        }
    }
}

/// How users are scattered over the coverage area.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlacementModel {
    /// Uniform over the coverage area (the paper's setting).
    Uniform,
    /// Clustered around `clusters` hotspot centers with a Gaussian spread
    /// (meters) — concentrates load on a few cells.
    Hotspots {
        /// Number of hotspot centers.
        clusters: usize,
        /// Gaussian standard deviation around each center, in meters.
        spread_m: f64,
    },
}

/// Every knob of a simulated MEC network, initialized to the values of §V.
///
/// All users are homogeneous unless an experiment says otherwise (that is
/// exactly the paper's setup); heterogeneity enters through positions and
/// shadowing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Number of users `U`.
    pub num_users: usize,
    /// Number of cells / MEC servers `S`.
    pub num_servers: usize,
    /// Number of OFDMA subchannels `N`.
    pub num_subchannels: usize,
    /// Total uplink bandwidth `B`.
    pub bandwidth: Hertz,
    /// Background noise `σ²`.
    pub noise: DbMilliwatts,
    /// User transmit power `P_u`.
    pub tx_power: DbMilliwatts,
    /// Inter-site distance.
    pub inter_site_distance: Meters,
    /// Lognormal shadowing standard deviation in dB.
    pub shadowing_db: f64,
    /// MEC server capacity `f_s`.
    pub server_cpu: Hertz,
    /// User device CPU `f_u`.
    pub user_cpu: Hertz,
    /// Chip energy coefficient `κ`.
    pub kappa: f64,
    /// Task input size `d_u`.
    pub task_data: Bits,
    /// Task workload `w_u`.
    pub task_workload: Cycles,
    /// User time preference `β_u^time` (energy weight is `1 − β`).
    pub beta_time: f64,
    /// Half-width of per-user uniform jitter around `beta_time` (clamped
    /// to `[0, 1]`). Zero (the paper's setting) makes all users share the
    /// same preference; a positive spread produces a heterogeneous
    /// population, which is where the KKT allocation differs from an
    /// equal split.
    pub beta_time_spread: f64,
    /// Provider preference `λ_u`.
    pub lambda: f64,
    /// Task result size returned over the downlink (`None` disables the
    /// §III-A.2 downlink extension, the paper's default).
    pub task_output: Option<Bits>,
    /// Fixed downlink rate; must be set when `task_output` is.
    pub downlink_rate: Option<BitsPerSecond>,
    /// User placement model.
    pub placement: PlacementModel,
}

impl ExperimentParams {
    /// The §V defaults: `S=9`, `N=3`, `B=20 MHz`, `σ²=−100 dBm`,
    /// `P_u=10 dBm`, 1 km ISD, 8 dB shadowing, `f_s=20 GHz`, `f_u=1 GHz`,
    /// `κ=5·10⁻²⁷`, `d_u=420 KB`, `β=0.5`, `λ=1`; `U=30` and
    /// `w_u=1000 Mcycles` as a neutral starting point.
    pub fn paper_default() -> Self {
        Self {
            num_users: 30,
            num_servers: constants::DEFAULT_NUM_SERVERS,
            num_subchannels: constants::DEFAULT_NUM_SUBCHANNELS,
            bandwidth: constants::DEFAULT_BANDWIDTH,
            noise: constants::DEFAULT_NOISE,
            tx_power: constants::DEFAULT_TX_POWER,
            inter_site_distance: constants::INTER_SITE_DISTANCE,
            shadowing_db: constants::SHADOWING_STDDEV_DB,
            server_cpu: constants::DEFAULT_SERVER_CPU,
            user_cpu: constants::DEFAULT_USER_CPU,
            kappa: constants::DEFAULT_KAPPA,
            task_data: constants::DEFAULT_TASK_DATA,
            task_workload: Cycles::from_mega(1000.0),
            beta_time: 0.5,
            beta_time_spread: 0.0,
            lambda: 1.0,
            task_output: None,
            downlink_rate: None,
            placement: PlacementModel::Uniform,
        }
    }

    /// Fig. 3's confined network: `U=6`, `S=4`, `N=2` (small enough for
    /// exhaustive search).
    pub fn small_network() -> Self {
        Self {
            num_users: 6,
            num_servers: 4,
            num_subchannels: 2,
            ..Self::paper_default()
        }
    }

    /// Sets the number of users.
    pub fn with_users(mut self, num_users: usize) -> Self {
        self.num_users = num_users;
        self
    }

    /// Sets the number of servers.
    pub fn with_servers(mut self, num_servers: usize) -> Self {
        self.num_servers = num_servers;
        self
    }

    /// Sets the number of subchannels.
    pub fn with_subchannels(mut self, num_subchannels: usize) -> Self {
        self.num_subchannels = num_subchannels;
        self
    }

    /// Sets the task workload.
    pub fn with_workload(mut self, workload: Cycles) -> Self {
        self.task_workload = workload;
        self
    }

    /// Sets the task input size.
    pub fn with_task_data(mut self, data: Bits) -> Self {
        self.task_data = data;
        self
    }

    /// Sets the time-preference weight `β_u^time`.
    pub fn with_beta_time(mut self, beta_time: f64) -> Self {
        self.beta_time = beta_time;
        self
    }

    /// Sets the per-user preference jitter half-width.
    pub fn with_beta_time_spread(mut self, spread: f64) -> Self {
        self.beta_time_spread = spread;
        self
    }

    /// Disables shadowing (deterministic channels for tests).
    pub fn without_shadowing(mut self) -> Self {
        self.shadowing_db = 0.0;
        self
    }

    /// Enables the downlink extension: tasks return `output` bits over a
    /// fixed `rate` downlink.
    pub fn with_downlink(mut self, output: Bits, rate: BitsPerSecond) -> Self {
        self.task_output = Some(output);
        self.downlink_rate = Some(rate);
        self
    }

    /// Switches to hotspot (clustered) user placement.
    pub fn with_hotspots(mut self, clusters: usize, spread_m: f64) -> Self {
        self.placement = PlacementModel::Hotspots { clusters, spread_m };
        self
    }
}

impl Default for ExperimentParams {
    /// Defaults to [`ExperimentParams::paper_default`].
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_v() {
        let p = ExperimentParams::paper_default();
        assert_eq!(p.num_servers, 9);
        assert_eq!(p.num_subchannels, 3);
        assert_eq!(p.bandwidth.as_mega(), 20.0);
        assert_eq!(p.noise.as_dbm(), -100.0);
        assert_eq!(p.tx_power.as_dbm(), 10.0);
        assert_eq!(p.inter_site_distance.as_kilometers(), 1.0);
        assert_eq!(p.shadowing_db, 8.0);
        assert_eq!(p.server_cpu.as_giga(), 20.0);
        assert_eq!(p.user_cpu.as_giga(), 1.0);
        assert_eq!(p.kappa, 5e-27);
        assert!((p.task_data.as_kilobytes() - 420.0).abs() < 1e-9);
        assert_eq!(p.beta_time, 0.5);
        assert_eq!(p.lambda, 1.0);
        assert_eq!(ExperimentParams::default(), p);
    }

    #[test]
    fn small_network_matches_fig3() {
        let p = ExperimentParams::small_network();
        assert_eq!((p.num_users, p.num_servers, p.num_subchannels), (6, 4, 2));
    }

    #[test]
    fn builders_override_single_fields() {
        let p = ExperimentParams::paper_default()
            .with_users(90)
            .with_servers(4)
            .with_subchannels(30)
            .with_workload(Cycles::from_mega(3000.0))
            .with_task_data(Bits::from_kilobytes(100.0))
            .with_beta_time(0.95)
            .without_shadowing();
        assert_eq!(p.num_users, 90);
        assert_eq!(p.num_servers, 4);
        assert_eq!(p.num_subchannels, 30);
        assert_eq!(p.task_workload.as_mega(), 3000.0);
        assert!((p.task_data.as_kilobytes() - 100.0).abs() < 1e-9);
        assert_eq!(p.beta_time, 0.95);
        assert_eq!(p.shadowing_db, 0.0);
    }

    #[test]
    fn placement_defaults_to_uniform_and_builder_switches() {
        assert_eq!(
            ExperimentParams::paper_default().placement,
            PlacementModel::Uniform
        );
        let p = ExperimentParams::paper_default().with_hotspots(3, 120.0);
        assert_eq!(
            p.placement,
            PlacementModel::Hotspots {
                clusters: 3,
                spread_m: 120.0
            }
        );
    }

    #[test]
    fn downlink_builder_sets_both_fields() {
        let p = ExperimentParams::paper_default()
            .with_downlink(Bits::from_kilobytes(50.0), BitsPerSecond::new(100.0e6));
        assert_eq!(p.task_output, Some(Bits::from_kilobytes(50.0)));
        assert_eq!(p.downlink_rate, Some(BitsPerSecond::new(100.0e6)));
        assert_eq!(ExperimentParams::paper_default().task_output, None);
    }

    #[test]
    fn presets_scale_effort() {
        let quick = Preset::resolve("quick").unwrap();
        let full = Preset::resolve("full").unwrap();
        assert!(full.trials > quick.trials);
        assert!(full.ttsa_min_temperature < quick.ttsa_min_temperature);
    }

    #[test]
    fn presets_resolve_by_name_case_insensitively() {
        assert_eq!(Preset::resolve("quick"), Some(Preset::Quick));
        assert_eq!(Preset::resolve("Full"), Some(Preset::Full));
        assert_eq!(Preset::resolve("FULL"), Some(Preset::Full));
        assert_eq!(Preset::resolve("warp-speed"), None);
        assert!(Preset::Full.is_full());
        assert!(!Preset::Quick.is_full());
        assert_eq!(
            Preset::Quick.scenario_file(),
            Some("scenarios/preset_quick.toml")
        );
        assert_eq!(Preset::from_effort(7, 1e-4).scenario_file(), None);
    }

    #[test]
    fn presets_keep_the_legacy_wire_format() {
        use serde::{Deserializer, Serializer};

        struct Cap;
        impl Serializer for Cap {
            type Ok = serde::Content;
            type Error = serde::ContentError;
            fn serialize_content(
                self,
                content: serde::Content,
            ) -> Result<serde::Content, serde::ContentError> {
                Ok(content)
            }
        }
        struct Feed(serde::Content);
        impl<'de> Deserializer<'de> for Feed {
            type Error = serde::ContentError;
            fn deserialize_content(self) -> Result<serde::Content, serde::ContentError> {
                Ok(self.0)
            }
        }

        let wire = Preset::Full.serialize(Cap).unwrap();
        assert!(matches!(&wire, serde::Content::Str(s) if s == "Full"));
        let back = Preset::deserialize(Feed(wire)).unwrap();
        assert_eq!(back, Preset::Full);
        assert!(Preset::deserialize(Feed(serde::Content::U64(3))).is_err());
    }
}
