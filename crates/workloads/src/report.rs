//! Result tables: markdown and CSV rendering.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// A rectangular result table (one per figure panel).
///
/// # Example
///
/// ```
/// use mec_workloads::Table;
///
/// let mut t = Table::new("demo", vec!["x".into(), "y".into()]);
/// t.push_row(vec!["1".into(), "2.0".into()]);
/// assert!(t.to_markdown().contains("| 1 | 2.0 |"));
/// assert_eq!(t.to_csv(), "x,y\n1,2.0\n");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `"Fig. 4(a): w=1000 Mcycles, L=10"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of pre-formatted cells; every row has `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Self {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Renders as a GitHub-flavored markdown table with a title line.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders as CSV (headers first, comma-separated, quoted only when a
    /// cell contains a comma or quote).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from file creation or writing.
    pub fn save_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "Fig. X",
            vec!["w (Mcycles)".into(), "TSAJS".into(), "Greedy".into()],
        );
        t.push_row(vec![
            "1000".into(),
            "3.10 ± 0.05".into(),
            "2.95 ± 0.04".into(),
        ]);
        t.push_row(vec![
            "2000".into(),
            "3.90 ± 0.06".into(),
            "3.70 ± 0.07".into(),
        ]);
        t
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### Fig. X\n"));
        assert!(md.contains("| w (Mcycles) | TSAJS | Greedy |"));
        assert!(md.contains("|---|---|---|"));
        assert!(md.contains("| 1000 | 3.10 ± 0.05 | 2.95 ± 0.04 |"));
    }

    #[test]
    fn csv_rendering_and_escaping() {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        t.push_row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_roundtrips_to_disk() {
        let t = sample();
        let dir = std::env::temp_dir().join("tsajs-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.csv");
        t.save_csv(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, t.to_csv());
    }
}
