//! Multi-trial, thread-parallel solver execution.

use crate::generator::ScenarioGenerator;
use mec_system::{Solver, SystemEvaluation};
use mec_types::Error;
use std::time::Duration;

/// What one (scenario realization, solver) trial produced.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// The trial's seed (also its index offset from the base seed).
    pub seed: u64,
    /// The solver's achieved system utility `J*(X)`.
    pub utility: f64,
    /// Wall-clock time the solver spent.
    pub elapsed: Duration,
    /// Objective evaluations the solver performed.
    pub objective_evaluations: u64,
    /// The full per-user evaluation of the returned decision.
    pub evaluation: SystemEvaluation,
}

/// Runs `trials` independent Monte-Carlo trials of one solver family.
///
/// Trial `i` generates the scenario with seed `base_seed + i` and solves
/// it with a fresh solver built by `make_solver(base_seed + i)` — so
/// results are reproducible regardless of how trials are scheduled over
/// threads. Trials run in parallel on up to
/// [`mec_types::effective_parallelism`] workers (`TSAJS_THREADS` caps the
/// pool).
///
/// # Errors
///
/// Returns the first error any trial produced (scenario generation or
/// solver failure).
pub fn run_trials<F>(
    generator: &ScenarioGenerator,
    trials: usize,
    base_seed: u64,
    make_solver: F,
) -> Result<Vec<TrialOutcome>, Error>
where
    F: Fn(u64) -> Box<dyn Solver> + Sync,
{
    let workers = mec_types::effective_parallelism(None).min(trials.max(1));

    let mut results: Vec<Option<Result<TrialOutcome, Error>>> = Vec::new();
    results.resize_with(trials, || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = std::sync::Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let seed = base_seed + i as u64;
                let outcome = run_one(generator, seed, &make_solver);
                let mut guard = results_mutex.lock().expect("no poisoned trials");
                guard[i] = Some(outcome);
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every trial index was claimed"))
        .collect()
}

fn run_one<F>(
    generator: &ScenarioGenerator,
    seed: u64,
    make_solver: &F,
) -> Result<TrialOutcome, Error>
where
    F: Fn(u64) -> Box<dyn Solver> + Sync,
{
    let scenario = generator.generate(seed)?;
    let mut solver = make_solver(seed);
    let solution = solver.solve(&scenario)?;
    let evaluation = solution.evaluate(&scenario)?;
    Ok(TrialOutcome {
        seed,
        utility: solution.utility,
        elapsed: solution.stats.elapsed,
        objective_evaluations: solution.stats.objective_evaluations,
        evaluation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ExperimentParams;
    use mec_baselines::{GreedySolver, RandomSolver};

    fn generator() -> ScenarioGenerator {
        ScenarioGenerator::new(ExperimentParams::small_network())
    }

    #[test]
    fn runs_the_requested_number_of_trials() {
        let outcomes = run_trials(&generator(), 5, 100, |_| Box::new(GreedySolver::new())).unwrap();
        assert_eq!(outcomes.len(), 5);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.seed, 100 + i as u64);
            assert!(o.utility.is_finite());
        }
    }

    #[test]
    fn deterministic_solvers_reproduce_across_runs() {
        let a = run_trials(&generator(), 4, 7, |_| Box::new(GreedySolver::new())).unwrap();
        let b = run_trials(&generator(), 4, 7, |_| Box::new(GreedySolver::new())).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.utility, y.utility);
        }
    }

    #[test]
    fn seeded_stochastic_solvers_reproduce_too() {
        let mk = |seed: u64| -> Box<dyn Solver> { Box::new(RandomSolver::with_seed(seed)) };
        let a = run_trials(&generator(), 4, 11, mk).unwrap();
        let b = run_trials(&generator(), 4, 11, mk).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.utility, y.utility);
        }
    }

    #[test]
    fn different_seeds_vary_outcomes() {
        let outcomes = run_trials(&generator(), 6, 0, |_| Box::new(GreedySolver::new())).unwrap();
        let first = outcomes[0].utility;
        assert!(
            outcomes.iter().any(|o| (o.utility - first).abs() > 1e-12),
            "all trials identical — shadowing/placement is not varying"
        );
    }

    #[test]
    fn zero_trials_is_empty() {
        let outcomes = run_trials(&generator(), 0, 0, |_| Box::new(GreedySolver::new())).unwrap();
        assert!(outcomes.is_empty());
    }

    #[test]
    fn evaluations_are_attached() {
        let outcomes = run_trials(&generator(), 2, 3, |_| Box::new(GreedySolver::new())).unwrap();
        for o in &outcomes {
            assert_eq!(o.evaluation.users.len(), 6);
            assert!((o.evaluation.system_utility - o.utility).abs() < 1e-9);
        }
    }
}
