//! Sample statistics: mean, standard deviation, 95 % confidence interval.

use serde::{Deserialize, Serialize};

/// Two-sided 97.5 % Student-t quantiles for df = 1..=30; beyond 30 the
/// normal quantile 1.96 is used.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Summary statistics of a sample of real values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleStats {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub stddev: f64,
    /// Half-width of the 95 % confidence interval for the mean
    /// (Student-t; 0 for n < 2).
    pub ci95: f64,
}

impl SampleStats {
    /// Computes statistics from a sample.
    ///
    /// # Example
    ///
    /// ```
    /// use mec_workloads::SampleStats;
    ///
    /// let s = SampleStats::from_sample(&[1.0, 2.0, 3.0]);
    /// assert_eq!(s.mean, 2.0);
    /// assert!(s.ci95 > 0.0);
    /// println!("{}", s.display(2)); // "2.00 ± 2.48"
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-finite values — an
    /// experiment producing those has already failed.
    pub fn from_sample(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "sample contains non-finite values"
        );
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Self {
                n,
                mean,
                stddev: 0.0,
                ci95: 0.0,
            };
        }
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let stddev = var.sqrt();
        let t = t_critical(n - 1);
        let ci95 = t * stddev / (n as f64).sqrt();
        Self {
            n,
            mean,
            stddev,
            ci95,
        }
    }

    /// Renders as `mean ± ci95` with the given number of decimals.
    pub fn display(&self, decimals: usize) -> String {
        format!("{:.*} ± {:.*}", decimals, self.mean, decimals, self.ci95)
    }
}

/// Statistics of the paired differences `a[i] − b[i]`.
///
/// In the experiment harness every scheme sees the same scenario
/// realizations (paired design), so comparing schemes via the paired
/// differences removes the between-instance variance that dominates the
/// raw CIs. The comparison is *significant at 95 %* when the differences'
/// confidence interval excludes zero.
///
/// # Panics
///
/// Panics if the samples are empty or of different lengths.
pub fn paired_difference(a: &[f64], b: &[f64]) -> SampleStats {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    SampleStats::from_sample(&diffs)
}

impl SampleStats {
    /// Whether the mean is significantly different from zero at the 95 %
    /// level (the CI excludes 0). For [`paired_difference`] output this is
    /// the paired-t test verdict.
    pub fn significantly_nonzero(&self) -> bool {
        self.mean.abs() > self.ci95 && self.n >= 2
    }
}

/// The two-sided 95 % Student-t critical value for the given degrees of
/// freedom.
pub fn t_critical(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        T_975[df - 1]
    } else {
        1.96
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sample_reference() {
        // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, stddev 2.138 (n−1).
        let s = SampleStats::from_sample(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.13809).abs() < 1e-4);
        // CI95 = t(7) * s / √8 = 2.365 * 2.13809 / 2.8284 ≈ 1.7878.
        assert!((s.ci95 - 1.7878).abs() < 1e-3);
    }

    #[test]
    fn singleton_sample_has_zero_spread() {
        let s = SampleStats::from_sample(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn constant_sample_has_zero_ci() {
        let s = SampleStats::from_sample(&[2.0; 10]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn t_critical_decreases_toward_normal() {
        assert!((t_critical(1) - 12.706).abs() < 1e-9);
        assert!((t_critical(30) - 2.042).abs() < 1e-9);
        assert_eq!(t_critical(31), 1.96);
        assert_eq!(t_critical(1000), 1.96);
        let mut prev = f64::INFINITY;
        for df in 1..=31 {
            let t = t_critical(df);
            assert!(t <= prev);
            prev = t;
        }
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..50).map(|i| (i % 5) as f64).collect();
        assert!(SampleStats::from_sample(&large).ci95 < SampleStats::from_sample(&small).ci95);
    }

    #[test]
    fn display_formats_mean_and_ci() {
        let s = SampleStats::from_sample(&[1.0, 2.0, 3.0]);
        assert_eq!(s.display(2), format!("{:.2} ± {:.2}", s.mean, s.ci95));
    }

    #[test]
    fn paired_difference_cancels_shared_noise() {
        // Two schemes measured on the same noisy instances: raw CIs are
        // wide, but the paired difference is tight and significant.
        let instance_effect = [10.0, 2.0, 7.5, 14.0, 4.0, 9.0, 1.0, 12.0];
        let a: Vec<f64> = instance_effect.iter().map(|x| x + 0.5).collect();
        let b: Vec<f64> = instance_effect.to_vec();
        let raw_a = SampleStats::from_sample(&a);
        let diff = paired_difference(&a, &b);
        assert!((diff.mean - 0.5).abs() < 1e-12);
        assert!(diff.ci95 < raw_a.ci95, "pairing must shrink the CI");
        assert!(diff.significantly_nonzero());
    }

    #[test]
    fn equal_schemes_are_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let diff = paired_difference(&a, &a);
        assert_eq!(diff.mean, 0.0);
        assert!(!diff.significantly_nonzero());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_pairs_panic() {
        let _ = paired_difference(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = SampleStats::from_sample(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_sample_panics() {
        let _ = SampleStats::from_sample(&[1.0, f64::NAN]);
    }
}
