//! Capacity planning with the reproduction as a what-if tool: how many
//! users can the default 9-cell network serve before the *per-user*
//! offloading gain drops below a service threshold? Sweeps the user count,
//! schedules each scale with TSAJS, and reports the break point.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use tsajs_mec::prelude::*;

const PER_USER_THRESHOLD: f64 = 0.18; // Minimum acceptable avg J_u per user.
const TRIALS: u64 = 3;

fn average_per_user_gain(users: usize) -> Result<f64, Error> {
    let params = ExperimentParams::paper_default()
        .with_users(users)
        .with_workload(Cycles::from_mega(2000.0));
    let mut total = 0.0;
    for seed in 0..TRIALS {
        let scenario = ScenarioGenerator::new(params).generate(seed)?;
        let mut solver = TsajsSolver::new(
            TtsaConfig::paper_default()
                .with_min_temperature(1e-3)
                .with_seed(seed),
        );
        let solution = solver.solve(&scenario)?;
        total += solution.utility / users as f64;
    }
    Ok(total / TRIALS as f64)
}

fn main() -> Result<(), Error> {
    println!("per-user gain threshold: {PER_USER_THRESHOLD}");
    println!("\n users | avg J per user | meets threshold");
    println!(" ------|----------------|----------------");
    let mut last_ok = None;
    for users in (10..=120).step_by(10) {
        let per_user = average_per_user_gain(users)?;
        let ok = per_user >= PER_USER_THRESHOLD;
        if ok {
            last_ok = Some(users);
        }
        println!(
            " {users:>5} | {per_user:>14.4} | {}",
            if ok { "yes" } else { "no" }
        );
    }
    match last_ok {
        Some(users) => println!(
            "\nThe network sustains ≈ {users} users at ≥ {PER_USER_THRESHOLD} gain per user \
             (S·N = 27 offloading slots; beyond that, contention dilutes the benefit)."
        ),
        None => println!("\nNo tested scale met the threshold."),
    }
    Ok(())
}
