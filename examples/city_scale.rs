//! A heterogeneous "smart city" scenario built with the low-level API:
//! mixed device classes, mixed application workloads, and prioritized
//! first responders (higher provider preference `λ_u`) — the use case the
//! paper's §III-B motivates.
//!
//! Demonstrates composing `mec-topology` + `mec-radio` + `mec-system`
//! directly instead of going through `ExperimentParams`.
//!
//! ```text
//! cargo run --release --example city_scale
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsajs_mec::prelude::*;
use tsajs_mec::radio::ChannelModel;
use tsajs_mec::topology::place_users_uniform;

/// An application profile from the paper's motivating scenarios.
#[derive(Clone, Copy)]
struct AppProfile {
    name: &'static str,
    data_kb: f64,
    workload_mcycles: f64,
    beta_time: f64,
}

const APPS: [AppProfile; 3] = [
    // Interactive AR overlay: small input, heavy compute, latency-critical.
    AppProfile {
        name: "ar-overlay",
        data_kb: 150.0,
        workload_mcycles: 3000.0,
        beta_time: 0.8,
    },
    // Traffic-camera video analytics: big input, heavy compute, balanced.
    AppProfile {
        name: "video-analytics",
        data_kb: 1200.0,
        workload_mcycles: 4000.0,
        beta_time: 0.5,
    },
    // Navigation re-planning on a battery-constrained wearable.
    AppProfile {
        name: "navigation",
        data_kb: 80.0,
        workload_mcycles: 800.0,
        beta_time: 0.2,
    },
];

fn main() -> Result<(), Error> {
    let mut rng = StdRng::seed_from_u64(777);
    let num_users = 45;

    // 9 hexagonal cells, 1 km apart, users uniform over the coverage area.
    let layout = NetworkLayout::hexagonal(9, constants::INTER_SITE_DISTANCE)?;
    let positions = place_users_uniform(&layout, num_users, &mut rng);
    let gains = ChannelModel::paper_default().generate(
        &layout,
        &positions,
        constants::DEFAULT_NUM_SUBCHANNELS,
        &mut rng,
    );

    // Heterogeneous population: random app mix, two device classes, and
    // every 9th user is a first responder with top provider priority.
    let mut users = Vec::with_capacity(num_users);
    let mut app_of = Vec::with_capacity(num_users);
    for i in 0..num_users {
        let app = APPS[rng.gen_range(0..APPS.len())];
        app_of.push(app.name);
        let flagship = rng.gen_bool(0.4);
        let device = DeviceProfile::new(
            if flagship {
                Hertz::from_giga(1.5)
            } else {
                Hertz::from_giga(0.8)
            },
            constants::DEFAULT_KAPPA,
            constants::DEFAULT_TX_POWER,
        )?;
        let lambda = if i % 9 == 0 {
            ProviderPreference::MAX // first responder
        } else {
            ProviderPreference::new(0.6)?
        };
        users.push(UserSpec {
            task: Task::new(
                Bits::from_kilobytes(app.data_kb),
                Cycles::from_mega(app.workload_mcycles),
            )?,
            device,
            preferences: UserPreferences::new(app.beta_time)?,
            lambda,
        });
    }

    let scenario = Scenario::new(
        users,
        vec![ServerProfile::paper_default(); layout.num_stations()],
        OfdmaConfig::paper_default(),
        gains,
        constants::DEFAULT_NOISE.to_watts(),
    )?;

    let mut solver = TsajsSolver::new(TtsaConfig::paper_default().with_seed(777));
    let solution = solver.solve(&scenario)?;
    let report = solution.evaluate(&scenario)?;

    println!("city-scale TSAJS schedule (45 users, 9 cells):");
    println!("  system utility : {:.3}", solution.utility);
    println!(
        "  offloaded      : {}/{}",
        report.num_offloaded,
        scenario.num_users()
    );

    // Offloading rate per application class.
    for app in APPS {
        let (total, offloaded): (usize, usize) = scenario
            .user_ids()
            .filter(|u| app_of[u.index()] == app.name)
            .fold((0, 0), |(t, o), u| {
                (t + 1, o + usize::from(solution.assignment.is_offloaded(u)))
            });
        println!("  {:<16} {:>2}/{:<2} offloaded", app.name, offloaded, total);
    }

    // First responders should be served preferentially.
    let responders_offloaded = scenario
        .user_ids()
        .filter(|u| u.index() % 9 == 0)
        .filter(|u| solution.assignment.is_offloaded(*u))
        .count();
    println!("  first responders offloaded: {responders_offloaded}/5");
    Ok(())
}
