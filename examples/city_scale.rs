//! A "smart city" scenario in two acts.
//!
//! **Act 1 — a heterogeneous district** built with the low-level API:
//! mixed device classes, mixed application workloads, and prioritized
//! first responders (higher provider preference `λ_u`) — the use case the
//! paper's §III-B motivates. Demonstrates composing `mec-topology` +
//! `mec-radio` + `mec-system` directly instead of going through
//! `ExperimentParams`.
//!
//! **Act 2 — the whole metro**: 100 000 users over a 36-cell deployment,
//! solved end to end with the sharded engine (`ShardSolver`). The
//! generator stores subchannel-shared blocked gains, the partitioner
//! clusters the cells, every cluster cold-solves in parallel, and
//! Gauss–Seidel halo sweeps reconcile cross-cluster interference. The
//! reported objective is the monolithic resync, so what prints is the
//! true city-wide `J*(X)`.
//!
//! ```text
//! cargo run --release --example city_scale
//! CITY_USERS=250000 cargo run --release --example city_scale
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use tsajs_mec::prelude::*;
use tsajs_mec::radio::ChannelModel;
use tsajs_mec::topology::place_users_uniform;

/// An application profile from the paper's motivating scenarios.
#[derive(Clone, Copy)]
struct AppProfile {
    name: &'static str,
    data_kb: f64,
    workload_mcycles: f64,
    beta_time: f64,
}

const APPS: [AppProfile; 3] = [
    // Interactive AR overlay: small input, heavy compute, latency-critical.
    AppProfile {
        name: "ar-overlay",
        data_kb: 150.0,
        workload_mcycles: 3000.0,
        beta_time: 0.8,
    },
    // Traffic-camera video analytics: big input, heavy compute, balanced.
    AppProfile {
        name: "video-analytics",
        data_kb: 1200.0,
        workload_mcycles: 4000.0,
        beta_time: 0.5,
    },
    // Navigation re-planning on a battery-constrained wearable.
    AppProfile {
        name: "navigation",
        data_kb: 80.0,
        workload_mcycles: 800.0,
        beta_time: 0.2,
    },
];

fn main() -> Result<(), Error> {
    let mut rng = StdRng::seed_from_u64(777);
    let num_users = 45;

    // 9 hexagonal cells, 1 km apart, users uniform over the coverage area.
    let layout = NetworkLayout::hexagonal(9, constants::INTER_SITE_DISTANCE)?;
    let positions = place_users_uniform(&layout, num_users, &mut rng);
    let gains = ChannelModel::paper_default().generate(
        &layout,
        &positions,
        constants::DEFAULT_NUM_SUBCHANNELS,
        &mut rng,
    );

    // Heterogeneous population: random app mix, two device classes, and
    // every 9th user is a first responder with top provider priority.
    let mut users = Vec::with_capacity(num_users);
    let mut app_of = Vec::with_capacity(num_users);
    for i in 0..num_users {
        let app = APPS[rng.gen_range(0..APPS.len())];
        app_of.push(app.name);
        let flagship = rng.gen_bool(0.4);
        let device = DeviceProfile::new(
            if flagship {
                Hertz::from_giga(1.5)
            } else {
                Hertz::from_giga(0.8)
            },
            constants::DEFAULT_KAPPA,
            constants::DEFAULT_TX_POWER,
        )?;
        let lambda = if i % 9 == 0 {
            ProviderPreference::MAX // first responder
        } else {
            ProviderPreference::new(0.6)?
        };
        users.push(UserSpec {
            task: Task::new(
                Bits::from_kilobytes(app.data_kb),
                Cycles::from_mega(app.workload_mcycles),
            )?,
            device,
            preferences: UserPreferences::new(app.beta_time)?,
            lambda,
        });
    }

    let scenario = Scenario::new(
        users,
        vec![ServerProfile::paper_default(); layout.num_stations()],
        OfdmaConfig::paper_default(),
        gains,
        constants::DEFAULT_NOISE.to_watts(),
    )?;

    let mut solver = TsajsSolver::new(TtsaConfig::paper_default().with_seed(777));
    let solution = solver.solve(&scenario)?;
    let report = solution.evaluate(&scenario)?;

    println!("city-scale TSAJS schedule (45 users, 9 cells):");
    println!("  system utility : {:.3}", solution.utility);
    println!(
        "  offloaded      : {}/{}",
        report.num_offloaded,
        scenario.num_users()
    );

    // Offloading rate per application class.
    for app in APPS {
        let (total, offloaded): (usize, usize) = scenario
            .user_ids()
            .filter(|u| app_of[u.index()] == app.name)
            .fold((0, 0), |(t, o), u| {
                (t + 1, o + usize::from(solution.assignment.is_offloaded(u)))
            });
        println!("  {:<16} {:>2}/{:<2} offloaded", app.name, offloaded, total);
    }

    // First responders should be served preferentially.
    let responders_offloaded = scenario
        .user_ids()
        .filter(|u| u.index() % 9 == 0)
        .filter(|u| solution.assignment.is_offloaded(*u))
        .count();
    println!("  first responders offloaded: {responders_offloaded}/5");

    // ---- Act 2: the whole metro through the sharded engine ------------
    let metro_users: usize = std::env::var("CITY_USERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let params = ExperimentParams::paper_default()
        .with_users(metro_users)
        .with_servers(36)
        .with_workload(Cycles::from_mega(1500.0));
    let scenario = ScenarioGenerator::new(params).generate(11)?;
    println!(
        "\ncity-scale sharded solve ({} users, {} cells, blocked gains: {}):",
        scenario.num_users(),
        scenario.num_servers(),
        scenario.gains().is_subchannel_shared(),
    );

    let config = ShardConfig::paper_default().with_seed(11).with_ttsa(
        TtsaConfig::paper_default()
            .with_min_temperature(1e-2)
            .with_proposal_budget(4_000),
    );
    let mut solver = ShardSolver::new(config);
    let started = Instant::now();
    let solution = solver.solve(&scenario)?;
    let elapsed = started.elapsed();
    let stats = solver.last_stats().expect("solve just ran");
    println!("  system utility : {:.3}", solution.utility);
    println!(
        "  offloaded      : {}/{} ({} slots)",
        solution.assignment.num_offloaded(),
        scenario.num_users(),
        scenario.num_servers() * scenario.num_subchannels(),
    );
    println!(
        "  clusters       : {} ({} sweeps, converged: {})",
        stats.clusters, stats.sweeps, stats.converged,
    );
    println!("  halo residual  : {:.2e}", stats.halo_residual);
    println!("  wall clock     : {:.2?}", elapsed);
    Ok(())
}
