//! Embedding the C-RAN scheduling service: several operator consoles
//! (threads) share one controller handle, submit scheduling requests for
//! different cells-of-interest concurrently, and collect tagged results.
//!
//! ```text
//! cargo run --release --example controller_service
//! ```

use tsajs_mec::controller::{SchedulerService, SchemeChoice};
use tsajs_mec::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let service = SchedulerService::spawn();

    // Three "operator consoles" submit work concurrently; the controller
    // serializes the solves (one BBU) and tags every response.
    std::thread::scope(|scope| {
        for console in 0..3u64 {
            let handle = service.clone();
            scope.spawn(move || {
                for round in 0..2u64 {
                    let seed = console * 10 + round;
                    let params = ExperimentParams::paper_default()
                        .with_users(12 + 4 * console as usize);
                    let scenario = ScenarioGenerator::new(params)
                        .generate(seed)
                        .expect("scenario");
                    let response = handle
                        .schedule(scenario, SchemeChoice::TsajsQuick, seed)
                        .expect("service alive");
                    println!(
                        "console {console} round {round}: request #{:<3} J = {:.3} ({} offloaded, {:.1} ms)",
                        response.id,
                        response.solution.utility,
                        response.solution.assignment.num_offloaded(),
                        response.solution.stats.elapsed.as_secs_f64() * 1e3,
                    );
                }
            });
        }
    });

    service.shutdown();
    println!("controller drained and stopped.");
    Ok(())
}
