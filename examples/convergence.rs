//! Watch TTSA converge: record the per-epoch search trace and print the
//! temperature schedule, the threshold triggers, and the best-objective
//! curve — the diagnostics behind the "threshold-triggered" design.
//!
//! ```text
//! cargo run --release --example convergence
//! ```

use tsajs_mec::prelude::*;

fn main() -> Result<(), Error> {
    let params = ExperimentParams::paper_default()
        .with_users(40)
        .with_workload(Cycles::from_mega(2000.0));
    let scenario = ScenarioGenerator::new(params).generate(3)?;

    let mut solver = TsajsSolver::new(
        TtsaConfig::paper_default()
            .with_min_temperature(1e-6)
            .with_seed(3)
            .with_trace(),
    );
    let solution = solver.solve(&scenario)?;
    let trace = solver.last_trace().expect("trace was requested");

    println!(
        "TTSA converged to J* = {:.4} over {} epochs",
        solution.utility,
        trace.len()
    );
    println!(
        "fast-cooling trigger fired {} times ({} proposals total)\n",
        trace.trigger_count(),
        solution.stats.iterations
    );
    println!("epoch | temperature | current J | best J   | worse/better | trigger");
    println!("------|-------------|-----------|----------|--------------|--------");
    // Print every 25th epoch plus every trigger epoch.
    for (i, e) in trace.epochs.iter().enumerate() {
        if i % 25 == 0 || e.trigger_fired {
            println!(
                "{:>5} | {:>11.5} | {:>9.4} | {:>8.4} | {:>5} /{:>5} | {}",
                i,
                e.temperature,
                e.current_objective,
                e.best_objective,
                e.accepted_worse,
                e.accepted_better,
                if e.trigger_fired { "FIRED" } else { "" }
            );
        }
    }

    // A coarse ASCII sparkline of the best-objective curve.
    let best: Vec<f64> = trace.epochs.iter().map(|e| e.best_objective).collect();
    let (lo, hi) = best
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(*v), hi.max(*v))
        });
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let line: String = best
        .chunks(best.len().div_ceil(72).max(1))
        .map(|c| {
            let v = c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let t = if hi > lo { (v - lo) / (hi - lo) } else { 1.0 };
            glyphs[((t * (glyphs.len() - 1) as f64).round() as usize).min(glyphs.len() - 1)]
        })
        .collect();
    println!("\nbest J over time  [{lo:.3} → {hi:.3}]");
    println!("  {line}");
    Ok(())
}
