//! Dynamic re-scheduling under mobility: vehicles move through the 9-cell
//! network, channels change, and TSAJS re-solves every 5 simulated
//! seconds. Reports utility, handovers and decision churn per epoch —
//! the vehicular scenario the paper's introduction motivates.
//!
//! ```text
//! cargo run --release --example mobility
//! ```

use tsajs_mec::mobility::{DynamicSimulation, MobilityConfig};
use tsajs_mec::prelude::*;

fn main() -> Result<(), Error> {
    let params = ExperimentParams::paper_default()
        .with_users(30)
        .with_workload(Cycles::from_mega(2000.0));
    let mut sim = DynamicSimulation::new(params, MobilityConfig::vehicular(), 11)?;

    println!("epoch | utility | offloaded | handovers | reassignments");
    println!("------|---------|-----------|-----------|--------------");
    let history = sim.run(15, |seed| {
        Box::new(TsajsSolver::new(
            TtsaConfig::paper_default()
                .with_min_temperature(1e-3)
                .with_seed(seed),
        ))
    })?;
    for e in &history.epochs {
        println!(
            "{:>5} | {:>7.3} | {:>9} | {:>9} | {:>13}",
            e.epoch, e.utility, e.num_offloaded, e.handovers, e.reassignments
        );
    }
    println!(
        "\navg utility {:.3}; total decision churn {} slot-changes over {} epochs",
        history.average_utility(),
        history.total_reassignments(),
        history.epochs.len()
    );
    Ok(())
}
