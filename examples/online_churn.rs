//! The online engine under churn: users arrive by a Poisson process,
//! sojourn exponentially, move between epochs, and depart — while every
//! epoch patches the previous schedule onto the survivors and refreshes
//! it with a warm-started, reduced-temperature TTSA pass.
//!
//! The run is compared against admission control under overload: an
//! unbounded `AdmitAll` population vs. a `CapacityGate` that degrades
//! overload arrivals to forced-local execution.
//!
//! ```text
//! cargo run --release --example online_churn
//! ```

use tsajs_mec::online::{
    AdmissionPolicy, AdmitAll, CapacityGate, OnlineConfig, OnlineEngine, TraceChurn,
};
use tsajs_mec::prelude::*;
use tsajs_mec::tsajs::ResolveMode;
use tsajs_mec::workloads::PoissonChurn;

fn run_policy(label: &str, policy: Box<dyn AdmissionPolicy>, epochs: usize) -> Result<(), Error> {
    let params = ExperimentParams::paper_default().with_servers(4);
    let config = OnlineConfig::pedestrian()
        .with_base(TtsaConfig::paper_default().with_min_temperature(1e-3))
        .with_mode(ResolveMode::warm(3_000));
    // ~12 users in steady state: λ = 0.15/s at a 80 s mean sojourn.
    let churn = PoissonChurn::new(8, 0.15, Seconds::new(80.0))?;
    let horizon = Seconds::new(config.epoch_duration.as_secs() * epochs as f64);
    let mut engine = OnlineEngine::new(
        params,
        config,
        Box::new(TraceChurn::poisson(&churn, horizon, 42)),
        policy,
        42,
    )?;

    println!("--- {label} ---");
    println!("epoch | users (sched+local) | arr/dep/rej | J*(X)  | props | warm | hit-rate");
    for _ in 0..epochs {
        let r = engine.step()?;
        println!(
            "{:>5} | {:>6} ({:>2} + {:>2})   | {:>2} /{:>2} /{:>2}  | {:>6.3} | {:>5} | {:>4} | {:.2}",
            r.epoch,
            r.active_users,
            r.scheduled,
            r.forced_local,
            r.arrivals,
            r.departures,
            r.rejected,
            r.utility,
            r.proposals,
            if r.warm_started { "yes" } else { "cold" },
            r.deadline_hit_rate,
        );
    }
    let sla = engine.sla();
    println!(
        "departed {} users: hit-rate {:.2}, mean sojourn {:.0} s, mean benefit {:.3}\n",
        sla.len(),
        sla.deadline_hit_rate(),
        sla.mean_time_in_system_s(),
        sla.mean_total_benefit(),
    );
    Ok(())
}

fn main() -> Result<(), Error> {
    run_policy("admit-all", Box::new(AdmitAll), 12)?;
    run_policy(
        "capacity-gate (cap 10, overflow forced-local)",
        Box::new(CapacityGate::forcing_local(10)),
        12,
    )?;
    Ok(())
}
