//! Joint scheduling *and* uplink power control — the extension the paper
//! parks as future work. Alternates TTSA scheduling with per-user
//! coordinate descent over a discrete dBm menu and reports the gain over
//! the paper's fixed 10 dBm.
//!
//! ```text
//! cargo run --release --example power_control
//! ```

use tsajs_mec::prelude::*;
use tsajs_mec::tsajs::{solve_with_power_control, PowerControlConfig};

fn main() -> Result<(), Error> {
    println!("seed | fixed-power J | tuned J | gain   | power histogram (dBm: count)");
    println!("-----|---------------|---------|--------|-----------------------------");
    let mut total_gain = 0.0;
    let seeds = 5u64;
    for seed in 0..seeds {
        let params = ExperimentParams::paper_default()
            .with_users(25)
            .with_workload(Cycles::from_mega(2000.0));
        let scenario = ScenarioGenerator::new(params).generate(seed)?;

        let mut config = PowerControlConfig::paper_default();
        config.ttsa = config.ttsa.with_min_temperature(1e-3).with_seed(seed);
        let outcome = solve_with_power_control(&scenario, &config)?;

        let gain_pct = if outcome.fixed_power_utility > 0.0 {
            100.0 * (outcome.utility - outcome.fixed_power_utility) / outcome.fixed_power_utility
        } else {
            0.0
        };
        total_gain += gain_pct;

        // Histogram of chosen powers among offloaded users.
        let mut histogram: std::collections::BTreeMap<i64, usize> = Default::default();
        for u in scenario.user_ids() {
            if outcome.assignment.is_offloaded(u) {
                *histogram
                    .entry(outcome.powers[u.index()].as_dbm().round() as i64)
                    .or_default() += 1;
            }
        }
        let hist: Vec<String> = histogram
            .iter()
            .map(|(dbm, n)| format!("{dbm}:{n}"))
            .collect();
        println!(
            "{seed:>4} | {:>13.4} | {:>7.4} | {gain_pct:>5.2}% | {}",
            outcome.fixed_power_utility,
            outcome.utility,
            hist.join(" ")
        );
    }
    println!(
        "\naverage gain from power control: {:.2}% (the menu spans 4..16 dBm around the paper's fixed 10 dBm)",
        total_gain / seeds as f64
    );
    Ok(())
}
