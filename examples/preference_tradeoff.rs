//! The time/energy preference trade-off (the paper's Fig. 9 scenario): a
//! user with a draining battery raises `β_energy`, one racing a deadline
//! raises `β_time` — watch the fleet's average delay and energy move in
//! opposite directions as `β_time` sweeps from 0.05 to 0.95.
//!
//! ```text
//! cargo run --release --example preference_tradeoff
//! ```

use tsajs_mec::prelude::*;

fn main() -> Result<(), Error> {
    println!("beta_time | avg delay (s) | avg energy (J) | offloaded");
    println!("----------|---------------|----------------|----------");
    for i in 0..10 {
        let beta_time = 0.05 + 0.1 * i as f64;
        let params = ExperimentParams::paper_default()
            .with_users(30)
            .with_workload(Cycles::from_mega(2000.0))
            .with_beta_time(beta_time);
        // Same seed for every beta: the network and channels stay fixed,
        // only the preferences move.
        let scenario = ScenarioGenerator::new(params).generate(99)?;
        let mut solver = TsajsSolver::new(TtsaConfig::paper_default().with_seed(99));
        let solution = solver.solve(&scenario)?;
        let report = solution.evaluate(&scenario)?;
        println!(
            "   {:>5.2}  | {:>12.4} | {:>14.4} | {:>8}",
            beta_time,
            report.average_completion_time().as_secs(),
            report.average_energy().as_joules(),
            report.num_offloaded
        );
    }
    println!("\nExpected shape (Fig. 9): delay falls and energy rises as beta_time grows.");
    Ok(())
}
