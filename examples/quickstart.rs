//! Quickstart: build a paper-default MEC network, schedule it with TSAJS,
//! and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tsajs_mec::prelude::*;

fn main() -> Result<(), Error> {
    // A 9-cell hexagonal network (1 km inter-site distance) with 20 users,
    // each holding a 420 KB / 2000-Megacycle task — the paper's defaults.
    let params = ExperimentParams::paper_default()
        .with_users(20)
        .with_workload(Cycles::from_mega(2000.0));
    let scenario = ScenarioGenerator::new(params).generate(2024)?;

    // TSAJS = threshold-triggered simulated annealing for the offloading
    // decision + closed-form KKT compute allocation.
    let mut solver = TsajsSolver::new(TtsaConfig::paper_default().with_seed(2024));
    let solution = solver.solve(&scenario)?;

    println!("TSAJS finished:");
    println!("  system utility J*(X) : {:.4}", solution.utility);
    println!(
        "  offloaded users      : {}/{}",
        solution.assignment.num_offloaded(),
        scenario.num_users()
    );
    println!(
        "  objective evals      : {}",
        solution.stats.objective_evaluations
    );
    println!(
        "  wall clock           : {:.1} ms",
        solution.stats.elapsed.as_secs_f64() * 1e3
    );

    // Full per-user report (times, energies, individual utilities).
    let report = solution.evaluate(&scenario)?;
    println!("\n  user | decision     | t_total  | energy   | J_u");
    println!("  -----|--------------|----------|----------|------");
    for (u, m) in scenario.user_ids().zip(&report.users) {
        let decision = match solution.assignment.slot(u) {
            Some((s, j)) => format!("offload {s}/{j}"),
            None => "local".to_string(),
        };
        println!(
            "  {:>4} | {:<12} | {:>6.3} s | {:>6.3} J | {:+.3}",
            u.index(),
            decision,
            m.completion_time.as_secs(),
            m.energy.as_joules(),
            m.utility
        );
    }
    println!(
        "\n  fleet averages: delay {:.3} s, energy {:.3} J",
        report.average_completion_time().as_secs(),
        report.average_energy().as_joules()
    );
    Ok(())
}
