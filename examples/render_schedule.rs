//! Render a TSAJS schedule as an SVG: hexagonal cells, stations, users
//! (green = offloaded, orange = local) and links to serving stations.
//! Writes `results/schedule.svg`.
//!
//! ```text
//! cargo run --release --example render_schedule
//! ```

use rand::SeedableRng;
use tsajs_mec::prelude::*;
use tsajs_mec::topology::place_users_uniform;
use tsajs_mec::viz::SvgScene;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ExperimentParams::paper_default()
        .with_users(30)
        .with_workload(Cycles::from_mega(2000.0));
    let generator = ScenarioGenerator::new(params);

    // Keep the positions so the figure can draw them: place explicitly,
    // then build the scenario at those positions.
    let layout = generator.layout()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let positions = place_users_uniform(&layout, 30, &mut rng);
    let scenario = generator.generate_at(&positions, 8)?;

    let mut solver = TsajsSolver::new(
        TtsaConfig::paper_default()
            .with_min_temperature(1e-3)
            .with_seed(8),
    );
    let solution = solver.solve(&scenario)?;

    let svg = SvgScene::new(&layout)
        .with_users(&positions)
        .with_assignment(&solution.assignment)
        .render();
    std::fs::create_dir_all("results")?;
    std::fs::write("results/schedule.svg", &svg)?;
    println!(
        "wrote results/schedule.svg — J = {:.3}, {}/{} users offloaded, {} bytes of SVG",
        solution.utility,
        solution.assignment.num_offloaded(),
        scenario.num_users(),
        svg.len()
    );
    Ok(())
}
