//! Head-to-head comparison of every scheme on one confined network — a
//! single-instance version of the paper's Fig. 3, including the exhaustive
//! global optimum.
//!
//! ```text
//! cargo run --release --example solver_comparison
//! ```

use tsajs_mec::baselines::upper_bound;
use tsajs_mec::prelude::*;

fn main() -> Result<(), Error> {
    // Fig. 3's confined network: U=6, S=4, N=2 — small enough that the
    // exhaustive optimum is computable.
    let params = ExperimentParams::paper_default()
        .with_users(6)
        .with_servers(4)
        .with_subchannels(2)
        .with_workload(Cycles::from_mega(3000.0));
    let scenario = ScenarioGenerator::new(params).generate(7)?;

    let mut solvers: Vec<Box<dyn Solver>> = vec![
        Box::new(ExhaustiveSolver::new()),
        Box::new(TsajsSolver::new(TtsaConfig::paper_default().with_seed(7))),
        Box::new(HJtoraSolver::new()),
        Box::new(LocalSearchSolver::with_seed(7)),
        Box::new(GreedySolver::new()),
        Box::new(RandomSolver::with_seed(7)),
        Box::new(AllLocalSolver::new()),
    ];

    println!("scheme       | utility   | vs optimum | offloaded | evals    | time");
    println!("-------------|-----------|------------|-----------|----------|--------");
    let mut optimum = None;
    for solver in &mut solvers {
        let solution = solver.solve(&scenario)?;
        let opt = *optimum.get_or_insert(solution.utility);
        println!(
            "{:<12} | {:>9.4} | {:>9.2}% | {:>9} | {:>8} | {:>5.1} ms",
            solver.name(),
            solution.utility,
            if opt != 0.0 {
                100.0 * solution.utility / opt
            } else {
                100.0
            },
            solution.assignment.num_offloaded(),
            solution.stats.objective_evaluations,
            solution.stats.elapsed.as_secs_f64() * 1e3,
        );
    }
    println!("\n(the first row is the exhaustive global optimum; TSAJS should sit within a few percent of it)");

    // The interference-free matching bound certifies the optimum from
    // above without enumerating anything — usable at any scale.
    let bound = upper_bound(&scenario);
    println!(
        "certified upper bound: {:.4} (matching) / {:.4} (independent); optimum reaches {:.1}% of it",
        bound.assignment_bound,
        bound.independent_bound,
        100.0 * optimum.unwrap_or(0.0) / bound.assignment_bound
    );
    Ok(())
}
