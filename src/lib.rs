//! # tsajs-mec
//!
//! Umbrella crate for the TSAJS reproduction: re-exports the whole stack
//! so applications can depend on a single crate.
//!
//! * [`types`] — units, ids, tasks, devices, preferences ([`mec_types`])
//! * [`topology`] — hexagonal layouts and user placement ([`mec_topology`])
//! * [`radio`] — path loss, shadowing, OFDMA, SINR ([`mec_radio`])
//! * [`system`] — scenarios, assignments, KKT allocation, objective
//!   ([`mec_system`])
//! * [`tsajs`] — the TTSA solver (the paper's contribution)
//! * [`baselines`] — exhaustive / hJTORA / greedy / local-search solvers
//!   ([`mec_baselines`])
//! * [`workloads`] — experiment harness for every paper figure
//!   ([`mec_workloads`])
//! * [`mobility`] — random-waypoint mobility + dynamic re-scheduling
//!   ([`mec_mobility`])
//! * [`online`] — event-driven online engine: churn, warm-started
//!   re-solves, SLA tracking ([`mec_online`])
//! * [`conformance`] — seeded oracle harness: invariant checks, solver
//!   differential/metamorphic testing, online replay
//!   ([`mec_conformance`])
//! * [`controller`] — an embeddable C-RAN-style scheduling service
//!   ([`mec_controller`])
//! * [`service`] — production scheduler service: micro-batched ingestion,
//!   lock-free snapshots, degradation tiers, loadtest harness
//!   ([`mec_service`])
//! * [`viz`] — dependency-free SVG rendering of networks and schedules
//!   ([`mec_viz`])
//!
//! ## Quickstart
//!
//! ```
//! use tsajs_mec::prelude::*;
//!
//! # fn main() -> Result<(), mec_types::Error> {
//! // Generate a paper-default scenario and schedule it with TSAJS.
//! let params = ExperimentParams::paper_default().with_users(12);
//! let scenario = ScenarioGenerator::new(params).generate(7)?;
//! let mut solver = TsajsSolver::new(
//!     TtsaConfig::paper_default().with_min_temperature(1e-3).with_seed(7),
//! );
//! let solution = solver.solve(&scenario)?;
//! println!("system utility: {:.3}", solution.utility);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mec_baselines as baselines;
pub use mec_conformance as conformance;
pub use mec_controller as controller;
pub use mec_mobility as mobility;
pub use mec_online as online;
pub use mec_radio as radio;
pub use mec_service as service;
pub use mec_system as system;
pub use mec_topology as topology;
pub use mec_types as types;
pub use mec_viz as viz;
pub use mec_workloads as workloads;
pub use tsajs;

/// The most common imports in one place.
pub mod prelude {
    pub use mec_baselines::{
        AllLocalSolver, ExhaustiveSolver, GreedySolver, HJtoraSolver, LocalSearchSolver,
        RandomSolver,
    };
    pub use mec_conformance::{run_conformance, ConformanceConfig, VerdictReport};
    pub use mec_radio::{ChannelGains, ChannelModel, OfdmaConfig};
    pub use mec_system::{
        Assignment, Evaluator, Scenario, Solution, Solver, SystemEvaluation, UserSpec,
    };
    pub use mec_topology::{NetworkLayout, Point2};
    pub use mec_types::{
        constants, Bits, Cycles, DeviceProfile, Error, Hertz, ProviderPreference, Seconds,
        ServerId, ServerProfile, SubchannelId, Task, UserId, UserPreferences, Watts,
    };
    pub use mec_workloads::{ExperimentParams, Preset, SampleStats, ScenarioGenerator};
    pub use tsajs::{ShardConfig, ShardSolver, TsajsSolver, TtsaConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports_work() {
        use crate::prelude::*;
        let _ = ExperimentParams::paper_default();
        let _ = TtsaConfig::paper_default();
        let _ = GreedySolver::new();
    }
}
