//! Churn-patching edge cases, certified by the conformance oracle.
//!
//! [`Assignment::patched`] is the online engine's churn primitive: it
//! carries a decision onto a new user population, keeping survivors in
//! their slots and starting arrivals local. These tests drive it through
//! the population edge cases (everyone departs, everyone arrives, dense
//! survivor remaps) and hand every result to the invariant oracle from
//! `mec-conformance` instead of re-asserting feasibility by hand.

use tsajs_mec::conformance::{fuzz, Oracle};
use tsajs_mec::prelude::*;
use tsajs_mec::types::Error;

/// A confined scenario (`S = 4`, `N = 2`) with the given population.
fn scenario(users: usize, seed: u64) -> Scenario {
    let params = ExperimentParams::small_network().with_users(users);
    ScenarioGenerator::new(params).generate(seed).unwrap()
}

/// Runs every static oracle check and panics with the failure text.
fn certify(scenario: &Scenario, x: &Assignment, label: &str) {
    let oracle = Oracle::default();
    oracle
        .check_feasibility(scenario, x)
        .unwrap_or_else(|e| panic!("{label}: feasibility: {e}"));
    oracle
        .check_kkt(scenario, x)
        .unwrap_or_else(|e| panic!("{label}: kkt: {e}"));
    oracle
        .check_user_bounds(scenario, x)
        .unwrap_or_else(|e| panic!("{label}: bounds: {e}"));
}

#[test]
fn all_users_departing_yields_an_empty_feasible_decision() {
    let sc = scenario(5, 11);
    let x = fuzz::assignment(&sc, 0.8, 11);
    let next = x.patched(&[]).unwrap();
    assert_eq!(next.num_users(), 0);
    assert_eq!(next.num_offloaded(), 0);
    // The geometry survives, so a later wave of arrivals patches back in.
    let refilled = next.patched(&[None, None, None]).unwrap();
    assert_eq!(refilled.num_users(), 3);
    assert_eq!(refilled.num_offloaded(), 0);
    certify(&scenario(3, 12), &refilled, "refilled after full departure");
}

#[test]
fn all_users_arriving_start_local_and_feasible() {
    let sc = scenario(4, 23);
    let x = fuzz::assignment(&sc, 0.8, 23);
    // An entirely new population: nobody continues anybody.
    let next = x.patched(&[None; 6]).unwrap();
    assert_eq!(next.num_users(), 6);
    assert_eq!(next.num_offloaded(), 0);
    for v in 0..6 {
        assert_eq!(next.slot(UserId::new(v)), None);
    }
    certify(&scenario(6, 24), &next, "all-arrival population");
}

#[test]
fn survivors_keep_their_slots_around_interleaved_churn() {
    let sc = scenario(5, 47);
    let x = fuzz::assignment(&sc, 0.9, 47);
    // New population of 6: users 0, 1, 3, 4 survive (shuffled into new
    // indices), user 2 departs, two fresh arrivals interleave.
    let map = [
        Some(UserId::new(3)),
        None,
        Some(UserId::new(0)),
        Some(UserId::new(4)),
        None,
        Some(UserId::new(1)),
    ];
    let next = x.patched(&map).unwrap();
    assert_eq!(next.num_users(), 6);
    for (v, old) in map.iter().enumerate() {
        match old {
            Some(old) => assert_eq!(
                next.slot(UserId::new(v)),
                x.slot(*old),
                "survivor {v} (was {old}) moved"
            ),
            None => assert_eq!(next.slot(UserId::new(v)), None, "arrival {v} not local"),
        }
    }
    certify(&scenario(6, 48), &next, "interleaved churn");
}

#[test]
fn double_continuation_and_unknown_users_are_rejected() {
    let sc = scenario(3, 7);
    let x = fuzz::assignment(&sc, 0.9, 7);
    // Two new indices claiming the same old user would double-book its slot.
    let err = x
        .patched(&[Some(UserId::new(1)), Some(UserId::new(1))])
        .unwrap_err();
    assert!(matches!(err, Error::InfeasibleAssignment(_)), "{err:?}");
    // An old index beyond the previous population is unknown.
    let err = x.patched(&[Some(UserId::new(3))]).unwrap_err();
    assert!(matches!(err, Error::UnknownEntity { .. }), "{err:?}");
}

#[test]
fn random_churn_waves_stay_feasible_under_the_oracle() {
    // A short seeded sweep: patch random survivor maps through several
    // waves and certify every wave. Mirrors what the online engine does
    // epoch over epoch, but with adversarially dense churn.
    for seed in 0..8u64 {
        let users = 3 + (seed as usize % 3);
        let sc = scenario(users, 100 + seed);
        let mut x = fuzz::assignment(&sc, 0.8, 200 + seed);
        for wave in 0..4u64 {
            let old_count = x.num_users();
            // Survivors: every other old user, then one arrival.
            let mut map: Vec<Option<UserId>> = (0..old_count)
                .filter(|u| (u + wave as usize).is_multiple_of(2))
                .map(|u| Some(UserId::new(u)))
                .collect();
            map.push(None);
            x = x.patched(&map).unwrap();
            let sc_next = scenario(map.len(), 300 + 10 * seed + wave);
            certify(&sc_next, &x, &format!("seed {seed} wave {wave}"));
        }
    }
}
