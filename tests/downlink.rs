//! End-to-end tests of the downlink extension (§III-A.2) across the full
//! stack: tasks with output data, scenario construction, every solver,
//! and spec round-trips.

use tsajs_mec::prelude::*;
use tsajs_mec::system::ScenarioSpec;
use tsajs_mec::types::BitsPerSecond;

fn downlink_scenario(rate_mbps: f64) -> Scenario {
    let task = Task::with_output(
        Bits::from_kilobytes(420.0),
        Cycles::from_mega(2000.0),
        Bits::from_kilobytes(200.0),
    )
    .unwrap();
    let spec = UserSpec {
        task,
        device: DeviceProfile::paper_default(),
        preferences: UserPreferences::balanced(),
        lambda: ProviderPreference::MAX,
    };
    Scenario::new(
        vec![spec; 6],
        vec![ServerProfile::paper_default(); 3],
        OfdmaConfig::new(constants::DEFAULT_BANDWIDTH, 2).unwrap(),
        ChannelGains::uniform(6, 3, 2, 1e-10).unwrap(),
        constants::DEFAULT_NOISE.to_watts(),
    )
    .unwrap()
    .with_downlink(BitsPerSecond::new(rate_mbps * 1e6))
    .unwrap()
}

#[test]
fn every_solver_handles_downlink_scenarios() {
    let scenario = downlink_scenario(50.0);
    let mut solvers: Vec<Box<dyn Solver>> = vec![
        Box::new(TsajsSolver::new(
            TtsaConfig::paper_default()
                .with_min_temperature(1e-3)
                .with_seed(1),
        )),
        Box::new(HJtoraSolver::new()),
        Box::new(GreedySolver::new()),
        Box::new(LocalSearchSolver::with_seed(1)),
        Box::new(ExhaustiveSolver::new()),
    ];
    for solver in &mut solvers {
        let solution = solver.solve(&scenario).unwrap();
        solution.assignment.verify_feasible(&scenario).unwrap();
        let eval = solution.evaluate(&scenario).unwrap();
        assert!(
            (eval.system_utility - solution.utility).abs() < 1e-9,
            "{}",
            solver.name()
        );
        // Offloaded users pay the download time in their completion time.
        for m in eval.users.iter().filter(|m| m.offloaded) {
            // 200 KB at 50 Mbit/s = 1.6384 Mb / 50 Mb/s ≈ 32.8 ms.
            assert!((m.download_time.as_secs() - 200.0 * 8192.0 / 50.0e6).abs() < 1e-9);
        }
    }
}

#[test]
fn slower_downlink_reduces_offloading_appeal() {
    // The same network with a crippled downlink must never score higher.
    let fast = downlink_scenario(1000.0);
    let slow = downlink_scenario(0.2);
    let solve = |sc: &Scenario| ExhaustiveSolver::new().solve(sc).unwrap();
    let fast_solution = solve(&fast);
    let slow_solution = solve(&slow);
    assert!(fast_solution.utility >= slow_solution.utility);
    // At 0.2 Mbit/s, returning 200 KB costs ~8.2 s against a 2 s local
    // time (download cost ≈ 2.0 > the unit gain) — offloading is
    // pointless and the optimum keeps everyone local.
    assert_eq!(slow_solution.assignment.num_offloaded(), 0);
    assert!(fast_solution.assignment.num_offloaded() > 0);
}

#[test]
fn downlink_scenarios_roundtrip_through_specs() {
    let original = downlink_scenario(100.0);
    let spec = ScenarioSpec::from_scenario(&original);
    let rebuilt = spec.into_scenario().unwrap();
    // Identical objective on an identical decision.
    let mut x = Assignment::all_local(&original);
    x.assign(UserId::new(0), ServerId::new(0), SubchannelId::new(0))
        .unwrap();
    let a = Evaluator::new(&original).objective(&x);
    let b = Evaluator::new(&rebuilt).objective(&x);
    assert_eq!(a, b);
}
