//! End-to-end integration tests: parameters → scenario → every solver →
//! consistent, feasible, correctly-ordered solutions.

use tsajs_mec::prelude::*;

fn quick_tsajs(seed: u64) -> TsajsSolver {
    TsajsSolver::new(
        TtsaConfig::paper_default()
            .with_min_temperature(1e-3)
            .with_seed(seed),
    )
}

fn all_solvers(seed: u64) -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(quick_tsajs(seed)),
        Box::new(HJtoraSolver::new()),
        Box::new(LocalSearchSolver::with_seed(seed)),
        Box::new(GreedySolver::new()),
        Box::new(RandomSolver::with_seed(seed)),
        Box::new(AllLocalSolver::new()),
    ]
}

#[test]
fn every_solver_produces_feasible_consistent_solutions() {
    let params = ExperimentParams::paper_default().with_users(12);
    for seed in 0..3 {
        let scenario = ScenarioGenerator::new(params).generate(seed).unwrap();
        let evaluator = Evaluator::new(&scenario);
        for solver in &mut all_solvers(seed) {
            let solution = solver.solve(&scenario).unwrap();
            solution
                .assignment
                .verify_feasible(&scenario)
                .unwrap_or_else(|e| panic!("{} emitted infeasible X: {e}", solver.name()));
            let recomputed = evaluator.objective(&solution.assignment);
            assert!(
                (solution.utility - recomputed).abs() < 1e-9,
                "{} reported utility {} but objective is {}",
                solver.name(),
                solution.utility,
                recomputed
            );
            // The full evaluation must agree with the closed form too.
            let eval = solution.evaluate(&scenario).unwrap();
            assert!((eval.system_utility - recomputed).abs() < 1e-9);
        }
    }
}

#[test]
fn exhaustive_dominates_every_heuristic_on_small_instances() {
    let params = ExperimentParams::paper_default()
        .with_users(5)
        .with_servers(3)
        .with_subchannels(2);
    for seed in 0..3 {
        let scenario = ScenarioGenerator::new(params).generate(seed).unwrap();
        let optimum = ExhaustiveSolver::new().solve(&scenario).unwrap().utility;
        for solver in &mut all_solvers(seed) {
            let got = solver.solve(&scenario).unwrap().utility;
            assert!(
                got <= optimum + 1e-9,
                "{} beat the exhaustive optimum ({got} > {optimum})",
                solver.name()
            );
        }
    }
}

#[test]
fn tsajs_is_near_optimal_on_the_fig3_network() {
    // The headline claim: TSAJS ≈ Exhaustive. Averaged over a few seeds on
    // the confined network, TSAJS should reach ≥ 95 % of the optimum.
    // Heavier tasks make offloading clearly worthwhile, so the optimum is
    // bounded away from zero on every realization.
    let params = ExperimentParams::small_network().with_workload(Cycles::from_mega(3000.0));
    let mut ratio_sum = 0.0;
    let mut counted = 0usize;
    for seed in 0..4 {
        let scenario = ScenarioGenerator::new(params).generate(seed).unwrap();
        let optimum = ExhaustiveSolver::new().solve(&scenario).unwrap().utility;
        let got = quick_tsajs(seed).solve(&scenario).unwrap().utility;
        if optimum <= 0.0 {
            // Degenerate draw (nobody should offload); TSAJS must agree.
            assert_eq!(got, 0.0);
            continue;
        }
        ratio_sum += got / optimum;
        counted += 1;
    }
    assert!(
        counted >= 2,
        "too many degenerate draws to conclude anything"
    );
    let avg_ratio = ratio_sum / counted as f64;
    assert!(
        avg_ratio >= 0.95,
        "TSAJS achieved only {:.1}% of optimal on average",
        avg_ratio * 100.0
    );
}

#[test]
fn tsajs_beats_or_matches_the_weak_baselines_on_average() {
    let params = ExperimentParams::paper_default().with_users(20);
    let seeds = 4;
    let mut tsajs_total = 0.0;
    let mut greedy_total = 0.0;
    let mut random_total = 0.0;
    for seed in 0..seeds {
        let scenario = ScenarioGenerator::new(params).generate(seed).unwrap();
        tsajs_total += quick_tsajs(seed).solve(&scenario).unwrap().utility;
        greedy_total += GreedySolver::new().solve(&scenario).unwrap().utility;
        random_total += RandomSolver::with_seed(seed)
            .solve(&scenario)
            .unwrap()
            .utility;
    }
    assert!(
        tsajs_total >= greedy_total,
        "TSAJS ({tsajs_total}) lost to Greedy ({greedy_total}) on average"
    );
    assert!(
        tsajs_total > random_total,
        "TSAJS ({tsajs_total}) lost to Random ({random_total}) on average"
    );
}

#[test]
fn pipeline_is_reproducible_end_to_end() {
    let params = ExperimentParams::paper_default().with_users(15);
    let run = |seed: u64| {
        let scenario = ScenarioGenerator::new(params).generate(seed).unwrap();
        quick_tsajs(seed).solve(&scenario).unwrap()
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.utility, b.utility);
    let c = run(6);
    // Different seed → different realization (utility differs almost
    // surely; allow equality of assignments but not of channel draws).
    assert!(a.utility != c.utility || a.assignment != c.assignment);
}

#[test]
fn solutions_report_operational_metrics() {
    let params = ExperimentParams::paper_default().with_users(10);
    let scenario = ScenarioGenerator::new(params).generate(1).unwrap();
    let solution = quick_tsajs(1).solve(&scenario).unwrap();
    let eval = solution.evaluate(&scenario).unwrap();
    assert_eq!(eval.users.len(), 10);
    assert_eq!(eval.num_offloaded, solution.assignment.num_offloaded());
    for (u, m) in scenario.user_ids().zip(&eval.users) {
        if m.offloaded {
            assert!(m.sinr > 0.0);
            assert!(m.rate.as_bps() > 0.0);
            assert!(m.completion_time.as_secs() > 0.0);
        } else {
            // Local users pay exactly the local cost.
            let lc = scenario.local_cost(u);
            assert_eq!(m.completion_time, lc.time);
            assert_eq!(m.energy, lc.energy);
            assert_eq!(m.utility, 0.0);
        }
    }
}
