//! Smoke tests for every figure driver: reduced sweeps must produce
//! well-formed tables with parseable cells.

use mec_workloads::experiments::{fig3, fig4, fig5, fig6, fig7, fig8, fig9, Scheme};
use mec_workloads::{ExperimentParams, Preset, Table};

fn assert_well_formed(tables: &[Table]) {
    assert!(!tables.is_empty());
    for t in tables {
        assert!(!t.title.is_empty());
        assert!(t.headers.len() >= 2);
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            assert_eq!(row.len(), t.headers.len());
            // Every measurement cell is "mean ± ci" with finite numbers.
            for cell in &row[1..] {
                let mut parts = cell.split('±');
                let mean: f64 = parts.next().unwrap().trim().parse().unwrap();
                let ci: f64 = parts.next().unwrap().trim().parse().unwrap();
                assert!(mean.is_finite(), "bad cell {cell} in {}", t.title);
                assert!(ci >= 0.0);
            }
        }
        // Markdown and CSV renderings stay consistent with the data.
        let md = t.to_markdown();
        assert!(md.contains(&t.title));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), t.rows.len() + 1);
    }
}

fn tiny_params() -> ExperimentParams {
    ExperimentParams::paper_default()
        .with_users(4)
        .with_servers(3)
}

#[test]
fn fig3_smoke() {
    let config = fig3::Fig3Config {
        workloads_mcycles: vec![1000.0],
        schemes: vec![Scheme::Exhaustive, Scheme::TSAJS, Scheme::Greedy],
        trials: 2,
        preset: Preset::Quick,
        base_seed: 0,
        params: ExperimentParams::small_network().with_users(4),
    };
    let tables = fig3::run(&config).unwrap();
    // The first table is the numeric utility table; the second is the
    // paired-significance table whose last column is a yes/no verdict.
    assert_well_formed(&tables[..1]);
    assert_eq!(tables.len(), 2);
    for row in &tables[1].rows {
        assert!(row[2] == "yes" || row[2] == "no");
    }
}

#[test]
fn fig4_smoke() {
    let config = fig4::Fig4Config {
        user_counts: vec![4],
        workloads_mcycles: vec![1000.0],
        inner_iterations: vec![10],
        trials: 2,
        preset: Preset::Quick,
        base_seed: 0,
        params: tiny_params(),
    };
    assert_well_formed(&fig4::run(&config).unwrap());
}

#[test]
fn fig5_smoke() {
    let config = fig5::Fig5Config {
        data_sizes_kb: vec![210.0, 840.0],
        schemes: vec![Scheme::Greedy, Scheme::LocalSearch],
        trials: 2,
        preset: Preset::Quick,
        base_seed: 0,
        params: tiny_params(),
    };
    assert_well_formed(&fig5::run(&config).unwrap());
}

#[test]
fn fig6_smoke() {
    let config = fig6::Fig6Config {
        workloads_mcycles: vec![1000.0],
        user_counts: vec![3, 5],
        schemes: vec![Scheme::Greedy],
        trials: 2,
        preset: Preset::Quick,
        base_seed: 0,
        params: tiny_params(),
    };
    let tables = fig6::run(&config).unwrap();
    assert_eq!(tables.len(), 2);
    assert_well_formed(&tables);
}

#[test]
fn fig7_smoke() {
    let config = fig7::Fig7Config {
        subchannel_counts: vec![2, 3],
        inner_iterations: vec![10],
        trials: 2,
        preset: Preset::Quick,
        base_seed: 0,
        params: tiny_params(),
    };
    assert_well_formed(&fig7::run(&config).unwrap());
}

#[test]
fn fig8_smoke() {
    let config = fig8::Fig8Config {
        subchannel_counts: vec![2],
        inner_iterations: vec![10],
        trials: 2,
        preset: Preset::Quick,
        base_seed: 0,
        params: tiny_params(),
    };
    assert_well_formed(&fig8::run(&config).unwrap());
}

#[test]
fn fig9_smoke() {
    let config = fig9::Fig9Config {
        beta_times: vec![0.25, 0.75],
        user_counts: vec![4],
        trials: 2,
        preset: Preset::Quick,
        base_seed: 0,
        params: tiny_params(),
    };
    let tables = fig9::run(&config).unwrap();
    assert_eq!(tables.len(), 2, "energy and delay panels");
    assert_well_formed(&tables);
}
