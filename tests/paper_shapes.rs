//! Trend tests: the qualitative shapes the paper's figures report, checked
//! numerically on reduced configurations.

use tsajs_mec::prelude::*;

fn quick_tsajs(seed: u64) -> TsajsSolver {
    TsajsSolver::new(
        TtsaConfig::paper_default()
            .with_min_temperature(1e-3)
            .with_seed(seed),
    )
}

/// Average TSAJS utility over a few seeds for the given parameters.
fn avg_utility(params: ExperimentParams, seeds: std::ops::Range<u64>) -> f64 {
    let n = seeds.end - seeds.start;
    let mut total = 0.0;
    for seed in seeds {
        let scenario = ScenarioGenerator::new(params).generate(seed).unwrap();
        total += quick_tsajs(seed).solve(&scenario).unwrap().utility;
    }
    total / n as f64
}

#[test]
fn utility_rises_with_task_workload_fig3_fig6() {
    let base = ExperimentParams::paper_default()
        .with_users(10)
        .with_servers(4);
    let light = avg_utility(base.with_workload(Cycles::from_mega(1000.0)), 0..4);
    let heavy = avg_utility(base.with_workload(Cycles::from_mega(4000.0)), 0..4);
    assert!(
        heavy > light,
        "utility should rise with workload: {light:.3} → {heavy:.3}"
    );
}

#[test]
fn utility_falls_with_task_input_size_fig5() {
    let base = ExperimentParams::paper_default()
        .with_users(10)
        .with_servers(4);
    let small = avg_utility(base.with_task_data(Bits::from_kilobytes(105.0)), 0..4);
    let large = avg_utility(base.with_task_data(Bits::from_kilobytes(1680.0)), 0..4);
    assert!(
        small > large,
        "utility should fall with input size: {small:.3} vs {large:.3}"
    );
}

#[test]
fn beta_time_trades_delay_for_energy_fig9() {
    // Same network, deterministic channels; only the preference moves.
    let base = ExperimentParams::paper_default()
        .with_users(9)
        .with_servers(3)
        .without_shadowing();
    let measure = |beta: f64| -> (f64, f64) {
        let mut delay = 0.0;
        let mut energy = 0.0;
        let seeds = 3u64;
        for seed in 0..seeds {
            let scenario = ScenarioGenerator::new(base.with_beta_time(beta))
                .generate(seed)
                .unwrap();
            let solution = quick_tsajs(seed).solve(&scenario).unwrap();
            let eval = solution.evaluate(&scenario).unwrap();
            delay += eval.average_completion_time().as_secs();
            energy += eval.average_energy().as_joules();
        }
        (delay / seeds as f64, energy / seeds as f64)
    };
    let (delay_energy_minded, _) = measure(0.05);
    let (delay_time_minded, _) = measure(0.95);
    assert!(
        delay_time_minded <= delay_energy_minded + 1e-9,
        "raising beta_time should not increase delay: {delay_energy_minded:.3} → {delay_time_minded:.3}"
    );
}

#[test]
fn hjtora_cost_grows_with_subchannels_fig8() {
    let base = ExperimentParams::paper_default()
        .with_users(8)
        .with_servers(3);
    let evals = |n: usize| -> u64 {
        let scenario = ScenarioGenerator::new(base.with_subchannels(n))
            .generate(0)
            .unwrap();
        HJtoraSolver::new()
            .solve(&scenario)
            .unwrap()
            .stats
            .objective_evaluations
    };
    let small = evals(2);
    let large = evals(10);
    assert!(
        large > small,
        "hJTORA work should grow with N: {small} vs {large}"
    );
}

#[test]
fn greedy_and_local_search_cost_stays_flat_with_subchannels_fig8() {
    // "The average computation time of the LocalSearch and Greedy schemes
    // remains relatively stable ... attributed to their fixed search
    // approach." Greedy's evaluation count is O(prune rounds); local
    // search's is bounded by its fixed proposal budget.
    let base = ExperimentParams::paper_default()
        .with_users(8)
        .with_servers(3);
    let greedy_evals = |n: usize| -> u64 {
        let scenario = ScenarioGenerator::new(base.with_subchannels(n))
            .generate(0)
            .unwrap();
        GreedySolver::new()
            .solve(&scenario)
            .unwrap()
            .stats
            .objective_evaluations
    };
    assert!(greedy_evals(10) <= greedy_evals(2) + 10);

    let ls_evals = |n: usize| -> u64 {
        let scenario = ScenarioGenerator::new(base.with_subchannels(n))
            .generate(0)
            .unwrap();
        LocalSearchSolver::with_seed(0)
            .solve(&scenario)
            .unwrap()
            .stats
            .objective_evaluations
    };
    let budget = mec_baselines::LocalSearchSolver::DEFAULT_MAX_ITERATIONS;
    assert!(ls_evals(2) <= budget && ls_evals(10) <= budget);
}

#[test]
fn more_users_saturate_then_crowd_the_system_fig4() {
    // With capacity S·N = 6 offloading slots, pushing far more users into
    // the network cannot keep raising utility linearly: the per-user
    // average gain falls as contention grows.
    let base = ExperimentParams::paper_default()
        .with_servers(3)
        .with_subchannels(2)
        .with_workload(Cycles::from_mega(2000.0));
    let few = avg_utility(base.with_users(6), 0..3);
    let many = avg_utility(base.with_users(24), 0..3);
    let per_user_few = few / 6.0;
    let per_user_many = many / 24.0;
    assert!(
        per_user_many < per_user_few,
        "per-user utility should fall under contention: {per_user_few:.3} vs {per_user_many:.3}"
    );
}

#[test]
fn interference_limits_subchannel_scaling_fig7() {
    // Splitting 20 MHz into very many subchannels shrinks W = B/N, so with
    // few users the achievable utility eventually drops.
    let base = ExperimentParams::paper_default()
        .with_users(6)
        .with_servers(3);
    let moderate = avg_utility(base.with_subchannels(2), 0..3);
    let excessive = avg_utility(base.with_subchannels(40), 0..3);
    assert!(
        moderate > excessive,
        "excessive subchannels should hurt: {moderate:.3} vs {excessive:.3}"
    );
}
