//! Property-based tests over the core data structures and the objective
//! math, spanning crates.

use proptest::prelude::*;
use tsajs_mec::prelude::*;
use tsajs_mec::radio::compute_sinrs;

/// Strategy: a random scenario geometry with log-uniform channel gains.
fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (2usize..=8, 1usize..=4, 1usize..=4, 0u64..1000).prop_map(|(u, s, n, seed)| {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let gains =
            ChannelGains::from_fn(u, s, n, |_, _, _| 10.0_f64.powf(rng.gen_range(-14.0..-9.0)))
                .unwrap();
        Scenario::new(
            vec![
                mec_system::UserSpec::paper_default_with_workload(Cycles::from_mega(
                    rng.gen_range(500.0..4000.0)
                ))
                .unwrap();
                u
            ],
            vec![ServerProfile::paper_default(); s],
            OfdmaConfig::new(constants::DEFAULT_BANDWIDTH, n).unwrap(),
            gains,
            constants::DEFAULT_NOISE.to_watts(),
        )
        .unwrap()
    })
}

/// Strategy: a random feasible assignment for a scenario.
fn arb_assignment(scenario: &Scenario, seed: u64) -> Assignment {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Assignment::all_local(scenario);
    for u in scenario.user_ids() {
        if rng.gen_bool(0.6) {
            let s = ServerId::new(rng.gen_range(0..scenario.num_servers()));
            if let Some(j) = x.free_subchannel(s) {
                x.assign(u, s, j).unwrap();
            }
        }
    }
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The closed-form objective (Eq. 24) always equals the direct
    /// weighted sum of per-user utilities (Eq. 10/11) under KKT allocation.
    #[test]
    fn closed_form_matches_direct_evaluation(
        scenario in arb_scenario(),
        seed in 0u64..1000,
    ) {
        let x = arb_assignment(&scenario, seed);
        let evaluator = Evaluator::new(&scenario);
        let closed = evaluator.objective(&x);
        let direct = evaluator.evaluate(&x).unwrap().system_utility;
        prop_assert!(
            (closed - direct).abs() < 1e-9 * direct.abs().max(1.0),
            "closed {closed} vs direct {direct}"
        );
    }

    /// The fast O(T·S) SINR computation equals the reference O(T²) one.
    #[test]
    fn fast_sinr_equals_reference(
        scenario in arb_scenario(),
        seed in 0u64..1000,
    ) {
        let x = arb_assignment(&scenario, seed);
        let txs = x.transmissions();
        let fast = Evaluator::new(&scenario).sinrs(&txs);
        let slow = compute_sinrs(
            scenario.gains(),
            scenario.tx_powers_watts(),
            scenario.noise().as_watts(),
            &txs,
        );
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert!((f - s).abs() <= 1e-9 * s.max(1e-300), "{f} vs {s}");
        }
    }

    /// KKT allocation is feasible and exactly exhausts each loaded server.
    #[test]
    fn kkt_allocation_is_feasible_and_tight(
        scenario in arb_scenario(),
        seed in 0u64..1000,
    ) {
        let x = arb_assignment(&scenario, seed);
        let f = mec_system::kkt_allocation(&scenario, &x);
        prop_assert!(f.verify(&scenario, &x).is_ok());
        for s in scenario.server_ids() {
            let users = x.server_users(s);
            if !users.is_empty() {
                let load = f.server_load(s, &x).as_hz();
                let cap = scenario.server(s).capacity().as_hz();
                prop_assert!((load - cap).abs() < cap * 1e-9, "server {s} not exhausted");
            }
        }
    }

    /// KKT is optimal: no other sampled feasible allocation scores a lower
    /// execution cost Σ η/f.
    #[test]
    fn kkt_beats_random_feasible_allocations(
        scenario in arb_scenario(),
        seed in 0u64..1000,
        perturbation in 0.05f64..0.95,
    ) {
        let x = arb_assignment(&scenario, seed);
        let kkt = mec_system::kkt_allocation(&scenario, &x);
        let cost = |shares: &dyn Fn(UserId) -> f64| -> f64 {
            scenario
                .user_ids()
                .filter(|u| x.is_offloaded(*u))
                .map(|u| {
                    let eta = 0.5 * scenario.user(u).device.cpu().as_hz();
                    eta / shares(u)
                })
                .sum()
        };
        let kkt_cost = cost(&|u| kkt.share(u).as_hz());
        // Perturbed allocation: skew shares toward the first user on each
        // server, renormalized to capacity.
        for s in scenario.server_ids() {
            let users = x.server_users(s);
            if users.len() < 2 {
                continue;
            }
            let cap = scenario.server(s).capacity().as_hz();
            let mut shares: Vec<f64> = users
                .iter()
                .map(|u| kkt.share(*u).as_hz())
                .collect();
            shares[0] += perturbation * shares[1];
            shares[1] *= 1.0 - perturbation;
            let total: f64 = shares.iter().sum();
            let scale = cap / total;
            let perturbed_cost: f64 = users
                .iter()
                .zip(&shares)
                .map(|(u, sh)| {
                    let eta = 0.5 * scenario.user(*u).device.cpu().as_hz();
                    eta / (sh * scale)
                })
                .sum();
            let kkt_server_cost: f64 = users
                .iter()
                .map(|u| {
                    let eta = 0.5 * scenario.user(*u).device.cpu().as_hz();
                    eta / kkt.share(*u).as_hz()
                })
                .sum();
            prop_assert!(
                kkt_server_cost <= perturbed_cost + 1e-9 * perturbed_cost.abs(),
                "perturbed allocation beat KKT on server {s}"
            );
        }
        prop_assert!(kkt_cost.is_finite());
    }

    /// Arbitrary sequences of assignment mutations preserve feasibility.
    #[test]
    fn assignment_mutations_preserve_feasibility(
        scenario in arb_scenario(),
        ops in prop::collection::vec((0u8..4, 0usize..8, 0usize..4, 0usize..4), 1..50),
    ) {
        let mut x = Assignment::all_local(&scenario);
        for (op, u, s, j) in ops {
            let u = UserId::new(u % scenario.num_users());
            let s = ServerId::new(s % scenario.num_servers());
            let j = SubchannelId::new(j % scenario.num_subchannels());
            match op {
                0 => { let _ = x.assign(u, s, j); }
                1 => { x.release(u); }
                2 => { let _ = x.move_to(u, s, j); }
                _ => { let _ = x.assign_evicting(u, s, j); }
            }
            x.verify_feasible(&scenario).unwrap();
        }
    }

    /// The TTSA neighborhood kernel only emits feasible decisions, from any
    /// feasible starting point.
    #[test]
    fn ttsa_kernel_closure_over_feasible_space(
        scenario in arb_scenario(),
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let kernel = tsajs::NeighborhoodKernel::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = arb_assignment(&scenario, seed);
        for _ in 0..30 {
            let (next, _) = kernel.propose(&scenario, &x, &mut rng);
            next.verify_feasible(&scenario).unwrap();
            x = next;
        }
    }

    /// After any random sequence of applied (committed) and undone
    /// neighborhood moves, the incremental delta-evaluation state agrees
    /// with the from-scratch reference `objective_with` to 1e-9 relative
    /// tolerance, and undone moves restore the previous value bit-exactly.
    #[test]
    fn incremental_objective_matches_reference(
        scenario in arb_scenario(),
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let kernel = tsajs::NeighborhoodKernel::new();
        let evaluator = Evaluator::new(&scenario);
        let mut scratch = mec_system::EvalScratch::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inc =
            mec_system::IncrementalObjective::new(&scenario, arb_assignment(&scenario, seed))
                .unwrap();
        for step in 0..60 {
            let before = inc.current();
            let (mv, _) = kernel.propose_move(&scenario, inc.assignment(), &mut rng);
            inc.apply(&mv);
            if rng.gen_bool(0.4) {
                inc.undo();
                prop_assert_eq!(
                    inc.current().to_bits(),
                    before.to_bits(),
                    "undo must restore the objective bit-exactly"
                );
            } else {
                inc.commit();
            }
            inc.assignment().verify_feasible(&scenario).unwrap();
            let reference = evaluator.objective_with(inc.assignment(), &mut scratch);
            let current = inc.current();
            prop_assert!(
                (current - reference).abs() <= 1e-9 * reference.abs().max(1.0),
                "step {step}: incremental {current} vs reference {reference}"
            );
        }
        // A resync discards all drift: the state must again match a fresh
        // build of the same decision exactly.
        inc.resync();
        let rebuilt =
            mec_system::IncrementalObjective::new(&scenario, inc.assignment().clone()).unwrap();
        prop_assert_eq!(inc.current().to_bits(), rebuilt.current().to_bits());
    }

    /// The exhaustive optimum dominates TSAJS, and TSAJS dominates the
    /// all-local decision, on any small instance.
    #[test]
    fn optimality_sandwich(seed in 0u64..50) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let (u, s, n) = (rng.gen_range(2..5), rng.gen_range(1..3), rng.gen_range(1..3));
        let gains = ChannelGains::from_fn(u, s, n, |_, _, _| {
            10.0_f64.powf(rng.gen_range(-13.0..-9.0))
        })
        .unwrap();
        let scenario = Scenario::new(
            vec![
                mec_system::UserSpec::paper_default_with_workload(
                    Cycles::from_mega(2000.0)
                ).unwrap();
                u
            ],
            vec![ServerProfile::paper_default(); s],
            OfdmaConfig::new(constants::DEFAULT_BANDWIDTH, n).unwrap(),
            gains,
            constants::DEFAULT_NOISE.to_watts(),
        )
        .unwrap();
        let optimum = ExhaustiveSolver::new().solve(&scenario).unwrap().utility;
        let tsajs = TsajsSolver::new(
            TtsaConfig::paper_default()
                .with_min_temperature(1e-2)
                .with_seed(seed),
        )
        .solve(&scenario)
        .unwrap()
        .utility;
        prop_assert!(tsajs <= optimum + 1e-9);
        prop_assert!(tsajs >= 0.0, "TSAJS should never end below all-local");
        prop_assert!(optimum >= 0.0);
    }
}
