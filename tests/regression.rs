//! Golden regression tests: pin concrete numbers for fixed seeds so that
//! accidental semantic changes to the generator, the objective or the
//! solvers show up as test failures rather than silently shifted
//! experiment results.
//!
//! If one of these fails after an *intentional* model change, update the
//! constants — and say so in the changelog, because every number in
//! EXPERIMENTS.md shifts with them.
//!
//! The golden constants below were re-pinned when the workspace switched to
//! the hermetic `rand` stand-in (third_party/rand): its `StdRng` is
//! xoshiro256++, not upstream's ChaCha12, so every seeded stream — and
//! therefore every generated scenario — changed once. The tests' purpose is
//! unchanged: they pin the *current* streams against accidental drift.

use tsajs_mec::prelude::*;

const TOL: f64 = 1e-9;

fn scenario(seed: u64) -> Scenario {
    let params = ExperimentParams::paper_default()
        .with_users(12)
        .with_workload(Cycles::from_mega(2000.0));
    ScenarioGenerator::new(params).generate(seed).unwrap()
}

#[test]
fn generator_channel_stream_is_pinned() {
    let sc = scenario(42);
    // First gain of the tensor and a couple of spot checks.
    let g0 = sc
        .gains()
        .gain(UserId::new(0), ServerId::new(0), SubchannelId::new(0));
    let g1 = sc
        .gains()
        .gain(UserId::new(11), ServerId::new(8), SubchannelId::new(2));
    // These constants pin the placement + shadowing RNG streams.
    assert!(
        (g0.log10() - (-15.0261401606)).abs() < 1e-6,
        "gain[0,0,0] stream moved: log10 = {}",
        g0.log10()
    );
    assert!(
        (g1.log10() - (-11.6994572267)).abs() < 1e-6,
        "gain[11,8,2] stream moved: log10 = {}",
        g1.log10()
    );
}

#[test]
fn objective_of_a_fixed_decision_is_pinned() {
    let sc = scenario(42);
    let mut x = Assignment::all_local(&sc);
    x.assign(UserId::new(0), ServerId::new(0), SubchannelId::new(0))
        .unwrap();
    x.assign(UserId::new(1), ServerId::new(1), SubchannelId::new(0))
        .unwrap();
    x.assign(UserId::new(2), ServerId::new(1), SubchannelId::new(1))
        .unwrap();
    let j = Evaluator::new(&sc).objective(&x);
    #[allow(clippy::excessive_precision)]
    let expected = -1_168.610_608_514_909_017_7;
    assert!(
        (j - expected).abs() < TOL,
        "objective moved: {j} (expected {expected})"
    );
}

#[test]
fn greedy_decision_is_pinned() {
    let sc = scenario(42);
    let solution = GreedySolver::new().solve(&sc).unwrap();
    #[allow(clippy::excessive_precision)]
    let expected = 4.695_534_489_429_185_5;
    assert!(
        (solution.utility - expected).abs() < TOL,
        "greedy moved: {} (expected {expected})",
        solution.utility
    );
    assert_eq!(solution.assignment.num_offloaded(), 6);
}

#[test]
fn tsajs_quick_run_is_pinned() {
    let sc = scenario(42);
    let mut solver = TsajsSolver::new(
        TtsaConfig::paper_default()
            .with_min_temperature(1e-2)
            .with_seed(7),
    );
    let solution = solver.solve(&sc).unwrap();
    #[allow(clippy::excessive_precision)]
    let expected = 4.726_605_895_889_409_0;
    assert!(
        (solution.utility - expected).abs() < TOL,
        "tsajs moved: {} (expected {expected})",
        solution.utility
    );
}

/// End-to-end pins for the full TTSA solver on three independent seeds,
/// covering both the scenario-generation streams and the annealing
/// trajectory on the incremental delta-evaluation path. A change anywhere
/// in the proposal kernel, the move application, or the resync cadence
/// that alters even one accept/reject decision will move these numbers.
#[test]
fn tsajs_seeded_runs_are_pinned() {
    #[allow(clippy::excessive_precision)]
    let pins: [(u64, f64, usize); 3] = [
        (11, 2.910_692_976_762_531_36, 5),
        (23, 3.170_043_817_936_574_19, 5),
        (47, 3.085_438_688_196_053_38, 7),
    ];
    for (seed, expected, offloaded) in pins {
        let sc = scenario(seed);
        let mut solver = TsajsSolver::new(
            TtsaConfig::paper_default()
                .with_min_temperature(1e-2)
                .with_seed(seed),
        );
        let solution = solver.solve(&sc).unwrap();
        assert!(
            (solution.utility - expected).abs() < TOL,
            "tsajs seed {seed} moved: {} (expected {expected})",
            solution.utility
        );
        assert_eq!(
            solution.assignment.num_offloaded(),
            offloaded,
            "tsajs seed {seed} offload count moved"
        );
    }
}

/// Pins for the two strongest baselines on the paper's confined Fig. 3
/// instance (`small_network()`: U = 6, S = 4, N = 2), alongside the TSAJS
/// pins above. The exhaustive numbers double as certified optima for
/// these seeds: any solver pin drifting *above* them is a bug, not an
/// improvement. hJTORA matches the optimum on all three seeds here (up
/// to FP accumulation order), which is exactly the paper's observation
/// that it is near-optimal on small instances.
#[test]
fn hjtora_and_exhaustive_confined_runs_are_pinned() {
    #[allow(clippy::excessive_precision)]
    let pins: [(u64, f64, f64, usize); 3] = [
        (11, 1.916_874_238_863_748_97, 1.916_874_238_863_748_75, 3),
        (23, 1.122_051_157_391_689_15, 1.122_051_157_391_689_15, 2),
        (47, 1.390_320_506_290_535_50, 1.390_320_506_290_535_50, 2),
    ];
    for (seed, hjtora_pin, exhaustive_pin, offloaded) in pins {
        let sc = ScenarioGenerator::new(ExperimentParams::small_network())
            .generate(seed)
            .unwrap();
        let h = HJtoraSolver::new().solve(&sc).unwrap();
        let e = ExhaustiveSolver::new().solve(&sc).unwrap();
        assert!(
            (h.utility - hjtora_pin).abs() < TOL,
            "hjtora seed {seed} moved: {} (expected {hjtora_pin})",
            h.utility
        );
        assert!(
            (e.utility - exhaustive_pin).abs() < TOL,
            "exhaustive seed {seed} moved: {} (expected {exhaustive_pin})",
            e.utility
        );
        assert_eq!(h.assignment.num_offloaded(), offloaded, "seed {seed}");
        assert_eq!(e.assignment.num_offloaded(), offloaded, "seed {seed}");
        // The exhaustive result is the certified optimum.
        assert!(
            h.utility <= e.utility + TOL,
            "seed {seed}: hjtora {} beats the exhaustive optimum {}",
            h.utility,
            e.utility
        );
    }
}
