//! Golden regression tests: pin concrete numbers for fixed seeds so that
//! accidental semantic changes to the generator, the objective or the
//! solvers show up as test failures rather than silently shifted
//! experiment results.
//!
//! If one of these fails after an *intentional* model change, update the
//! constants — and say so in the changelog, because every number in
//! EXPERIMENTS.md shifts with them.

use tsajs_mec::prelude::*;

const TOL: f64 = 1e-9;

fn scenario(seed: u64) -> Scenario {
    let params = ExperimentParams::paper_default()
        .with_users(12)
        .with_workload(Cycles::from_mega(2000.0));
    ScenarioGenerator::new(params).generate(seed).unwrap()
}

#[test]
fn generator_channel_stream_is_pinned() {
    let sc = scenario(42);
    // First gain of the tensor and a couple of spot checks.
    let g0 = sc
        .gains()
        .gain(UserId::new(0), ServerId::new(0), SubchannelId::new(0));
    let g1 = sc
        .gains()
        .gain(UserId::new(11), ServerId::new(8), SubchannelId::new(2));
    // These constants pin the placement + shadowing RNG streams.
    assert!(
        (g0.log10() - (-13.3818161366)).abs() < 1e-6,
        "gain[0,0,0] stream moved: log10 = {}",
        g0.log10()
    );
    assert!(
        (g1.log10() - (-16.9710793577)).abs() < 1e-6,
        "gain[11,8,2] stream moved: log10 = {}",
        g1.log10()
    );
}

#[test]
fn objective_of_a_fixed_decision_is_pinned() {
    let sc = scenario(42);
    let mut x = Assignment::all_local(&sc);
    x.assign(UserId::new(0), ServerId::new(0), SubchannelId::new(0))
        .unwrap();
    x.assign(UserId::new(1), ServerId::new(1), SubchannelId::new(0))
        .unwrap();
    x.assign(UserId::new(2), ServerId::new(1), SubchannelId::new(1))
        .unwrap();
    let j = Evaluator::new(&sc).objective(&x);
    #[allow(clippy::excessive_precision)]
    let expected = -21.114_946_092_927_901_6;
    assert!(
        (j - expected).abs() < TOL,
        "objective moved: {j} (expected {expected})"
    );
}

#[test]
fn greedy_decision_is_pinned() {
    let sc = scenario(42);
    let solution = GreedySolver::new().solve(&sc).unwrap();
    let expected = 2.051_803_601_834_282;
    assert!(
        (solution.utility - expected).abs() < TOL,
        "greedy moved: {} (expected {expected})",
        solution.utility
    );
    assert_eq!(solution.assignment.num_offloaded(), 3);
}

#[test]
fn tsajs_quick_run_is_pinned() {
    let sc = scenario(42);
    let mut solver = TsajsSolver::new(
        TtsaConfig::paper_default()
            .with_min_temperature(1e-2)
            .with_seed(7),
    );
    let solution = solver.solve(&sc).unwrap();
    let expected = 2.051_803_601_834_282;
    assert!(
        (solution.utility - expected).abs() < TOL,
        "tsajs moved: {} (expected {expected})",
        solution.utility
    );
}
