//! Property-based tests for the sharded engine's decomposition layer:
//! the seeded partitioner, the halo (cross-cluster per-`(subchannel,
//! server)` power totals) accounting, and worker-count independence.
//!
//! These are the trust anchors of `--solver shard`: if every entity lands
//! in exactly one cluster, the halos always re-derive from a fresh global
//! recomputation, and the result is bit-identical at any pool width, then
//! the decomposition can only differ from the monolith through search
//! quality — never through physics.

use proptest::prelude::*;
use tsajs::shard::{cluster_external, halo_totals, solve_sharded, Partition, ShardRun};
use tsajs::{ShardConfig, TemperingConfig, TtsaConfig};
use tsajs_mec::prelude::*;

/// Strategy: a random scenario geometry with log-uniform shared-layout
/// gains (the city-scale storage path) and mildly skewed workloads.
fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (4usize..=10, 2usize..=6, 1usize..=3, 0u64..1000).prop_map(|(u, s, n, seed)| {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut draws = vec![0.0f64; u * s];
        for g in draws.iter_mut() {
            *g = 10.0_f64.powf(rng.gen_range(-13.0..-9.0));
        }
        let gains =
            ChannelGains::shared_from_fn(u, s, n, |uu, ss| draws[uu.index() * s + ss.index()])
                .unwrap();
        Scenario::new(
            vec![
                mec_system::UserSpec::paper_default_with_workload(Cycles::from_mega(
                    rng.gen_range(500.0..4000.0)
                ))
                .unwrap();
                u
            ],
            vec![ServerProfile::paper_default(); s],
            OfdmaConfig::new(constants::DEFAULT_BANDWIDTH, n).unwrap(),
            gains,
            constants::DEFAULT_NOISE.to_watts(),
        )
        .unwrap()
    })
}

/// A shard configuration small enough for property-sized instances.
fn quick_shard(seed: u64, cluster_size: usize) -> ShardConfig {
    ShardConfig::paper_default()
        .with_seed(seed)
        .with_cluster_size(cluster_size)
        .with_max_sweeps(4)
        .with_ttsa(TtsaConfig::paper_default().with_min_temperature(1e-1))
        .with_tempering(
            TemperingConfig::paper_default()
                .with_replicas(2)
                .with_rounds(2),
        )
}

/// Fresh recomputation of the halo contribution of one cluster's users.
fn own_contribution(
    scenario: &Scenario,
    partition: &Partition,
    c: usize,
    x: &Assignment,
) -> Vec<f64> {
    let s_count = scenario.num_servers();
    let powers = scenario.tx_powers_watts();
    let mut totals = vec![0.0; scenario.num_subchannels() * s_count];
    for (u, _s, j) in x.offloaded() {
        if partition.cluster_of_user(u) != c {
            continue;
        }
        for s in scenario.server_ids() {
            totals[j.index() * s_count + s.index()] +=
                powers[u.index()] * scenario.gains().gain(u, s, j);
        }
    }
    totals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every server and every user belongs to exactly one cluster, and no
    /// cluster exceeds the configured size.
    #[test]
    fn partition_is_an_exact_cover(
        scenario in arb_scenario(),
        cluster_size in 1usize..=4,
        seed in 0u64..1000,
    ) {
        let p = Partition::build(&scenario, cluster_size, seed).unwrap();
        let mut server_seen = vec![0usize; scenario.num_servers()];
        let mut user_seen = vec![0usize; scenario.num_users()];
        for (c, members) in p.clusters().iter().enumerate() {
            prop_assert!(members.servers.len() <= cluster_size);
            for &s in &members.servers {
                server_seen[s.index()] += 1;
                prop_assert_eq!(p.cluster_of_server(s), c);
            }
            for &u in &members.users {
                user_seen[u.index()] += 1;
                prop_assert_eq!(p.cluster_of_user(u), c);
            }
        }
        prop_assert!(server_seen.iter().all(|&n| n == 1), "servers covered once");
        prop_assert!(user_seen.iter().all(|&n| n == 1), "users covered once");
        // The partition is a pure function of (geometry, size, seed).
        prop_assert_eq!(&p, &Partition::build(&scenario, cluster_size, seed).unwrap());
    }

    /// After every Gauss–Seidel sweep, the halo each cluster saw plus the
    /// contribution its own users emit re-derives the global totals of a
    /// fresh recomputation, per (subchannel, server) entry.
    #[test]
    fn halos_rederive_from_fresh_global_recomputation(
        scenario in arb_scenario(),
        seed in 0u64..1000,
    ) {
        let cfg = quick_shard(seed, 2);
        let mut run = ShardRun::new(&scenario, cfg, 1).unwrap();
        for _ in 0..cfg.max_sweeps {
            let changed = run.sweep().unwrap();
            let totals = halo_totals(&scenario, run.assignment());
            for c in 0..run.partition().num_clusters() {
                let ext = cluster_external(&scenario, run.partition(), c, run.assignment());
                let own = own_contribution(&scenario, run.partition(), c, run.assignment());
                for ((t, e), o) in totals.iter().zip(ext.iter()).zip(own.iter()) {
                    prop_assert!(
                        (t - (e + o)).abs() <= 1e-12 * t.abs().max(1e-300),
                        "halo accounting broke: total {t} vs external {e} + own {o}"
                    );
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Same seed + same cluster size ⇒ bit-identical outcome at 1, 2 and
    /// 8 workers: the pool only changes when a cluster is solved, never
    /// what it computes.
    #[test]
    fn shard_solve_is_bit_identical_across_worker_counts(
        scenario in arb_scenario(),
        seed in 0u64..1000,
    ) {
        let cfg = quick_shard(seed, 2);
        let base = solve_sharded(&scenario, &cfg, 1).unwrap();
        base.assignment.verify_feasible(&scenario).unwrap();
        prop_assert!(base.halo_residual <= 1e-9, "residual {}", base.halo_residual);
        for workers in [2usize, 8] {
            let other = solve_sharded(&scenario, &cfg, workers).unwrap();
            prop_assert_eq!(&base.assignment, &other.assignment, "workers {}", workers);
            prop_assert_eq!(base.objective.to_bits(), other.objective.to_bits());
            prop_assert_eq!(base.proposals, other.proposals);
            prop_assert_eq!(base.sweeps, other.sweeps);
        }
    }
}
