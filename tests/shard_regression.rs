//! Golden determinism pins for the sharded city-scale solver, following
//! the pinning pattern of `tests/regression.rs`: concrete utilities for
//! fixed seeds, so any accidental change to the partitioner, the
//! per-cluster search streams, the halo accounting, or the reconciliation
//! descent shows up as a test failure rather than silently shifted
//! experiment results.
//!
//! If one of these fails after an *intentional* model change, update the
//! constants — and say so in the changelog, because `BENCH_shard.json`
//! and the EXPERIMENTS.md shard table shift with them.
//!
//! Changelog: with the pipelined Jacobi-with-aging reconciler landing as
//! the default (`Reconcile::Pipelined`), the original Gauss–Seidel pins
//! are kept verbatim under an explicit `.with_reconcile(Sequential)` and
//! a second pin set covers the pipelined default. The U = 10 000 run is
//! bit-identical under both reconcilers (the proposal-budgeted cold
//! solves converge before sweep order matters), so that pin is unchanged.

use tsajs::{Reconcile, TemperingConfig};
use tsajs_mec::prelude::*;

const TOL: f64 = 1e-9;

fn quick_shard(seed: u64) -> ShardConfig {
    ShardConfig::paper_default()
        .with_seed(seed)
        .with_cluster_size(3)
        .with_ttsa(TtsaConfig::paper_default().with_min_temperature(1e-2))
}

/// End-to-end pins for the sharded solver on three independent seeds at
/// U = 90 (the paper's dense regime, 3 clusters of 3 servers): covers
/// the partition rotation, each cluster's tempered stream, the halo
/// reconciliation sweeps in both modes, and the monolithic re-score.
#[test]
fn shard_seeded_runs_are_pinned() {
    // (seed, sequential utility, pipelined utility, offloaded) — the
    // offload count happens to agree between modes on all three seeds.
    #[allow(clippy::excessive_precision)]
    let pins: [(u64, f64, f64, usize); 3] = [
        (11, 19.491_944_321_857_239_69, 19.502_865_325_773_498_74, 26),
        (23, 15.731_608_454_524_694_81, 15.724_348_432_938_290_54, 22),
        (47, 18.796_525_103_210_719_01, 18.795_061_863_959_809_05, 26),
    ];
    for (seed, sequential, pipelined, offloaded) in pins {
        for (mode, expected) in [
            (Reconcile::Sequential, sequential),
            (Reconcile::Pipelined, pipelined),
        ] {
            run_pin(seed, mode, expected, offloaded);
        }
    }
}

fn run_pin(seed: u64, mode: Reconcile, expected: f64, offloaded: usize) {
    {
        let params = ExperimentParams::paper_default()
            .with_users(90)
            .with_workload(Cycles::from_mega(2000.0));
        let sc = ScenarioGenerator::new(params).generate(seed).unwrap();
        let mut solver = ShardSolver::new(quick_shard(seed).with_reconcile(mode));
        let solution = solver.solve(&sc).unwrap();
        assert!(
            (solution.utility - expected).abs() < TOL,
            "shard seed {seed} ({mode:?}) moved: {} (expected {expected})",
            solution.utility
        );
        assert_eq!(
            solution.assignment.num_offloaded(),
            offloaded,
            "shard seed {seed} ({mode:?}) offload count moved"
        );
        solution.assignment.verify_feasible(&sc).unwrap();
        let stats = solver.last_stats().expect("stats recorded");
        assert_eq!(stats.clusters, 3, "seed {seed} cluster count moved");
        assert!(
            stats.halo_residual <= TOL,
            "seed {seed} ({mode:?}) halo accounting broke: {}",
            stats.halo_residual
        );
        // The reported utility is the monolithic resync, bit for bit.
        let recomputed = Evaluator::new(&sc).objective(&solution.assignment);
        assert!(
            (solution.utility - recomputed).abs() <= TOL * recomputed.abs().max(1.0),
            "seed {seed} ({mode:?}): reported {} vs monolithic {recomputed}",
            solution.utility
        );
    }
}

/// One large-population pin (U = 10 000 on the paper's 9-server layout):
/// exercises the shared-gain storage path, the strongest-server user
/// attachment at scale, and the anytime budgets, while staying fast
/// enough for every CI run (the cold solves are proposal-budgeted).
#[test]
fn shard_large_population_run_is_pinned() {
    let params = ExperimentParams::paper_default()
        .with_users(10_000)
        .with_workload(Cycles::from_mega(2000.0));
    let sc = ScenarioGenerator::new(params).generate(11).unwrap();
    assert!(
        sc.gains().is_subchannel_shared(),
        "the generator must produce the shared (blocked) gain layout"
    );
    let cfg = ShardConfig::paper_default()
        .with_seed(11)
        .with_cluster_size(3)
        .with_max_sweeps(3)
        .with_descent_budget(100_000)
        .with_ttsa(
            TtsaConfig::paper_default()
                .with_min_temperature(1e-2)
                .with_proposal_budget(5_000),
        )
        .with_tempering(TemperingConfig::paper_default().with_replicas(4));
    let mut solver = ShardSolver::new(cfg);
    let solution = solver.solve(&sc).unwrap();
    #[allow(clippy::excessive_precision)]
    let expected = 24.670_116_905_935_735_47;
    assert!(
        (solution.utility - expected).abs() < TOL,
        "shard U=10k moved: {} (expected {expected})",
        solution.utility
    );
    assert_eq!(solution.assignment.num_offloaded(), 27);
    solution.assignment.verify_feasible(&sc).unwrap();
    let stats = solver.last_stats().expect("stats recorded");
    assert!(stats.halo_residual <= TOL);
}
