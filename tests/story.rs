//! A full "day in the life" integration test: generate a network, persist
//! it as a spec, schedule it through the C-RAN controller service, certify
//! the result against the upper bound, render it to SVG, then follow the
//! users through a mobility episode with incremental re-scheduling.

use rand::SeedableRng;
use tsajs_mec::baselines::upper_bound;
use tsajs_mec::controller::{SchedulerService, SchemeChoice};
use tsajs_mec::mobility::{DynamicSimulation, MobilityConfig};
use tsajs_mec::prelude::*;
use tsajs_mec::system::ScenarioSpec;
use tsajs_mec::topology::place_users_uniform;
use tsajs_mec::viz::SvgScene;

#[test]
fn end_to_end_story() {
    // 1. Build the network and keep the user positions for rendering.
    let params = ExperimentParams::paper_default()
        .with_users(14)
        .with_workload(Cycles::from_mega(2000.0));
    let generator = ScenarioGenerator::new(params);
    let layout = generator.layout().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let positions = place_users_uniform(&layout, 14, &mut rng);
    let scenario = generator.generate_at(&positions, 77).unwrap();

    // 2. Persist and reload through the spec — the reloaded instance must
    //    behave identically.
    let spec = ScenarioSpec::from_scenario(&scenario);
    let reloaded = spec.into_scenario().unwrap();
    assert_eq!(reloaded.gains(), scenario.gains());

    // 3. Schedule through the controller service.
    let service = SchedulerService::spawn();
    let response = service
        .schedule(reloaded, SchemeChoice::TsajsQuick, 77)
        .unwrap();
    let solution = &response.solution;
    solution.assignment.verify_feasible(&scenario).unwrap();

    // 4. Certify against the interference-free bound.
    let bound = upper_bound(&scenario);
    assert!(bound.assignment_bound >= solution.utility - 1e-9);
    let quality = bound.quality(solution.utility);
    assert!(
        quality > 0.5,
        "certified quality suspiciously low: {quality}"
    );

    // 5. Render the schedule.
    let svg = SvgScene::new(&layout)
        .with_users(&positions)
        .with_assignment(&solution.assignment)
        .render();
    assert!(svg.contains("<polygon"));
    assert_eq!(
        svg.matches("<line").count(),
        solution.assignment.num_offloaded(),
        "one link per offloaded user"
    );

    // 6. Mobility episode with incremental re-scheduling.
    let mut sim = DynamicSimulation::new(params, MobilityConfig::vehicular(), 77).unwrap();
    let base = TtsaConfig::paper_default().with_min_temperature(1e-3);
    let history = sim.run_incremental(4, base, 150).unwrap();
    assert_eq!(history.epochs.len(), 4);
    assert!(history.average_utility().is_finite());
    // Refresh epochs stay within their budget (rounded up to an epoch).
    for e in &history.epochs[1..] {
        assert!(e.proposals <= 150 + base.inner_iterations as u64);
    }

    service.shutdown();
}
