//! Hermetic in-tree stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate, providing exactly
//! the API surface this workspace's `harness = false` benches use:
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: per benchmark, a short calibration pass picks an
//! iteration count targeting ~40 ms per sample, then `sample_size` samples
//! are timed and the median per-iteration time is reported as
//! `name/id time: [… …]` on stdout — enough to compare hot paths in this
//! repository, without the real crate's statistical machinery.
//!
//! When invoked with `--test` (which is how `cargo test` drives
//! `harness = false` bench targets), every closure runs exactly once and
//! nothing is measured, keeping the tier-1 test suite fast.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample time budget for calibration (not configurable; the real
/// crate's warm-up/measurement times are likewise seconds-scale).
const SAMPLE_BUDGET: Duration = Duration::from_millis(40);

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench binaries with `--test`;
        // `cargo bench` passes `--bench`. Anything else (e.g. a filter
        // string) is ignored.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.test_mode, 20, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.test_mode, self.sample_size, f);
        self
    }

    /// Benchmarks a closure with an explicit input under
    /// `group/function/parameter`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.test_mode, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalizes reports here; the stand-in prints
    /// per-benchmark lines eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter display value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds a bare parameter id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call, if measured.
    result_ns: Option<f64>,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibrate: find an iteration count filling the sample budget.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_BUDGET / 2 || iters >= 1 << 40 {
                break;
            }
            // Grow toward the budget, at most 16x at a time to limit
            // overshoot from timer noise at tiny durations.
            let grow = if elapsed.as_nanos() == 0 {
                16
            } else {
                (SAMPLE_BUDGET.as_nanos() / elapsed.as_nanos()).clamp(2, 16) as u64
            };
            iters = iters.saturating_mul(grow);
        }
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = Some(samples[samples.len() / 2]);
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, test_mode: bool, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        test_mode,
        sample_size,
        result_ns: None,
    };
    f(&mut bencher);
    if test_mode {
        return;
    }
    match bencher.result_ns {
        Some(ns) => println!("{label:<50} time: [{}]", format_ns(ns)),
        None => println!("{label:<50} (no measurement: closure never called iter)"),
    }
}

/// Declares a function running a list of benchmark functions, mirroring the
/// real crate's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_compose() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn test_mode_runs_closure_once() {
        let mut count = 0;
        let mut bencher = Bencher {
            test_mode: true,
            sample_size: 10,
            result_ns: None,
        };
        bencher.iter(|| count += 1);
        assert_eq!(count, 1);
        assert!(bencher.result_ns.is_none());
    }

    #[test]
    fn measurement_mode_reports_a_time() {
        let mut bencher = Bencher {
            test_mode: false,
            sample_size: 3,
            result_ns: None,
        };
        bencher.iter(|| black_box(2u64.wrapping_mul(3)));
        assert!(bencher.result_ns.is_some());
        assert!(bencher.result_ns.unwrap() >= 0.0);
    }
}
