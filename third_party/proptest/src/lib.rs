//! Hermetic in-tree stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, providing exactly
//! the API surface this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, range and tuple strategies,
//! `prop_map`, `prop::collection::vec`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports its inputs via the panic
//!   message (every generated binding is `Debug`-formatted by `prop_assert!`
//!   call sites where needed) but is not minimized.
//! - **Deterministic seeding.** Each test function derives its RNG seed from
//!   its own name, so failures reproduce exactly on re-run; there is no
//!   failure-persistence file.

#![forbid(unsafe_code)]

/// Runtime pieces: configuration and the generator RNG.
pub mod test_runner {
    /// Subset of the real `ProptestConfig`: the number of generated cases.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 256 cases, overridable through the `PROPTEST_CASES`
        /// environment variable (mirroring the real crate): tests that
        /// use the default config scale up in deep/nightly sweeps, while
        /// explicit `with_cases` call sites stay pinned.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.trim().parse::<u32>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// The deterministic generator RNG handed to strategies
    /// (SplitMix64-seeded xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds the RNG for a named test; the same name always produces
        /// the same stream.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut s = [0u64; 4];
            for word in &mut s {
                h = h.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                *word = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values (no shrinking in this
    /// stand-in).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    if start == <$t>::MIN && end == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = end.abs_diff(start) as u64 + 1;
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    start + (rng.unit_f64() as $t) * (end - start)
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    impl Strategy for Range<char> {
        type Value = char;

        fn generate(&self, rng: &mut TestRng) -> char {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end as u64 - self.start as u64;
            loop {
                let code = self.start as u64 + rng.below(span);
                if let Some(c) = char::from_u32(code as u32) {
                    return c;
                }
            }
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with per-element strategy `element` and a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Alias so call sites can write `prop::collection::vec(...)`.
    pub use crate as prop;
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the same surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     fn my_property(x in 0u64..100, (a, b) in (0f64..1.0, 0f64..1.0)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident
        ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _ in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, reporting the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn ranges_hold(x in 5u32..10, y in -3i32..=3, z in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..=3).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        fn tuples_and_maps_compose(
            (a, b) in (1usize..4, 10u64..20),
            s in (0u8..3).prop_map(|v| v * 2),
            items in prop::collection::vec((0usize..5, 0.0f64..1.0), 1..8),
        ) {
            prop_assert!((1..4).contains(&a));
            prop_assert!((10..20).contains(&b));
            prop_assert!(s % 2 == 0 && s <= 4);
            prop_assert!(!items.is_empty() && items.len() < 8);
            for (idx, frac) in items {
                prop_assert!(idx < 5);
                prop_assert!((0.0..1.0).contains(&frac));
            }
        }
    }

    #[test]
    fn deterministic_rng_repeats() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
