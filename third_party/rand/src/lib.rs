//! Hermetic in-tree stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, providing exactly the API surface this workspace uses.
//!
//! The build environment has no network access and no vendored registry, so
//! the real crate cannot be fetched. This stand-in implements the same
//! interface (`Rng`, `RngCore`, `SeedableRng`, `rngs::StdRng`) on top of
//! xoshiro256++, a small, high-quality, public-domain PRNG. Seeded streams
//! are deterministic and stable across runs and platforms, which is all the
//! workspace relies on; they are *not* bit-identical to the real `StdRng`
//! (ChaCha12) streams, and no test in this repository assumes they are.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A distribution that can produce a uniformly random `Self` from an RNG —
/// the stand-in for sampling `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

macro_rules! standard_small_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_small_int!(u8, u16, i8, i16, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches the real
    /// crate's `Standard` distribution for `f64`).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly — the stand-in for
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return <$t>::sample_standard(rng);
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}
uint_range_impl!(u8, u16, u32, u64, usize);

macro_rules! int_range_impl {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as $u).wrapping_add(hi as $u) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return <$t>::sample_standard(rng);
                }
                let span = (end as $u).wrapping_sub(start as $u) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (start as $u).wrapping_add(hi as $u) as $t
            }
        }
    )*};
}
int_range_impl!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
float_range_impl!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (kept for signature compatibility).
    type Seed;

    /// Builds a generator from a byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256++.
    ///
    /// Deterministic per seed; not reproducing the real crate's ChaCha12
    /// stream (nothing in this workspace depends on those exact bits).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = Self::splitmix64(&mut state);
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_respected_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
        for _ in 0..1000 {
            let x = rng.gen_range(-5.0..10.0);
            assert!((-5.0..10.0).contains(&x));
            let y = rng.gen_range(1..=6);
            assert!((1..=6).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }
}
