//! Hermetic in-tree stand-in for the [`serde`](https://crates.io/crates/serde)
//! crate, providing exactly the API surface this workspace uses.
//!
//! The build environment has no network access and no vendored registry, so
//! the real crate cannot be fetched. The real serde data model (29 types,
//! visitor-driven) is far larger than this workspace needs; instead, this
//! stand-in routes every value through a single self-describing [`Content`]
//! tree. `Serialize`/`Deserialize` keep their real signatures (generic over
//! `Serializer`/`Deserializer` with associated error types), so the manual
//! impls in `mec-system` and the derived impls compile unchanged; only the
//! internals of the traits differ from upstream.

#![forbid(unsafe_code)]

use std::fmt::Display;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The single self-describing data-model node every value serializes into.
///
/// This replaces the real serde's 29-type data model: integers normalize to
/// `U64`/`I64`, every float to `F64`, structs and maps to `Map` (ordered, to
/// keep output deterministic), sequences and tuples to `Seq`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always `< 0`; non-negative ints normalize to `U64`).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence, tuple, or tuple struct.
    Seq(Vec<Content>),
    /// Struct, map, or externally-tagged enum variant (insertion-ordered).
    Map(Vec<(String, Content)>),
}

impl Content {
    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Serialization error support.
pub mod ser {
    use std::fmt::Display;

    /// Trait every serializer error type implements (mirrors
    /// `serde::ser::Error`).
    pub trait Error: Sized {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization error support.
pub mod de {
    use std::fmt::Display;

    /// Trait every deserializer error type implements (mirrors
    /// `serde::de::Error`).
    pub trait Error: Sized {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A data format that can consume one [`Content`] tree.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Consumes the fully-built content tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}

/// A data format that can produce one [`Content`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Produces the content tree for the value being deserialized.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// A type that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Error type for in-memory [`Content`] conversion.
#[derive(Debug, Clone)]
pub struct ContentError(String);

impl Display for ContentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContentError {}

impl ser::Error for ContentError {
    fn custom<T: Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

impl de::Error for ContentError {
    fn custom<T: Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

/// Serializer that materializes the [`Content`] tree itself.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = ContentError;

    fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
        Ok(content)
    }
}

/// Deserializer that reads back from an in-memory [`Content`] tree.
pub struct ContentDeserializer(pub Content);

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = ContentError;

    fn deserialize_content(self) -> Result<Content, ContentError> {
        Ok(self.0)
    }
}

/// Support functions referenced by `serde_derive`-generated code. Not part
/// of the public stand-in API.
pub mod __private {
    use super::{Content, ContentDeserializer, ContentError, ContentSerializer};

    /// Serializes any value to its content tree.
    pub fn to_content<T: super::Serialize + ?Sized>(value: &T) -> Result<Content, ContentError> {
        value.serialize(ContentSerializer)
    }

    /// Deserializes any value from a content tree.
    pub fn from_content<T: for<'de> super::Deserialize<'de>>(
        content: Content,
    ) -> Result<T, ContentError> {
        T::deserialize(ContentDeserializer(content))
    }

    /// Removes and returns the first entry with the given key.
    pub fn take_entry(map: &mut Vec<(String, Content)>, key: &str) -> Option<Content> {
        let idx = map.iter().position(|(k, _)| k == key)?;
        Some(map.remove(idx).1)
    }
}

fn de_err<T, E: de::Error>(expected: &str, got: &Content) -> Result<T, E> {
    Err(E::custom(format!("expected {expected}, found {}", got.kind())))
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::U64(*self as u64))
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                serializer.serialize_content(if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                })
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::F64(*self as f64))
            }
        }
    )*};
}
serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.clone()))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_string()))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Null)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_content(Content::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

fn seq_to_content<T: Serialize, E: ser::Error>(items: &[T]) -> Result<Content, E> {
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        out.push(__private::to_content(item).map_err(E::custom)?);
    }
    Ok(Content::Seq(out))
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let content = seq_to_content(self)?;
        serializer.serialize_content(content)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let content = seq_to_content(self.as_slice())?;
        serializer.serialize_content(content)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let content = Content::Seq(vec![
                    $(__private::to_content(&self.$idx).map_err(<S::Error as ser::Error>::custom)?),+
                ]);
                serializer.serialize_content(content)
            }
        }
    )*};
}
serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(b) => Ok(b),
            other => de_err("bool", &other),
        }
    }
}

macro_rules! deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let wide = match content {
                    Content::U64(v) => Some(v),
                    // Floats with an exact integer value are accepted so a
                    // format that only has one number type can round-trip.
                    Content::F64(v) if v >= 0.0 && v <= u64::MAX as f64 && v.fract() == 0.0 => {
                        Some(v as u64)
                    }
                    ref other => return de_err(concat!("unsigned integer (", stringify!($t), ")"), other),
                };
                match wide.and_then(|v| <$t>::try_from(v).ok()) {
                    Some(v) => Ok(v),
                    None => Err(<D::Error as de::Error>::custom(concat!(
                        "integer out of range for ", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let wide: Option<i64> = match content {
                    Content::U64(v) => i64::try_from(v).ok(),
                    Content::I64(v) => Some(v),
                    Content::F64(v)
                        if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
                    {
                        Some(v as i64)
                    }
                    ref other => return de_err(concat!("integer (", stringify!($t), ")"), other),
                };
                match wide.and_then(|v| <$t>::try_from(v).ok()) {
                    Some(v) => Ok(v),
                    None => Err(<D::Error as de::Error>::custom(concat!(
                        "integer out of range for ", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize);

macro_rules! deserialize_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::F64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    // JSON has no non-finite literals; they serialize as null.
                    Content::Null => Ok(<$t>::NAN),
                    other => de_err("float", &other),
                }
            }
        }
    )*};
}
deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => de_err("string", &other),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => de_err("single-character string", &other),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(()),
            other => de_err("null", &other),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            content => __private::from_content(content)
                .map(Some)
                .map_err(<D::Error as de::Error>::custom),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|item| __private::from_content(item).map_err(<D::Error as de::Error>::custom))
                .collect(),
            other => de_err("sequence", &other),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal: $($name:ident),+))*) => {$(
        impl<'de, $($name: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                let items = match deserializer.deserialize_content()? {
                    Content::Seq(items) => items,
                    other => return de_err("tuple sequence", &other),
                };
                if items.len() != $len {
                    return Err(<__D::Error as de::Error>::custom(format!(
                        "expected tuple of length {}, found {}", $len, items.len()
                    )));
                }
                let mut iter = items.into_iter();
                Ok(($(
                    __private::from_content::<$name>(iter.next().unwrap())
                        .map_err(<__D::Error as de::Error>::custom)?,
                )+))
            }
        }
    )*};
}
deserialize_tuple! {
    (1: A)
    (2: A, B)
    (3: A, B, C)
    (4: A, B, C, D)
    (5: A, B, C, D, E)
    (6: A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_content() {
        let c = __private::to_content(&42u32).unwrap();
        assert_eq!(c, Content::U64(42));
        assert_eq!(__private::from_content::<u32>(c).unwrap(), 42);

        let c = __private::to_content(&-7i32).unwrap();
        assert_eq!(c, Content::I64(-7));
        assert_eq!(__private::from_content::<i32>(c).unwrap(), -7);

        let c = __private::to_content(&1.5f64).unwrap();
        assert_eq!(__private::from_content::<f64>(c).unwrap(), 1.5);

        let v = vec![Some((1usize, -2.5f64)), None];
        let c = __private::to_content(&v).unwrap();
        assert_eq!(
            __private::from_content::<Vec<Option<(usize, f64)>>>(c).unwrap(),
            v
        );
    }

    #[test]
    fn integral_floats_deserialize_into_ints_and_back() {
        assert_eq!(__private::from_content::<u64>(Content::F64(3.0)).unwrap(), 3);
        assert!(__private::from_content::<u64>(Content::F64(3.5)).is_err());
        assert_eq!(
            __private::from_content::<f64>(Content::U64(3)).unwrap(),
            3.0
        );
        assert!(__private::from_content::<f64>(Content::Null)
            .unwrap()
            .is_nan());
    }

    #[test]
    fn out_of_range_integers_are_rejected() {
        assert!(__private::from_content::<u8>(Content::U64(300)).is_err());
        assert!(__private::from_content::<u32>(Content::I64(-1)).is_err());
    }
}
