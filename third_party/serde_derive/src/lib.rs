//! Hermetic in-tree stand-in for the `serde_derive` proc-macro crate.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! stand-in `serde`'s [`Content`]-based data model, without `syn`/`quote`
//! (which are equally unfetchable in this offline environment): the item is
//! parsed directly from `proc_macro::TokenStream` and the impl is emitted as
//! a source string.
//!
//! Supported shapes — exactly what this workspace derives:
//! - structs: named fields, tuple/newtype, unit; `#[serde(transparent)]`,
//!   `#[serde(default)]`, `#[serde(default = "path")]`; missing `Option`
//!   fields deserialize to `None` (matching upstream serde).
//! - enums: unit, newtype, tuple, and struct variants with external tagging
//!   (`"Variant"` / `{"Variant": ...}`), matching upstream serde's default.
//!
//! Unsupported (panics with a clear message): generic types, lifetimes,
//! unions, and renaming/skipping attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, PartialEq)]
enum DefaultKind {
    Required,
    Std,
    Path(String),
}

struct Field {
    name: String,
    is_option: bool,
    default: DefaultKind,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum StructShape {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        transparent: bool,
        shape: StructShape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Parses one `#[...]` attribute starting at `toks[*i]`, appending any
/// `#[serde(...)]` metas as `(key, optional string value)` pairs.
fn consume_attr(toks: &[TokenTree], i: &mut usize, metas: &mut Vec<(String, Option<String>)>) {
    debug_assert!(is_punct(&toks[*i], '#'));
    let TokenTree::Group(group) = &toks[*i + 1] else {
        panic!("malformed attribute");
    };
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    if inner.len() == 2 && ident_of(&inner[0]).as_deref() == Some("serde") {
        if let TokenTree::Group(meta_group) = &inner[1] {
            let mtoks: Vec<TokenTree> = meta_group.stream().into_iter().collect();
            let mut k = 0;
            while k < mtoks.len() {
                let key = ident_of(&mtoks[k]).expect("serde meta key");
                k += 1;
                let mut value = None;
                if k < mtoks.len() && is_punct(&mtoks[k], '=') {
                    let lit = mtoks[k + 1].to_string();
                    value = Some(
                        lit.trim_matches('"')
                            .to_string(),
                    );
                    k += 2;
                }
                if k < mtoks.len() && is_punct(&mtoks[k], ',') {
                    k += 1;
                }
                metas.push((key, value));
            }
        }
    }
    *i += 2;
}

fn default_of(metas: &[(String, Option<String>)], item: &str) -> DefaultKind {
    for (key, value) in metas {
        match (key.as_str(), value) {
            ("default", None) => return DefaultKind::Std,
            ("default", Some(path)) => return DefaultKind::Path(path.clone()),
            ("transparent", _) => {}
            (other, _) => panic!("serde stand-in derive: unsupported attribute `{other}` on {item}"),
        }
    }
    DefaultKind::Required
}

/// Steps over a type in `toks`, returning whether its head identifier is
/// `Option`. Stops at the first `,` outside angle brackets.
fn skip_type(toks: &[TokenTree], i: &mut usize) -> bool {
    let is_option = ident_of(&toks[*i]).as_deref() == Some("Option");
    let mut angle = 0i64;
    while *i < toks.len() {
        let t = &toks[*i];
        if angle == 0 && is_punct(t, ',') {
            break;
        }
        if is_punct(t, '<') {
            angle += 1;
        } else if is_punct(t, '>') && angle > 0 {
            angle -= 1;
        }
        *i += 1;
    }
    is_option
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if *i < toks.len() && ident_of(&toks[*i]).as_deref() == Some("pub") {
        *i += 1;
        if *i < toks.len() {
            if let TokenTree::Group(g) = &toks[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream, item: &str) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut metas = Vec::new();
        while i < toks.len() && is_punct(&toks[i], '#') {
            consume_attr(&toks, &mut i, &mut metas);
        }
        skip_visibility(&toks, &mut i);
        let name = ident_of(&toks[i]).unwrap_or_else(|| panic!("field name in {item}"));
        i += 1;
        assert!(is_punct(&toks[i], ':'), "expected `:` after field in {item}");
        i += 1;
        let is_option = skip_type(&toks, &mut i);
        if i < toks.len() {
            i += 1; // `,`
        }
        fields.push(Field {
            name,
            is_option,
            default: default_of(&metas, item),
        });
    }
    fields
}

fn tuple_arity(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut arity = 0;
    let mut pending = false;
    let mut angle = 0i64;
    for t in &toks {
        if angle == 0 && is_punct(t, ',') {
            if pending {
                arity += 1;
            }
            pending = false;
            continue;
        }
        if is_punct(t, '<') {
            angle += 1;
        } else if is_punct(t, '>') && angle > 0 {
            angle -= 1;
        }
        pending = true;
    }
    if pending {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream, item: &str) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut metas = Vec::new();
        while i < toks.len() && is_punct(&toks[i], '#') {
            consume_attr(&toks, &mut i, &mut metas);
        }
        let name = ident_of(&toks[i]).unwrap_or_else(|| panic!("variant name in {item}"));
        i += 1;
        let shape = if i < toks.len() {
            match &toks[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    i += 1;
                    VariantShape::Tuple(tuple_arity(g.stream()))
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    i += 1;
                    VariantShape::Named(parse_named_fields(g.stream(), item))
                }
                _ => VariantShape::Unit,
            }
        } else {
            VariantShape::Unit
        };
        if i < toks.len() {
            assert!(
                is_punct(&toks[i], ','),
                "expected `,` after variant in {item} (discriminants unsupported)"
            );
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut metas = Vec::new();
    while i < toks.len() && is_punct(&toks[i], '#') {
        consume_attr(&toks, &mut i, &mut metas);
    }
    let transparent = metas.iter().any(|(k, _)| k == "transparent");
    skip_visibility(&toks, &mut i);
    let kw = ident_of(&toks[i]).expect("struct/enum keyword");
    i += 1;
    let name = ident_of(&toks[i]).expect("type name");
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("serde stand-in derive: generic types are unsupported (type `{name}`)");
    }
    match kw.as_str() {
        "struct" => {
            let shape = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    StructShape::Named(parse_named_fields(g.stream(), &name))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    StructShape::Tuple(tuple_arity(g.stream()))
                }
                Some(t) if is_punct(t, ';') => StructShape::Unit,
                _ => panic!("unsupported struct body for `{name}`"),
            };
            Item::Struct {
                name,
                transparent,
                shape,
            }
        }
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream(), &name);
                Item::Enum { name, variants }
            }
            _ => panic!("unsupported enum body for `{name}`"),
        },
        other => panic!("serde stand-in derive: cannot derive for `{other}` items"),
    }
}

const SER_ERR: &str = "<__S::Error as ::serde::ser::Error>::custom";
const DE_ERR: &str = "<__D::Error as ::serde::de::Error>::custom";

fn push_field_map(out: &mut String, expr_prefix: &str, fields: &[Field]) {
    out.push_str(
        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        out.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{n}\"), \
             ::serde::__private::to_content({p}{n}).map_err({SER_ERR})?));\n",
            n = f.name,
            p = expr_prefix,
        ));
    }
}

fn missing_field_expr(f: &Field, ty_name: &str) -> String {
    match &f.default {
        DefaultKind::Std => "::core::default::Default::default()".to_string(),
        DefaultKind::Path(path) => format!("{path}()"),
        DefaultKind::Required if f.is_option => "::core::option::Option::None".to_string(),
        DefaultKind::Required => format!(
            "return ::core::result::Result::Err({DE_ERR}(\"missing field `{}` in `{ty_name}`\"))",
            f.name
        ),
    }
}

fn push_named_ctor(out: &mut String, ctor: &str, map_var: &str, fields: &[Field], ty_name: &str) {
    out.push_str(&format!("::core::result::Result::Ok({ctor} {{\n"));
    for f in fields {
        out.push_str(&format!(
            "{n}: match ::serde::__private::take_entry(&mut {map_var}, \"{n}\") {{\n\
             ::core::option::Option::Some(__v) => \
             ::serde::__private::from_content(__v).map_err({DE_ERR})?,\n\
             ::core::option::Option::None => {missing},\n}},\n",
            n = f.name,
            missing = missing_field_expr(f, ty_name),
        ));
    }
    out.push_str("})\n");
}

fn expand_serialize(item: &Item) -> String {
    let mut body = String::new();
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    match item {
        Item::Struct {
            transparent, shape, ..
        } => match shape {
            StructShape::Unit => {
                body.push_str("__serializer.serialize_content(::serde::Content::Null)\n");
            }
            StructShape::Named(fields) if *transparent => {
                assert!(
                    fields.len() == 1,
                    "transparent struct `{name}` must have exactly one field"
                );
                body.push_str(&format!(
                    "::serde::Serialize::serialize(&self.{}, __serializer)\n",
                    fields[0].name
                ));
            }
            StructShape::Named(fields) => {
                push_field_map(&mut body, "&self.", fields);
                body.push_str("__serializer.serialize_content(::serde::Content::Map(__fields))\n");
            }
            StructShape::Tuple(1) => {
                // Newtype structs serialize as their inner value, matching
                // upstream serde (transparent or not).
                body.push_str("::serde::Serialize::serialize(&self.0, __serializer)\n");
            }
            StructShape::Tuple(n) => {
                assert!(
                    !*transparent,
                    "transparent struct `{name}` must have exactly one field"
                );
                body.push_str(
                    "let mut __items: ::std::vec::Vec<::serde::Content> = \
                     ::std::vec::Vec::new();\n",
                );
                for idx in 0..*n {
                    body.push_str(&format!(
                        "__items.push(::serde::__private::to_content(&self.{idx})\
                         .map_err({SER_ERR})?);\n"
                    ));
                }
                body.push_str("__serializer.serialize_content(::serde::Content::Seq(__items))\n");
            }
        },
        Item::Enum { variants, .. } => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => body.push_str(&format!(
                        "{name}::{vn} => __serializer.serialize_content(\
                         ::serde::Content::Str(::std::string::String::from(\"{vn}\"))),\n"
                    )),
                    VariantShape::Tuple(1) => body.push_str(&format!(
                        "{name}::{vn}(__f0) => {{\n\
                         let __inner = ::serde::__private::to_content(__f0).map_err({SER_ERR})?;\n\
                         __serializer.serialize_content(::serde::Content::Map(::std::vec![\
                         (::std::string::String::from(\"{vn}\"), __inner)]))\n}}\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        body.push_str(&format!("{name}::{vn}({}) => {{\n", binders.join(", ")));
                        body.push_str(
                            "let mut __items: ::std::vec::Vec<::serde::Content> = \
                             ::std::vec::Vec::new();\n",
                        );
                        for b in &binders {
                            body.push_str(&format!(
                                "__items.push(::serde::__private::to_content({b})\
                                 .map_err({SER_ERR})?);\n"
                            ));
                        }
                        body.push_str(&format!(
                            "__serializer.serialize_content(::serde::Content::Map(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Content::Seq(__items))]))\n}}\n"
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binders: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        body.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n",
                            binders.join(", ")
                        ));
                        push_field_map(&mut body, "", fields);
                        body.push_str(&format!(
                            "__serializer.serialize_content(::serde::Content::Map(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Content::Map(__fields))]))\n}}\n"
                        ));
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, clippy::all, clippy::pedantic)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}}}\n}}\n"
    )
}

fn expand_deserialize(item: &Item) -> String {
    let mut body = String::new();
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    match item {
        Item::Struct {
            transparent, shape, ..
        } => match shape {
            StructShape::Unit => body.push_str(&format!(
                "match ::serde::Deserializer::deserialize_content(__deserializer)? {{\n\
                 ::serde::Content::Null => ::core::result::Result::Ok({name}),\n\
                 _ => ::core::result::Result::Err({DE_ERR}(\
                 \"expected null for unit struct `{name}`\")),\n}}\n"
            )),
            StructShape::Named(fields) if *transparent => {
                assert!(
                    fields.len() == 1,
                    "transparent struct `{name}` must have exactly one field"
                );
                body.push_str(&format!(
                    "::core::result::Result::Ok({name} {{ {}: \
                     ::serde::Deserialize::deserialize(__deserializer)? }})\n",
                    fields[0].name
                ));
            }
            StructShape::Named(fields) => {
                body.push_str(&format!(
                    "let mut __map = match \
                     ::serde::Deserializer::deserialize_content(__deserializer)? {{\n\
                     ::serde::Content::Map(__m) => __m,\n\
                     _ => return ::core::result::Result::Err({DE_ERR}(\
                     \"expected map for struct `{name}`\")),\n}};\n"
                ));
                push_named_ctor(&mut body, &name, "__map", fields, &name);
            }
            StructShape::Tuple(1) => body.push_str(&format!(
                "::core::result::Result::Ok({name}(\
                 ::serde::Deserialize::deserialize(__deserializer)?))\n"
            )),
            StructShape::Tuple(n) => {
                body.push_str(&format!(
                    "let __items = match \
                     ::serde::Deserializer::deserialize_content(__deserializer)? {{\n\
                     ::serde::Content::Seq(__s) => __s,\n\
                     _ => return ::core::result::Result::Err({DE_ERR}(\
                     \"expected sequence for tuple struct `{name}`\")),\n}};\n\
                     if __items.len() != {n} {{\n\
                     return ::core::result::Result::Err({DE_ERR}(\
                     \"wrong arity for tuple struct `{name}`\"));\n}}\n\
                     let mut __it = __items.into_iter();\n"
                ));
                body.push_str(&format!("::core::result::Result::Ok({name}(\n"));
                for _ in 0..*n {
                    body.push_str(&format!(
                        "::serde::__private::from_content(__it.next().unwrap())\
                         .map_err({DE_ERR})?,\n"
                    ));
                }
                body.push_str("))\n");
            }
        },
        Item::Enum { variants, .. } => {
            body.push_str(
                "match ::serde::Deserializer::deserialize_content(__deserializer)? {\n",
            );
            body.push_str("::serde::Content::Str(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.shape, VariantShape::Unit) {
                    body.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    ));
                }
            }
            body.push_str(&format!(
                "__other => ::core::result::Result::Err({DE_ERR}(::std::format!(\
                 \"unknown unit variant `{{__other}}` of enum `{name}`\"))),\n}},\n"
            ));
            body.push_str(&format!(
                "::serde::Content::Map(mut __m) if __m.len() == 1 => {{\n\
                 let (__tag, __v) = __m.remove(0);\n\
                 match __tag.as_str() {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {}
                    VariantShape::Tuple(1) => body.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                         ::serde::__private::from_content(__v).map_err({DE_ERR})?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        body.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __items = match __v {{\n\
                             ::serde::Content::Seq(__s) => __s,\n\
                             _ => return ::core::result::Result::Err({DE_ERR}(\
                             \"expected sequence for variant `{vn}` of `{name}`\")),\n}};\n\
                             if __items.len() != {n} {{\n\
                             return ::core::result::Result::Err({DE_ERR}(\
                             \"wrong arity for variant `{vn}` of `{name}`\"));\n}}\n\
                             let mut __it = __items.into_iter();\n\
                             ::core::result::Result::Ok({name}::{vn}(\n"
                        ));
                        for _ in 0..*n {
                            body.push_str(&format!(
                                "::serde::__private::from_content(__it.next().unwrap())\
                                 .map_err({DE_ERR})?,\n"
                            ));
                        }
                        body.push_str("))\n}\n");
                    }
                    VariantShape::Named(fields) => {
                        body.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let mut __vm = match __v {{\n\
                             ::serde::Content::Map(__m2) => __m2,\n\
                             _ => return ::core::result::Result::Err({DE_ERR}(\
                             \"expected map for variant `{vn}` of `{name}`\")),\n}};\n"
                        ));
                        push_named_ctor(
                            &mut body,
                            &format!("{name}::{vn}"),
                            "__vm",
                            fields,
                            &name,
                        );
                        body.push_str("}\n");
                    }
                }
            }
            body.push_str(&format!(
                "__other => ::core::result::Result::Err({DE_ERR}(::std::format!(\
                 \"unknown variant `{{__other}}` of enum `{name}`\"))),\n}}\n}}\n"
            ));
            body.push_str(&format!(
                "_ => ::core::result::Result::Err({DE_ERR}(\
                 \"expected string or single-entry map for enum `{name}`\")),\n}}\n"
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, clippy::all, clippy::pedantic)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n{body}}}\n}}\n"
    )
}

/// Derives `serde::Serialize` via the stand-in `Content` data model.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    expand_serialize(&item)
        .parse()
        .expect("serde stand-in derive emitted invalid Rust")
}

/// Derives `serde::Deserialize` via the stand-in `Content` data model.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    expand_deserialize(&item)
        .parse()
        .expect("serde stand-in derive emitted invalid Rust")
}
