//! Hermetic in-tree stand-in for the
//! [`serde_json`](https://crates.io/crates/serde_json) crate, providing
//! exactly the API surface this workspace uses: `to_string`,
//! `to_string_pretty`, `from_str`, `from_value`, [`Value`] with `&str`
//! indexing, and [`Error`].
//!
//! Values route through the stand-in `serde`'s `Content` tree. Numeric
//! output uses Rust's `Display` for `f64`, which is guaranteed to round-trip
//! (the shortest decimal that parses back to the same bits), so the
//! `float_roundtrip` feature of the real crate is inherently satisfied.
//! Non-finite floats serialize as `null`, matching upstream.

#![forbid(unsafe_code)]

use serde::{de::Error as _, Content, ContentDeserializer, ContentSerializer};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object (insertion-ordered).
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Returns the element for `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the array elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn from_content(content: Content) -> Value {
        match content {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::U64(v) => Value::U64(v),
            Content::I64(v) => Value::I64(v),
            Content::F64(v) => Value::F64(v),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => {
                Value::Array(items.into_iter().map(Value::from_content).collect())
            }
            Content::Map(entries) => Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| (k, Value::from_content(v)))
                    .collect(),
            ),
        }
    }

    fn into_content(self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(b),
            Value::U64(v) => Content::U64(v),
            Value::I64(v) => Content::I64(v),
            Value::F64(v) => Content::F64(v),
            Value::String(s) => Content::Str(s),
            Value::Array(items) => {
                Content::Seq(items.into_iter().map(Value::into_content).collect())
            }
            Value::Object(entries) => Content::Map(
                entries
                    .into_iter()
                    .map(|(k, v)| (k, v.into_content()))
                    .collect(),
            ),
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Indexes into an object by key; missing keys and non-objects yield
    /// `Value::Null` (matching the real crate).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl serde::Serialize for Value {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        serializer.serialize_content(self.clone().into_content())
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        Ok(Value::from_content(deserializer.deserialize_content()?))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_content(&self.clone().into_content(), &mut out, None, 0);
        f.write_str(&out)
    }
}

/// Serializes any `Serialize` value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = value.serialize(ContentSerializer).map_err(Error::custom)?;
    let mut out = String::new();
    write_content(&content, &mut out, None, 0);
    Ok(out)
}

/// Serializes any `Serialize` value to 2-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = value.serialize(ContentSerializer).map_err(Error::custom)?;
    let mut out = String::new();
    write_content(&content, &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` value (including [`Value`]).
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::deserialize(ContentDeserializer(content)).map_err(Error::custom)
}

/// Converts an in-memory [`Value`] into any `Deserialize` value.
pub fn from_value<T: for<'de> serde::Deserialize<'de>>(value: Value) -> Result<T> {
    T::deserialize(ContentDeserializer(value.into_content())).map_err(Error::custom)
}

/// Converts any `Serialize` value into an in-memory [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    let content = value.serialize(ContentSerializer).map_err(Error::custom)?;
    Ok(Value::from_content(content))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_content(content: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) if !v.is_finite() => out.push_str("null"),
        Content::F64(v) => {
            // Rust's `Display` for floats emits the shortest decimal string
            // that parses back to the same bits, so this round-trips.
            out.push_str(&v.to_string());
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!(
                "invalid literal at offset {} (expected `{word}`)",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: must pair with \uXXXX low.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error("invalid surrogate pair".into()))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error("invalid \\u escape".into()))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips() {
        let text = r#"{"a": [1, -2, 3.5, null, true], "b": "x\"y\n", "c": {"d": 1e3}}"#;
        let value: Value = from_str(text).unwrap();
        assert_eq!(value["a"][0], Value::U64(1));
        assert_eq!(value["a"][1], Value::I64(-2));
        assert_eq!(value["b"], "x\"y\n");
        assert_eq!(value["c"]["d"], Value::F64(1000.0));
        assert!(value["missing"].is_null());

        let compact = to_string(&value).unwrap();
        let reparsed: Value = from_str(&compact).unwrap();
        assert_eq!(reparsed, value);

        let pretty = to_string_pretty(&value).unwrap();
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(reparsed, value);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[1.0e-12, std::f64::consts::PI, 1.5e300, -0.1, 4.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "value {x} via {text}");
        }
        // Non-finite serializes as null and comes back as NaN.
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn typed_round_trip_through_options_and_vecs() {
        let v: Vec<Option<(u32, f64)>> = vec![Some((7, -1.25)), None];
        let text = to_string_pretty(&v).unwrap();
        let back: Vec<Option<(u32, f64)>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
